//! Minimal, deterministic stand-in for the `rand` crate.
//!
//! Implements exactly the surface this workspace uses: a seedable `StdRng`
//! and `Rng::gen_range` over half-open integer ranges. The generator is
//! SplitMix64, which is plenty for test-data generation (it is *not*
//! cryptographic).

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(usize, u64, u32, u16, u8);

/// The raw entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Mirrors `rand::SeedableRng` for the one constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, and passes basic statistical tests — fine for
    /// generating test workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }
}
