//! Minimal, API-compatible stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset this workspace's benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`, the
//! builder-style configuration on [`Criterion`], and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs for the
//! configured sample count and reports the median wall-clock time per
//! iteration — enough to compare growth shapes, which is what the E1–E10
//! experiments measure.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `decide_cycle/12`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation for a benchmark (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Measures one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_up_start = Instant::now();
        loop {
            black_box(routine());
            if warm_up_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        Some(sorted[sorted.len() / 2])
    }
}

/// The top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let name = id.to_string();
        run_one(self, None, &name, None, f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let group = self.name.clone();
        run_one(
            self.criterion,
            Some(&group),
            &id.to_string(),
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let group = self.name.clone();
        run_one(
            self.criterion,
            Some(&group),
            &id.to_string(),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: criterion.sample_size,
        warm_up_time: criterion.warm_up_time,
    };
    f(&mut bencher);
    let full_name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match bencher.median() {
        Some(median) => {
            let mut line = format!("{full_name:<60} median {median:>12.3?}");
            if let Some(Throughput::Elements(n)) = throughput {
                let secs = median.as_secs_f64();
                if secs > 0.0 {
                    line.push_str(&format!("  ({:.0} elem/s)", n as f64 / secs));
                }
            }
            println!("{line}");
        }
        None => println!("{full_name:<60} (no samples recorded)"),
    }
}

/// Mirrors `criterion::criterion_group!` — both the simple and the
/// `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_benchmarks_run_and_record_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
        c.bench_function("free_standing", |b| b.iter(|| 1 + 1));
    }
}
