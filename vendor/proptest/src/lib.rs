//! Minimal, API-compatible stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: strategies over
//! integer ranges and booleans, tuple strategies, `prop_map`, the
//! `proptest!` macro (with an optional `#![proptest_config(..)]` header),
//! `ProptestConfig::with_cases`, and the `prop_assert!` / `prop_assert_eq!`
//! assertion macros. Case generation is deterministic (seeded per test by a
//! fixed constant) and there is **no shrinking** — a failing case reports its
//! inputs via `Debug` where available and otherwise the case index.

use std::fmt;
use std::ops::Range;

/// Deterministic SplitMix64 generator driving test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x5AC0_5EED_0000_0001,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A recoverable test-case failure, produced by `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// How many cases each property runs, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values, mirroring `proptest::strategy::Strategy` minus
/// shrinking.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::{Strategy, TestRng};
    use std::ops::Range;

    /// A collection size specification: an exact length or a half-open
    /// range, mirroring `proptest::collection::SizeRange`.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange(exact..exact + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> SizeRange {
            SizeRange(range)
        }
    }

    /// The result of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let range = &self.size.0;
            assert!(range.start < range.end, "cannot sample empty size range");
            let span = (range.end - range.start) as u64;
            let len = range.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespaced built-in strategies, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    pub mod num {
        pub use crate::Strategy;
    }
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Mirrors `proptest::prop_assert!`: on failure, aborts the *case* (not the
/// whole process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Mirrors `proptest::proptest!`: wraps each property fn in a loop that draws
/// inputs from the given strategies and reports the failing case index.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic();
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut rng); )+
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, err,
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $( $arg in $strategy ),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, flag in prop::bool::ANY) {
            prop_assert!((3..17).contains(&n));
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn tuple_and_map_strategies_compose(
            pair in (1usize..4, 10u64..20).prop_map(|(a, b)| (a * 2, b + 1)),
        ) {
            prop_assert!(pair.0 >= 2 && pair.0 <= 6);
            prop_assert_eq!(pair.1, pair.1);
        }

        #[test]
        fn vec_strategies_honour_exact_and_ranged_sizes(
            exact in crate::collection::vec(0u32..5, 3usize),
            ranged in crate::collection::vec(crate::collection::vec(0u32..5, 2usize), 0..4),
        ) {
            prop_assert_eq!(exact.len(), 3);
            prop_assert!(exact.iter().all(|&n| n < 5));
            prop_assert!(ranged.len() < 4);
            prop_assert!(ranged.iter().all(|row| row.len() == 2));
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed at case 1/8")]
    fn failing_case_reports_its_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(n in 0usize..10) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        always_fails();
    }
}
