//! Acyclic approximations (Section 8.2): when a query is *not* semantically
//! acyclic, compute a maximally contained acyclic approximation and use it
//! for quick, sound (but incomplete) answers.
//!
//! Run with `cargo run --release --example approximation_pipeline`.

use sac::prelude::*;

fn main() {
    // The triangle pattern over a social graph: genuinely cyclic.
    let q = parse_query("triangles() :- Follows(X, Y), Follows(Y, Z), Follows(Z, X).").unwrap();
    println!("query: {q}");
    println!("acyclic? {}", is_acyclic_query(&q));
    let semac = semantic_acyclicity_under_tgds(&q, &[], SemAcConfig::default());
    println!(
        "semantically acyclic (no constraints)? {}",
        semac.is_acyclic()
    );

    // Compute its acyclic approximations.
    let report = acyclic_approximations(&q, &[], ChaseBudget::small());
    println!(
        "approximation is exact? {}   candidates considered: {}",
        report.exact, report.candidates_considered
    );
    for (i, approx) in report.maximal.iter().enumerate() {
        println!("maximal acyclic approximation #{i}: {approx}");
    }

    // Quick answers: the approximation never returns a false positive.
    let db_with_loop =
        parse_database("Follows(ana, ana). Follows(ana, bo). Follows(bo, cy).").unwrap();
    let db_triangle = parse_database("Follows(a, b). Follows(b, c). Follows(c, a).").unwrap();
    let db_path = parse_database("Follows(a, b). Follows(b, c).").unwrap();
    for (name, db) in [
        ("self-loop", &db_with_loop),
        ("triangle", &db_triangle),
        ("path", &db_path),
    ] {
        let exact = evaluate_boolean(&q, db);
        let quick = report
            .maximal
            .iter()
            .any(|approx| evaluate_boolean(approx, db));
        println!(
            "db {name:<10} exact: {exact:<5} quick (approximation): {quick:<5} sound: {}",
            !quick || exact
        );
    }
}
