//! Ontology-style reasoning: UCQ rewriting under non-recursive and sticky
//! tgds (Section 5), stickiness classification (Figure 1), and the
//! exponential rewriting height of Example 3.
//!
//! Run with `cargo run --release --example ontology_rewriting`.

use sac::prelude::*;

fn main() {
    // 1. Figure 1: the sticky marking procedure in action.
    let sticky_set = sac::gen::figure1_sticky();
    let non_sticky_set = sac::gen::figure1_non_sticky();
    println!("Figure 1 (a) sticky set:");
    for t in &sticky_set {
        println!("    {t}");
    }
    println!("    -> sticky? {}", is_sticky(&sticky_set));
    println!("Figure 1 (b) variant:");
    for t in &non_sticky_set {
        println!("    {t}");
    }
    let marking = sticky_marking(&non_sticky_set);
    println!(
        "    -> sticky? {}   (violations: {:?})",
        is_sticky(&non_sticky_set),
        marking
            .violations(&non_sticky_set)
            .iter()
            .map(|(i, v)| format!("tgd {i}, variable {v}"))
            .collect::<Vec<_>>()
    );

    // 2. A small HR ontology: containment through rewriting.
    let tgds = vec![
        parse_tgd("Employee(X, D) -> Dept(D).").unwrap(),
        parse_tgd("Dept(D) -> Manages(M, D).").unwrap(),
    ];
    let q = parse_query("q() :- Manages(M, D).").unwrap();
    let rw = rewrite(&q, &tgds, RewriteBudget::small());
    println!("\nrewriting of `{q}` under the HR ontology:");
    for d in &rw.ucq.disjuncts {
        println!("    ∨ {d}");
    }
    println!("    complete: {}, height: {}", rw.complete, rw.height());

    // 3. Example 3: the rewriting height grows exponentially with the arity.
    println!("\nExample 3 (sticky family): rewriting height vs arity");
    println!("{:>6} {:>10} {:>10}", "n", "disjuncts", "height");
    for n in 2..=4 {
        let (tgds, q) = sac::gen::example3_sticky_family(n);
        let rw = rewrite(&q, &tgds, RewriteBudget::large());
        println!("{:>6} {:>10} {:>10}", n, rw.ucq.len(), rw.height());
    }
}
