//! A many-query workload through the `sac::Database` session API.
//!
//! Simulates steady query traffic against one database: a mixed stream of
//! generated queries (acyclic, cyclic, and the semantically acyclic Example 1
//! triangle) is pushed through `Database::run_batch`, and the session's
//! metrics show how the plan cache and the per-strategy split absorb the
//! load.  (For the multi-threaded version of this workload see
//! `examples/concurrent_service.rs`.)
//!
//! Run with `cargo run --release --example engine_traffic`.

use sac::prelude::*;
use std::time::Instant;

fn main() {
    // One database serving two schemas at once: the Example 1 music-collector
    // data (closed under the collector tgd by construction) plus a random
    // graph over the binary predicate E.
    let mut seed = sac::gen::music_database(150, 300, 10);
    seed.extend_from(&sac::gen::random_graph_database(60, 400, 7))
        .expect("disjoint schemas merge cleanly");
    let db = Database::from_instance(seed).with_tgds(vec![sac::gen::collector_tgd()]);
    let stats = db.stats();
    println!("database: {stats}");
    if let Some(hot) = stats.largest_relation() {
        println!("hottest scan: {hot}");
    }
    println!(
        "dictionary: {} interned terms, {} heap bytes shared across every column",
        stats.dict_len, stats.dict_bytes
    );

    // A traffic mix of distinct query shapes, repeated over many rounds the
    // way a serving workload repeats its hot queries.
    let shapes = vec![
        sac::gen::path_query(2),
        sac::gen::path_query(4),
        sac::gen::star_query(3),
        sac::gen::cycle_query(3),
        sac::gen::cycle_query(4),
        sac::gen::clique_query(3),
        sac::gen::example1_triangle(),
    ];
    let rounds = 40;
    let workload: Vec<ConjunctiveQuery> =
        (0..rounds).flat_map(|_| shapes.iter().cloned()).collect();
    println!(
        "workload: {} queries ({} distinct shapes × {} rounds)\n",
        workload.len(),
        shapes.len(),
        rounds
    );

    for q in &shapes {
        println!("  {q}\n    → {}", db.explain(q));
    }

    let start = Instant::now();
    let results = db.run_batch(&workload);
    let elapsed = start.elapsed();

    let answers: usize = results.iter().map(|r| r.len()).sum();
    let m = db.metrics();
    println!(
        "\nran {} queries in {:.2?} ({} answers)",
        workload.len(),
        elapsed,
        answers
    );

    // The telemetry snapshot: latency percentiles and cache hit rates, the
    // numbers a dashboard would chart, instead of a raw counter dump.
    println!("\ntelemetry snapshot:");
    println!(
        "  run latency      p50 {:>9} | p90 {:>9} | p99 {:>9} | max {:>9}  ({} samples)",
        fmt_ns(m.run_latency.p50()),
        fmt_ns(m.run_latency.p90()),
        fmt_ns(m.run_latency.p99()),
        fmt_ns(m.run_latency.max_ns),
        m.run_latency.count,
    );
    println!(
        "  prepare latency  p50 {:>9} | max {:>9}  ({} compilations)",
        fmt_ns(m.prepare_latency.p50()),
        fmt_ns(m.prepare_latency.max_ns),
        m.prepare_latency.count,
    );
    println!(
        "  plan cache       {:.1}% hit rate ({} hits / {} builds, {} cached plans)",
        100.0 * m.plan_cache_hit_rate(),
        m.plan_cache_hits,
        m.plans_built,
        db.cached_plans(),
    );
    println!(
        "  strategies       {} yannakakis-direct / {} yannakakis-witness / {} indexed-search",
        m.runs_yannakakis_direct, m.runs_yannakakis_witness, m.runs_indexed_search
    );

    // One traced run per shape: where does a request's time actually go?
    println!("\nper-shape traces (warm caches):");
    for q in &shapes {
        let (_, trace) = db.run_traced(q);
        println!("  {q}\n    → {trace}");
    }

    // Sanity: the engine's answers are byte-identical to naive evaluation.
    let q = sac::gen::example1_triangle();
    let fast = db.run(&q);
    let reference = db.snapshot();
    let slow = evaluate(&q, &reference);
    println!(
        "\nExample 1 triangle: {} answers via {} — equal to naive: {}",
        fast.len(),
        db.explain(&q).strategy,
        fast.into_tuples() == slow
    );
}
