//! Durable persistence: a database that survives process restarts.
//!
//! A durable `Database` is opened on an empty directory, facts are appended
//! (each append is WAL-logged and fsynced before `insert` returns), a
//! standing query is registered, and a checkpoint compacts the log into a
//! snapshot.  The session is then dropped — simulating a crash or restart —
//! and `Database::open` rebuilds the exact same state from disk: same
//! answer sets, same materialized view, warm plan cache.  A final run with
//! the WAL tail deliberately torn shows the recovery contract: everything
//! acknowledged before the tear survives, the torn record is truncated away.
//!
//! Run with `cargo run --release --example persistent_service`.

use sac::prelude::*;
use std::io::{Seek, SeekFrom, Write};

fn data_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sac-persistent-service-{}", std::process::id()));
    // A stale directory from an earlier run would replay its facts into
    // ours; start from scratch.
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() -> Result<(), SacError> {
    let dir = data_dir();
    let query = "q(X, Z) :- Follows(X, Y), Follows(Y, Z).";

    // ── Session 1: ingest, materialize, checkpoint ──────────────────────
    let expected = {
        let db = Database::open(&dir)?;
        db.load_facts("Follows(ann, bob). Follows(bob, cem). Follows(cem, dee).")?;
        let reach = db.materialize(query)?;
        println!(
            "session 1: {} facts, view {} → {} rows",
            db.len(),
            reach.query(),
            reach.len()
        );

        // Compact the WAL into a snapshot, then keep appending on top.
        let checkpoint = db.checkpoint()?;
        println!(
            "checkpoint: seq {} → {} ({} atoms, {} bytes)",
            checkpoint.seq,
            checkpoint.path.file_name().unwrap().to_string_lossy(),
            checkpoint.atoms,
            checkpoint.bytes
        );
        db.load_facts("Follows(dee, eve).")?;

        let m = db.metrics();
        println!(
            "durability: {} WAL appends ({} bytes), {} snapshots",
            m.wal_appends, m.wal_bytes, m.snapshots_written
        );
        db.query(query)?
        // `db` dropped here: the process "restarts".
    };

    // ── Session 2: recover and verify ───────────────────────────────────
    let db = Database::open(&dir)?;
    let report = db.recovery_report().expect("opened from disk").clone();
    println!(
        "\nsession 2 recovery: snapshot seq {} ({} atoms) + {} replayed batches \
         ({} rows), {} views, {} warm plans, {} µs",
        report.snapshot_seq,
        report.snapshot_atoms,
        report.replayed_batches,
        report.replayed_rows,
        report.views,
        report.plans,
        report.micros
    );
    assert_eq!(db.query(query)?, expected, "answers changed across restart");
    let views = db.durable_views();
    assert_eq!(views.len(), 1);
    assert_eq!(views[0].snapshot(), expected);
    println!(
        "answers and view identical across restart ✓ ({} rows)",
        expected.len()
    );

    // The recovered view is live: appends keep maintaining it.
    db.load_facts("Follows(eve, fay).")?;
    assert!(views[0].is_fresh());
    println!(
        "recovered view still maintained: {} rows after one more append",
        views[0].len()
    );
    db.load_facts("Follows(fay, gil).")?;
    drop(db);

    // ── Session 3: tear the WAL tail, recover the acknowledged prefix ───
    // Chopping bytes off the final record simulates a crash mid-write: the
    // torn record (fay → gil) is truncated away, everything before it — the
    // separately framed eve → fay append — survives.
    let wal = dir.join("wal.sacwal");
    let len = std::fs::metadata(&wal).expect("wal exists").len();
    let mut file = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .expect("wal is writable");
    file.set_len(len - 3).expect("truncate");
    file.seek(SeekFrom::End(0)).and_then(|_| file.flush()).ok();
    drop(file);

    let db = Database::open(&dir)?;
    let report = db.recovery_report().expect("opened from disk");
    println!(
        "\nsession 3 (torn tail): {} bytes truncated, {} batches replayed — \
         the acknowledged prefix survives",
        report.truncated_bytes, report.replayed_batches
    );
    assert!(db.query_boolean("q() :- Follows(eve, fay), Follows(dee, eve).")?);
    assert!(!db.query_boolean("q() :- Follows(fay, gil).")?);

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
