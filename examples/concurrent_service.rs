//! A query service under concurrent traffic: one shared `sac::Database`
//! driven from N threads through `&self` (scoped threads, no `Arc` needed).
//!
//! Each thread hammers the same mix of prepared queries — acyclic shapes,
//! genuinely cyclic ones, and the semantically-acyclic Example 1 triangle
//! whose witness reformulation was paid once at prepare time — and the main
//! thread reports aggregate queries/sec as the thread count grows.
//!
//! Run with `cargo run --release --example concurrent_service`.

use sac::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

fn main() {
    // One database serving two schemas at once: the Example 1 music-collector
    // data (closed under the collector tgd by construction) plus a random
    // graph over the binary predicate E.
    let mut seed = sac::gen::music_database(150, 300, 10);
    seed.extend_from(&sac::gen::random_graph_database(60, 400, 7))
        .expect("disjoint schemas merge cleanly");
    let db = Database::from_instance(seed).with_tgds(vec![sac::gen::collector_tgd()]);
    println!("database: {}", db.stats());

    // Prepare the traffic mix once; the handles are cheap clones sharing the
    // cached plans (the Example 1 witness search runs here, exactly once).
    let shapes = [
        sac::gen::path_query(2),
        sac::gen::path_query(4),
        sac::gen::star_query(3),
        sac::gen::cycle_query(3),
        sac::gen::clique_query(3),
        sac::gen::example1_triangle(),
    ];
    let prepared: Vec<PreparedQuery<'_>> = shapes
        .iter()
        .map(|q| db.prepare(q).expect("generated queries are valid"))
        .collect();
    for p in &prepared {
        println!("  {}\n    → {}", p.query(), p.explain());
    }
    println!(
        "\nprepared {} shapes: {} plans built, cache {} entries",
        prepared.len(),
        db.metrics().plans_built,
        db.cached_plans()
    );

    // Drive the same wall-clock window with 1, 2, 4, 8 threads and report
    // aggregate throughput.  All threads share `&db` — no locks in user
    // code, no `Arc`, no clones of the data.
    let window = Duration::from_millis(400);
    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    println!("\ndriving the shared database ({cores} core(s) available):");
    println!(
        "{:>8} {:>12} {:>14} {:>10} {:>10} {:>10}",
        "threads", "queries", "queries/sec", "p50", "p99", "max"
    );
    let mut single = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        // A fresh histogram window per thread count: the percentiles
        // describe this configuration's latencies, not the whole session.
        db.reset_metrics();
        let done = AtomicUsize::new(0);
        let start = Instant::now();
        thread::scope(|scope| {
            for t in 0..threads {
                let prepared = &prepared;
                let done = &done;
                scope.spawn(move || {
                    let mut i = t; // stagger the mix across threads
                    while start.elapsed() < window {
                        let answers = prepared[i % prepared.len()].execute();
                        std::hint::black_box(answers.len());
                        done.fetch_add(1, Ordering::Relaxed);
                        i += 1;
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        let total = done.load(Ordering::Relaxed);
        let rate = total as f64 / elapsed;
        if threads == 1 {
            single = rate;
        }
        let latency = db.metrics().run_latency;
        println!(
            "{threads:>8} {total:>12} {rate:>14.0} {:>10} {:>10} {:>10}   ({:.2}x vs 1 thread)",
            fmt_ns(latency.p50()),
            fmt_ns(latency.p99()),
            fmt_ns(latency.max_ns),
            rate / single
        );
    }

    println!(
        "\nplan cache: {} entries pinned by the prepared handles (no re-planning under traffic)",
        db.cached_plans()
    );

    // One traced execution shows where a request's time goes under the
    // warmed caches: plan phase empty (prepared), snapshot, then the
    // Yannakakis sweeps.
    let (_, trace) = prepared[0].run_traced();
    println!("sample trace: {trace}");

    // The other axis of parallelism: a single client, but every batch fans
    // out over the database's worker pool and every scan is partitioned
    // across cached relation shards.  On a 1-core host the wall clock will
    // not improve — the shard/thread metrics show the fan-out happened.
    let par_db = Database::from_instance(db.snapshot())
        .with_tgds(vec![sac::gen::collector_tgd()])
        .with_parallelism(4);
    let batch: Vec<ConjunctiveQuery> = (0..8).flat_map(|_| shapes.clone()).collect();
    let serial_answers = db.run_batch(&batch);
    let start = Instant::now();
    let parallel_answers = par_db.run_batch(&batch);
    println!(
        "\nparallel batch: {} queries at parallelism {} in {:?}",
        batch.len(),
        par_db.parallelism(),
        start.elapsed()
    );
    println!(
        "  identical to the serial batch: {}",
        serial_answers == parallel_answers
    );
    let pm = par_db.metrics();
    println!(
        "  fan-out: {} shard sets built, {} shard tasks / {} morsels ({} stolen) on a {}-thread pool",
        pm.shard_sets_built, pm.shard_tasks, pm.morsels_dispatched, pm.morsel_steals, pm.threads_spawned
    );
    println!(
        "  run latency: p50 {} / p99 {} over {} runs",
        fmt_ns(pm.run_latency.p50()),
        fmt_ns(pm.run_latency.p99()),
        pm.run_latency.count
    );

    // Sanity: concurrent serving returned exactly the naive answers.
    let q = sac::gen::example1_triangle();
    let served = db.run(&q);
    let reference = db.snapshot();
    println!(
        "\nExample 1 triangle: {} answers via {} — equal to naive: {}",
        served.len(),
        db.explain(&q).strategy,
        served.into_tuples() == evaluate(&q, &reference)
    );
}
