//! The Example 1 workload at scale: shows the performance gap between
//! evaluating the original cyclic query naively and evaluating the acyclic
//! reformulation found by the semantic-acyclicity decider (Yannakakis).
//!
//! Run with `cargo run --release --example music_collector`.

use sac::prelude::*;
use std::time::Instant;

fn main() {
    let q = sac::gen::example1_triangle();
    let tgds = vec![sac::gen::collector_tgd()];

    let witness = semantic_acyclicity_under_tgds(&q, &tgds, SemAcConfig::default())
        .witness()
        .expect("Example 1 is semantically acyclic under the collector tgd")
        .clone();
    println!("original:  {q}");
    println!("witness :  {witness}");

    println!(
        "{:>10} {:>10} {:>14} {:>14} {:>8}",
        "customers", "atoms", "naive (ms)", "yannakakis (ms)", "equal"
    );
    for customers in [100usize, 300, 1_000, 3_000] {
        let db = sac::gen::music_database(customers, customers * 2, 25);

        let t0 = Instant::now();
        let slow = evaluate(&q, &db);
        let naive_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let fast = yannakakis_evaluate(&witness, &db).expect("acyclic witness");
        let fast_ms = t1.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:>10} {:>10} {:>14.2} {:>14.2} {:>8}",
            customers,
            db.len(),
            naive_ms,
            fast_ms,
            slow == fast
        );
    }
}
