//! Streaming ingestion with materialized views: standing queries kept
//! current under append batches.
//!
//! A base graph is loaded, three standing queries are registered with
//! `Database::materialize` — one per strategy rung — and a stream of edge
//! batches is ingested.  After every batch the auto-refresh view is already
//! fresh (maintenance ran under the same write guard as the append), the
//! lazy view is refreshed explicitly, and the refresh reports show which
//! path ran: the acyclic view is maintained **incrementally** (delta push
//! through its join tree, work proportional to the batch), while the
//! witness-rung view recomputes.  A from-scratch `query()` after every
//! batch double-checks that maintenance never drifted.
//!
//! Run with `cargo run --release --example streaming_ingest`.

use sac::prelude::*;
use std::time::Instant;

fn main() {
    // An append-heavy workload: a base graph plus a reproducible stream of
    // disjoint edge batches.
    let (base, stream) = sac::gen::streaming_graph_workload(400, 4_000, 12, 200, 23);
    let db = Database::from_instance(base);
    println!("base: {}", db.stats());
    println!("stream: {} batches of 200 edges\n", stream.len());

    // Three standing queries, one per strategy rung.
    //
    // Acyclic (direct Yannakakis), lazy: goes stale under appends, one
    // incremental refresh per batch — the batch-ingestion shape.  Its
    // answer set is large (all 2-step reachability pairs), which is
    // exactly where maintaining beats re-deriving everything.
    let reachable = db
        .materialize_with(
            "q(X, Z) :- E(X, Y), E(Y, Z).",
            ViewOptions {
                auto_refresh: false,
                ..ViewOptions::default()
            },
        )
        .expect("valid standing query");
    // Semantically acyclic (witness rung): refreshes by recompute.
    let looped = db
        .materialize(sac::gen::looped_triangle_query())
        .expect("valid standing query");
    // Auto-refresh acyclic view: every insert keeps it current.
    let hubs = db
        .materialize("q(C) :- E(C, L0), E(C, L1), E(C, L2).")
        .expect("valid standing query");
    for view in [&reachable, &looped, &hubs] {
        println!(
            "view {} → {} ({} rows materialized)",
            view.query(),
            view.explain(),
            view.len()
        );
    }

    println!(
        "\n{:>6} {:>9} {:>7} {:>36} {:>12} {:>10}",
        "batch", "db rows", "hubs", "lazy 2-path refresh", "refresh µs", "fresh?"
    );
    let mut maintenance_micros = 0.0f64;
    for (i, batch) in stream.iter().enumerate() {
        // Ingest: the auto-refresh views are caught up inside the inserts.
        for atom in batch {
            db.insert(atom.clone()).expect("schema-consistent append");
        }
        let stale_before = reachable.is_fresh();
        let start = Instant::now();
        let report = reachable.refresh();
        let micros = start.elapsed().as_secs_f64() * 1e6;
        maintenance_micros += micros;
        println!(
            "{:>6} {:>9} {:>7} {:>36} {:>12.0} {:>10}",
            i + 1,
            db.len(),
            hubs.len(),
            report.to_string(),
            micros,
            !stale_before && reachable.is_fresh(),
        );
    }

    // The differential gate: maintained views equal a from-scratch run.
    for view in [&reachable, &looped, &hubs] {
        let recomputed = db.run(view.query());
        assert_eq!(
            view.snapshot(),
            recomputed,
            "maintained view drifted from recomputation"
        );
    }
    println!("\nall {} views identical to from-scratch query() ✓", 3);

    // What maintenance cost, versus what recomputation would have.
    let start = Instant::now();
    for _ in 0..stream.len() {
        std::hint::black_box(db.run(reachable.query()).len());
    }
    let recompute_micros = start.elapsed().as_secs_f64() * 1e6;
    println!(
        "lazy 2-path view: {:.0} µs of incremental refreshes vs {:.0} µs of per-batch recomputes ({:.1}x)",
        maintenance_micros,
        recompute_micros,
        recompute_micros / maintenance_micros.max(1.0),
    );
    println!("\nmetrics: {}", db.metrics());
}
