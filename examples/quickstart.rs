//! Quickstart: the paper's Example 1, end to end.
//!
//! Run with `cargo run --example quickstart`.

use sac::prelude::*;

fn main() {
    // The music-collector schema of Example 1: Interest(customer, style),
    // Class(record, style), Owns(customer, record), and the constraint that
    // every customer owns every record of a style they like.
    let program = parse_program(
        "
        % The cyclic triangle query of Example 1.
        q(X, Y) :- Interest(X, Z), Class(Y, Z), Owns(X, Y).
        % The compulsive-collector tgd.
        Interest(X, Z), Class(Y, Z) -> Owns(X, Y).
        ",
    )
    .expect("the program parses");
    let q = program.queries[0].clone();
    let tgds = program.tgds.clone();

    println!("query q:        {q}");
    println!("constraint Σ:   {}", tgds[0]);
    println!("classification: {}", classify_tgds(&tgds));
    println!(
        "q acyclic?                         {}",
        is_acyclic_query(&q)
    );
    println!(
        "q semantically acyclic w/o Σ?      {}",
        is_semantically_acyclic_no_constraints(&q).is_some()
    );

    // Decide semantic acyclicity under Σ and obtain the witness.
    let result = semantic_acyclicity_under_tgds(&q, &tgds, SemAcConfig::default());
    match result.witness() {
        Some(witness) => {
            println!("q semantically acyclic under Σ?    true");
            println!("acyclic witness q':                {witness}");
            // Double-check the equivalence with the chase (Lemma 1).
            let equiv = equivalent_under_tgds(&q, witness, &tgds, ChaseBudget::small());
            println!("verified q ≡Σ q' via the chase:    {}", equiv.holds());

            // Evaluate both on a concrete database that satisfies Σ: the
            // `Database` façade plans q through the witness automatically.
            let data = sac::gen::music_database(200, 400, 10);
            println!("database: {}", data.stats());
            let slow = evaluate(&q, &data);
            let db = Database::from_instance(data).with_tgds(tgds.clone());
            let served = db.run(&q);
            println!(
                "answers: {} (engine, strategy {}) vs {} (naive on q) — equal: {}",
                served.len(),
                db.explain(&q).strategy,
                slow.len(),
                served.into_tuples() == slow
            );
        }
        None => println!("q is not semantically acyclic under Σ"),
    }
}
