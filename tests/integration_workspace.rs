//! Workspace-level smoke test: the `sac` facade wiring itself.
//!
//! Verifies that `sac::prelude::*` resolves and that the parser, the
//! dependency classifier and the semantic-acyclicity decider compose on
//! Example 1 of the paper — the minimal end-to-end pipeline every other
//! integration test builds on.

use sac::prelude::*;

const EXAMPLE1: &str = "
    Interest(alice, jazz).
    Class(kind_of_blue, jazz).
    Interest(X, Z), Class(Y, Z) -> Owns(X, Y).
    q(X, Y) :- Interest(X, Z), Class(Y, Z), Owns(X, Y).
";

#[test]
fn facade_prelude_composes_on_example_1() {
    let program = parse_program(EXAMPLE1).expect("Example 1 parses");
    assert_eq!(program.database.len(), 2);
    assert_eq!(program.tgds.len(), 1);
    assert_eq!(program.queries.len(), 1);

    let classification = classify_tgds(&program.tgds);
    assert!(classification.full, "the collector tgd is full");
    assert!(
        classification.semantic_acyclicity_decidable(),
        "Example 1's constraint class must be decidable"
    );

    let q = &program.queries[0];
    assert!(!is_acyclic_query(q), "the triangle query is cyclic");
    assert!(
        is_semantically_acyclic_no_constraints(q).is_none(),
        "without constraints the triangle query has no acyclic equivalent"
    );

    let result = semantic_acyclicity_under_tgds(q, &program.tgds, SemAcConfig::default());
    let witness = result
        .witness()
        .expect("Example 1 is semantically acyclic under the collector tgd");
    assert!(is_acyclic_query(witness));
    assert!(witness.size() <= q.size());
    assert!(
        equivalent_under_tgds(q, witness, &program.tgds, ChaseBudget::default()).holds(),
        "the witness must be Σ-equivalent to the original query"
    );
}

#[test]
fn facade_module_paths_reexport_the_crates() {
    // The stable module names on the facade resolve to the underlying crates.
    let q = sac::gen::example1_triangle();
    assert!(!sac::acyclic::is_acyclic_query(&q));
    let parsed = sac::parser::parse_query("q(X) :- R(X, Y).").expect("parses");
    assert!(sac::acyclic::is_acyclic_query(&parsed));
}
