//! Integration tests for the evaluation pipelines (Section 7).

use sac::prelude::*;

#[test]
fn all_evaluation_strategies_agree_on_the_music_workload() {
    let q = sac::gen::example1_triangle();
    let tgds = vec![sac::gen::collector_tgd()];
    let db = sac::gen::music_database(60, 120, 8);

    let naive = evaluate_semantically_acyclic(
        &q,
        &tgds,
        &db,
        EvaluationStrategy::Naive,
        SemAcConfig::default(),
    );
    let fpt = evaluate_semantically_acyclic(
        &q,
        &tgds,
        &db,
        EvaluationStrategy::RewriteThenYannakakis,
        SemAcConfig::default(),
    );
    assert_eq!(naive, fpt);
    assert!(!naive.is_empty());
}

#[test]
fn cover_game_evaluation_matches_naive_on_boolean_queries() {
    let q = ConjunctiveQuery::boolean(sac::gen::example1_triangle().body).unwrap();
    let tgds = vec![sac::gen::collector_tgd()];
    for customers in [5usize, 20] {
        let db = sac::gen::music_database(customers, customers * 2, 3);
        let game = evaluate_semantically_acyclic(
            &q,
            &tgds,
            &db,
            EvaluationStrategy::CoverGame,
            SemAcConfig::default(),
        );
        let naive = evaluate(&q, &db);
        assert_eq!(game, naive);
    }
}

#[test]
fn yannakakis_matches_naive_on_star_schema_joins() {
    let db = sac::gen::star_schema_database(500, 20, 20, 11);
    let q = parse_query("q(A) :- Fact(F, D1, D2), Dim1(D1, A), Dim2(D2, B).").unwrap();
    assert!(is_acyclic_query(&q));
    let fast = yannakakis_evaluate(&q, &db).unwrap();
    let slow = evaluate(&q, &db);
    assert_eq!(fast, slow);
}

#[test]
fn approximations_give_sound_quick_answers() {
    let q = parse_query("q() :- E(X, Y), E(Y, Z), E(Z, X).").unwrap();
    let report = acyclic_approximations(&q, &[], ChaseBudget::small());
    assert!(!report.maximal.is_empty());
    for seed in 0..5u64 {
        let db = sac::gen::random_graph_database(30, 120, seed);
        let exact = evaluate_boolean(&q, &db);
        let quick = report.maximal.iter().any(|a| evaluate_boolean(a, &db));
        // Soundness: quick ⇒ exact.
        assert!(!quick || exact, "approximation produced a false positive");
    }
}

#[test]
fn fpt_evaluation_scales_linearly_in_the_database_in_answer_counts() {
    // Not a timing test (that's the benchmark's job): checks that answer
    // counts and agreement hold as |D| grows.
    let q = sac::gen::example1_triangle();
    let tgds = vec![sac::gen::collector_tgd()];
    let mut last = 0usize;
    for customers in [20usize, 40, 80] {
        let db = sac::gen::music_database(customers, customers, 10);
        let answers = evaluate_semantically_acyclic(
            &q,
            &tgds,
            &db,
            EvaluationStrategy::RewriteThenYannakakis,
            SemAcConfig::default(),
        );
        assert!(answers.len() >= last);
        last = answers.len();
    }
    assert!(last > 0);
}
