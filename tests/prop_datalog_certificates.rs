//! Adversarial certificate properties: over seeded random stratified
//! programs, every engine answer carries a certificate that replays green
//! through the engine-independent checker — and any single mutation of that
//! certificate (a dropped premise, a swapped rule id, a forged fact, an
//! unsupported answer) is rejected fail-closed.

use proptest::prelude::*;
use sac::prelude::*;

fn run_with_certificate(seed: u64) -> (DatalogProgram, Instance, DatalogRun) {
    let (program, base) = sac::gen::random_stratified_program(seed);
    let db = Database::from_instance(base.clone());
    let run = db.run_datalog(&program).unwrap();
    (program, base, run)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn honest_certificates_replay_green_and_cover_every_answer(seed in 0u64..5000) {
        let (program, base, run) = run_with_certificate(seed);
        let cert = run.certificate.as_ref().unwrap();
        // One derivation step per derived fact, in derivation order.
        prop_assert_eq!(cert.len(), run.derived.len());
        prop_assert!(sac::datalog::check::check_certificate(&program, &base, cert).is_ok());
        for answer in &run.derived {
            prop_assert!(
                sac::datalog::check::verify_answer(&program, &base, cert, answer).is_ok()
            );
        }
    }

    #[test]
    fn dropping_any_premise_is_rejected(seed in 0u64..5000, pick in 0usize..1_000_000) {
        let (program, base, run) = run_with_certificate(seed);
        let cert = run.certificate.unwrap();
        if cert.is_empty() {
            return Ok(());
        }
        let victim = pick % cert.len();
        let mut mutated = cert.clone();
        let premises = &mut mutated.steps[victim].premises;
        if premises.is_empty() {
            return Ok(());
        }
        premises.remove(pick % premises.len());
        prop_assert!(
            sac::datalog::check::check_certificate(&program, &base, &mutated).is_err(),
            "dropping a premise from step {victim} must fail the replay"
        );
    }

    #[test]
    fn swapping_the_rule_id_is_rejected(seed in 0u64..5000, pick in 0usize..1_000_000) {
        let (program, base, run) = run_with_certificate(seed);
        let cert = run.certificate.unwrap();
        if cert.is_empty() {
            return Ok(());
        }
        let victim = pick % cert.len();
        let honest = cert.steps[victim].rule;
        let rules = program.rules();
        // Swap to a rule that provably cannot have produced the step: a
        // different body length breaks the premise count, a different head
        // predicate breaks the head match.
        let Some(target) = (0..rules.len()).find(|&r| {
            r != honest
                && (rules[r].body.len() != rules[honest].body.len()
                    || rules[r].head.predicate != rules[honest].head.predicate)
        }) else {
            return Ok(());
        };
        let mut mutated = cert.clone();
        mutated.steps[victim].rule = target;
        prop_assert!(
            sac::datalog::check::check_certificate(&program, &base, &mutated).is_err(),
            "swapping step {victim} from rule {honest} to {target} must fail the replay"
        );
    }

    #[test]
    fn forging_a_derived_fact_is_rejected(seed in 0u64..5000, pick in 0usize..1_000_000) {
        let (program, base, run) = run_with_certificate(seed);
        let cert = run.certificate.unwrap();
        if cert.is_empty() {
            return Ok(());
        }
        let victim = pick % cert.len();
        let mut mutated = cert.clone();
        let fact = &mut mutated.steps[victim].fact;
        let slot = pick % fact.args.len();
        fact.args[slot] = Term::constant("forged_constant_zzz");
        prop_assert!(
            sac::datalog::check::check_certificate(&program, &base, &mutated).is_err(),
            "forging the fact of step {victim} must fail the replay"
        );
    }

    #[test]
    fn unsupported_answers_are_rejected(seed in 0u64..5000) {
        let (program, base, run) = run_with_certificate(seed);
        let cert = run.certificate.unwrap();
        // `T` is always an IDB predicate of the generated programs; a fact
        // over fresh constants is never in the base or the replayed model.
        let bogus = Atom::from_parts(
            "T",
            vec![
                Term::constant("never_seen_a"),
                Term::constant("never_seen_b"),
            ],
        );
        prop_assert!(
            sac::datalog::check::verify_answer(&program, &base, &cert, &bogus).is_err(),
            "an answer outside base ∪ model must be rejected"
        );
    }
}
