//! Integration: the `sac::Database` service façade — thread-safety
//! guarantees, the one-call text path, prepared queries, typed result sets,
//! unified errors and the maintenance hooks.

use sac::prelude::*;
use std::thread;

// ---------------------------------------------------------------------------
// Compile-time guarantees (`static_assertions` style, no dependency): the
// façade is `Send + Sync` and serves through `&self`, so `Arc<Database>` /
// scoped-thread sharing is sound by construction.
// ---------------------------------------------------------------------------
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    send_sync::<Database>();
    send_sync::<PreparedQuery<'static>>();
    send_sync::<ResultSet>();
    send_sync::<Row>();
    send_sync::<SacError>();
    send_sync::<EngineMetrics>();
};

// `&self` signatures, checked by the type system: these calls go through a
// shared reference.
fn serves_through_shared_references(db: &Database) -> SacResult<ResultSet> {
    let _ = db.metrics();
    let _ = db.cached_plans();
    db.query("q(X) :- E(X, Y).")
}

#[test]
fn text_to_results_in_one_call() {
    let db = Database::from_facts("E(a, b). E(b, c). E(c, d).").unwrap();
    let rows = db.query("q(X, Z) :- E(X, Y), E(Y, Z).").unwrap();
    assert_eq!(rows.columns(), &["X".to_owned(), "Z".to_owned()]);
    assert_eq!(rows.len(), 2);
    for row in &rows {
        // Named access agrees with positional access.
        assert_eq!(row["X"], row[0]);
        assert_eq!(row.get_named("Z"), row.get(1));
    }
    assert!(rows.contains(&[Term::constant("a"), Term::constant("c")]));
    assert!(serves_through_shared_references(&db).unwrap().is_true());
}

#[test]
fn every_layers_failure_folds_into_sac_error() {
    let db = Database::from_facts("E(a, b).").unwrap();

    // Parser failure, with line/column carried through.
    let SacError::Parse { line, column, .. } = db.query("q(X) :-\n E(X").unwrap_err() else {
        panic!("expected a parse error");
    };
    assert_eq!(line, 2);
    assert!(column > 1);

    // Storage failure (arity clash on insert).
    assert!(matches!(
        db.insert(atom!("E", cst "a")).unwrap_err(),
        SacError::ArityMismatch {
            expected: 2,
            found: 1,
            ..
        }
    ));

    // Structural failure (constant in a query head).
    assert!(matches!(
        db.query("q(a) :- E(a, X).").unwrap_err(),
        SacError::InvalidInput { .. }
    ));

    // Chase-budget failures from the decision layer convert with `?` too.
    let exhausted: SacError = sac::common::Error::BudgetExhausted("chase steps".into()).into();
    assert!(exhausted.to_string().contains("budget exhausted"));

    // And `SacError` is a real `std::error::Error` for service stacks.
    let boxed: Box<dyn std::error::Error> = Box::new(exhausted);
    assert!(boxed.to_string().contains("chase"));
}

#[test]
fn from_str_impls_cover_the_whole_vocabulary() {
    let q: ConjunctiveQuery = "q(X, Y) :- Interest(X, Z), Class(Y, Z), Owns(X, Y)."
        .parse()
        .unwrap();
    let tgd: Tgd = "Interest(X, Z), Class(Y, Z) -> Owns(X, Y)."
        .parse()
        .unwrap();
    let egd: Egd = "Owns(X, Y), Owns(X, Z) -> Y = Z.".parse().unwrap();
    let data: Instance = "Interest(alice, jazz). Class(kind_of_blue, jazz)."
        .parse()
        .unwrap();
    assert_eq!(q.size(), 3);
    assert!(tgd.is_full());
    assert_eq!(egd.body.len(), 2);
    assert_eq!(data.len(), 2);

    // The parsed pieces snap together in the decision procedures.
    let result = semantic_acyclicity_under_tgds(&q, &[tgd], SemAcConfig::default());
    assert!(result.witness().is_some());
}

#[test]
fn prepared_queries_serve_shared_traffic() {
    let db = Database::from_instance(sac::gen::music_database(40, 80, 7))
        .with_tgds(vec![sac::gen::collector_tgd()]);
    let triangle = db.prepare(sac::gen::example1_triangle()).unwrap();
    assert_eq!(triangle.strategy(), PlanStrategy::YannakakisWitness);

    let expected = triangle.execute();
    assert!(!expected.is_empty());
    thread::scope(|scope| {
        for _ in 0..4 {
            let local = triangle.clone();
            let expected = &expected;
            scope.spawn(move || {
                for _ in 0..5 {
                    assert_eq!(&local.execute(), expected);
                }
            });
        }
    });

    let m = db.metrics();
    assert_eq!(m.plans_built, 1, "the witness search ran exactly once");
    assert_eq!(m.queries_run, 21);
    assert_eq!(m.runs_yannakakis_witness, 21);
}

#[test]
fn concurrent_mixed_traffic_against_one_database() {
    let reference = sac::gen::random_graph_database(15, 70, 23);
    let db = Database::from_instance(reference.clone());
    let shapes = [
        sac::gen::path_query(2),
        sac::gen::star_query(3),
        sac::gen::cycle_query(3),
        sac::gen::clique_query(3),
    ];
    thread::scope(|scope| {
        for t in 0..4 {
            let db = &db;
            let shapes = &shapes;
            let reference = &reference;
            scope.spawn(move || {
                for i in 0..8 {
                    let q = &shapes[(t + i) % shapes.len()];
                    assert_eq!(db.run(q).into_tuples(), evaluate(q, reference));
                }
            });
        }
    });
    let m = db.metrics();
    assert_eq!(m.queries_run, 32);
    assert_eq!(m.plans_built + m.plan_cache_hits, 32);
    assert!(m.plan_cache_hit_rate() > 0.5, "hot shapes hit the cache");
}

#[test]
fn metrics_reset_and_cache_clearing_hooks() {
    let db = Database::from_instance(sac::gen::random_graph_database(10, 40, 3));
    let q = sac::gen::cycle_query(3);
    db.run(&q);
    db.run(&q);

    let warm = db.metrics();
    assert_eq!(warm.queries_run, 2);
    assert_eq!(warm.plan_cache_hits, 1);
    assert!(warm.indexes_built > 0);

    // `EngineMetrics::reset` zeroes a snapshot…
    let mut snapshot = warm.clone();
    snapshot.reset();
    assert_eq!(snapshot, EngineMetrics::default());
    assert_eq!(snapshot.plan_cache_hit_rate(), 0.0);

    // …and `Database::reset_metrics` zeroes the live counters without
    // touching the caches.
    db.reset_metrics();
    assert_eq!(db.metrics(), EngineMetrics::default());
    assert_eq!(db.cached_plans(), 1);
    db.run(&q);
    assert_eq!(db.metrics().plan_cache_hits, 1, "caches survived the reset");

    // `clear_caches` drops plans and indexes; the next run rebuilds both.
    db.clear_caches();
    assert_eq!(db.cached_plans(), 0);
    db.reset_metrics();
    db.run(&q);
    let rebuilt = db.metrics();
    assert_eq!(rebuilt.plans_built, 1);
    assert_eq!(rebuilt.plan_cache_hits, 0);
    assert!(rebuilt.indexes_built > 0);
}

#[test]
fn results_round_trip_to_raw_tuples_for_interop() {
    let reference = sac::gen::random_graph_database(12, 50, 5);
    let db = Database::from_instance(reference.clone());
    let q = sac::gen::star_query(3);
    let rs = db.run(&q);
    // Boolean query: empty columns, truth via is_true.
    assert!(rs.columns().is_empty());
    assert_eq!(rs.is_true(), evaluate_boolean(&q, &reference));
    assert_eq!(rs.into_tuples(), evaluate(&q, &reference));
}
