//! Integration tests for the chase engines against the paper's examples.

use sac::prelude::*;

#[test]
fn example2_chase_destroys_acyclicity_with_a_growing_clique() {
    for n in 3..=6 {
        let q = sac::gen::example2_query(n);
        let probe =
            chase_preserves_acyclicity(&q, &[sac::gen::example2_tgd()], ChaseBudget::large());
        assert!(probe.input_acyclic);
        assert!(probe.chase_terminated);
        assert!(!probe.output_acyclic);
        assert!(probe.clique_lower_bound >= n);
        assert_eq!(probe.output_atoms, n + n * n);
    }
}

#[test]
fn guarded_sets_preserve_acyclicity_on_generated_workloads() {
    // Proposition 12 witnessed across random inclusion-dependency sets and
    // acyclic query families.
    for seed in 0..5 {
        let tgds = sac::gen::random_inclusion_dependencies(6, 3, seed);
        assert!(classify_tgds(&tgds).guarded);
        for q in [
            sac::gen::path_query(4).rename_predicate_to_e(),
            sac::gen::star_query(4).rename_predicate_to_e(),
        ] {
            let probe = chase_preserves_acyclicity(&q, &tgds, ChaseBudget::new(500, 5_000));
            if probe.chase_terminated {
                assert!(probe.preserved(), "guarded chase must preserve acyclicity");
            }
        }
    }
}

/// Helper: the path/star generators already use predicate `E`; the random
/// inclusion dependencies use `E0…`, so rename to hit them.
trait RenameToE {
    fn rename_predicate_to_e(self) -> ConjunctiveQuery;
}
impl RenameToE for ConjunctiveQuery {
    fn rename_predicate_to_e(self) -> ConjunctiveQuery {
        let body = self
            .body
            .iter()
            .map(|a| Atom::new(intern("E0"), a.args.clone()))
            .collect();
        ConjunctiveQuery::new_unchecked(self.head.clone(), body)
    }
}

#[test]
fn example4_and_the_ring_family_under_keys() {
    let key = FunctionalDependency::key("R", 2, [1]).unwrap().to_egds();
    for n in 3..=6 {
        let q = sac::gen::key_ring_query(n);
        let probe = sac::chase::probe::egd_chase_preserves_acyclicity(&q, &key);
        assert!(probe.input_acyclic);
        assert!(!probe.output_acyclic, "the key closes the ring (n={n})");
    }
    // Binary keys, by contrast, preserve acyclicity (Proposition 22).
    let binary_key = FunctionalDependency::key("E", 2, [1]).unwrap().to_egds();
    let q = sac::gen::star_query(5);
    let probe = sac::chase::probe::egd_chase_preserves_acyclicity(&q, &binary_key);
    assert!(probe.preserved());
}

#[test]
fn chase_based_containment_agrees_with_rewriting_based_containment() {
    // Cross-validation of the two containment engines on a non-recursive set.
    let tgds = vec![
        parse_tgd("Employee(X, D) -> Dept(D).").unwrap(),
        parse_tgd("Dept(D) -> Manages(M, D).").unwrap(),
    ];
    let pairs = [
        ("q() :- Employee(E, D).", "q() :- Dept(D).", true),
        ("q() :- Employee(E, D).", "q() :- Manages(M, D).", true),
        ("q() :- Dept(D).", "q() :- Employee(E, D).", false),
        ("q() :- Manages(M, D).", "q() :- Dept(D).", false),
    ];
    for (left, right, expected) in pairs {
        let l = parse_query(left).unwrap();
        let r = parse_query(right).unwrap();
        let via_chase = contained_under_tgds(&l, &r, &tgds, ChaseBudget::small()).holds();
        let via_rewriting = contained_via_rewriting(&l, &r, &tgds, RewriteBudget::small()).unwrap();
        assert_eq!(via_chase, expected, "{left} vs {right}");
        assert_eq!(via_rewriting, expected, "{left} vs {right} (rewriting)");
    }
}

#[test]
fn egd_chase_failure_surfaces_as_unsatisfiability() {
    let key = FunctionalDependency::key("R", 2, [1]).unwrap().to_egds();
    let q = parse_query("q() :- R(k, a), R(k, b).").unwrap();
    // Unsatisfiable under the key: contained in everything.
    let anything = parse_query("q() :- Whatever(Z).").unwrap();
    assert!(contained_under_egds(&q, &anything, &key));
}
