//! Workspace-level exercises of the observability layer: traced runs under
//! heavy concurrency (the histograms must not lose increments), phase-sum
//! accounting, the event bus, and trace-structure determinism.

use sac::prelude::*;
use sac::telemetry::RingSink;
use std::sync::Arc;
use std::thread;

fn service_database() -> Database {
    Database::from_instance(sac::gen::random_graph_database(16, 80, 7))
}

#[test]
fn eight_threads_of_traced_runs_lose_no_histogram_increments() {
    let db = service_database();
    let queries = [
        sac::gen::path_query(2),
        sac::gen::star_query(3),
        sac::gen::cycle_query(3),
    ];
    const THREADS: usize = 8;
    const RUNS_PER_THREAD: usize = 25;
    let db = &db;
    let queries = &queries;
    thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..RUNS_PER_THREAD {
                    let q = &queries[(t + i) % queries.len()];
                    let (result, trace) = db.run_traced(q);
                    assert_eq!(trace.answers, result.len());
                    // Boundary-mark timing: the phase sum IS the total.
                    assert_eq!(trace.phases.total_ns(), trace.total_ns);
                }
            });
        }
    });
    let m = db.metrics();
    let total = THREADS * RUNS_PER_THREAD;
    assert_eq!(m.queries_run, total, "no lost run counters");
    assert_eq!(
        m.run_latency.count, total as u64,
        "no lost histogram samples"
    );
    assert!(
        m.run_latency.total_ns >= m.run_latency.count,
        "every sample contributed nonzero time"
    );
    assert!(m.run_latency.p50() <= m.run_latency.p90());
    assert!(m.run_latency.p90() <= m.run_latency.p99());
    assert!(m.run_latency.p99() <= 2 * m.run_latency.max_ns.max(1));
    assert_eq!(
        m.plans_built + m.plan_cache_hits,
        total,
        "every request either planned or hit the cache"
    );
    assert_eq!(m.prepare_latency.count, m.plans_built as u64);
}

#[test]
fn metrics_totals_are_monotone_under_traffic() {
    let db = service_database();
    let q = sac::gen::path_query(2);
    let mut last_count = 0u64;
    let mut last_total = 0u64;
    for _ in 0..10 {
        let _ = db.run_traced(&q);
        let snap = db.metrics().run_latency;
        assert!(snap.count > last_count, "count is monotone");
        assert!(snap.total_ns >= last_total, "total time is monotone");
        last_count = snap.count;
        last_total = snap.total_ns;
    }
}

#[test]
fn phase_durations_sum_to_the_recorded_total_on_every_rung() {
    // The acceptance bar is "within 10%"; boundary-mark timing makes the
    // phases a partition of the traced span, so the sum is exact.
    let db = Database::from_instance(sac::gen::music_database(30, 60, 4))
        .with_tgds(vec![sac::gen::collector_tgd()]);
    let graph = service_database();
    let cases = [
        (&graph, sac::gen::path_query(3)),    // direct rung
        (&graph, sac::gen::clique_query(3)),  // indexed rung
        (&db, sac::gen::example1_triangle()), // witness rung
    ];
    for (database, query) in cases {
        let (_, trace) = database.run_traced(&query);
        let sum: u64 = Phase::ALL.iter().map(|p| trace.phases.get(*p)).sum();
        assert_eq!(sum, trace.phases.total_ns());
        assert_eq!(sum, trace.total_ns, "phases partition the span on {query}");
        let slack = trace.total_ns / 10;
        assert!(
            sum >= trace.total_ns.saturating_sub(slack) && sum <= trace.total_ns + slack,
            "the 10% bar holds trivially"
        );
    }
}

#[test]
fn trace_structure_is_deterministic_across_identical_runs() {
    let make = || {
        let db = service_database();
        let mut digests = Vec::new();
        for q in [
            sac::gen::path_query(2),
            sac::gen::star_query(3),
            sac::gen::cycle_query(3),
        ] {
            let (_, trace) = db.run_traced(&q);
            digests.push(trace.structure_digest());
        }
        digests
    };
    assert_eq!(make(), make(), "same workload, same trace structure");
}

#[test]
fn ring_sink_observes_the_engine_lifecycle() {
    // The bus is process-global: filter by this test's unique predicate so
    // parallel tests (which may also emit) cannot contaminate the counts.
    let sink = Arc::new(RingSink::with_capacity(4096));
    sac::telemetry::bus::install(sink.clone());
    let db = Database::from_facts("TelemetryLifecycleEdge(a, b). TelemetryLifecycleEdge(b, c).")
        .unwrap();
    let q: ConjunctiveQuery =
        "q(X, Z) :- TelemetryLifecycleEdge(X, Y), TelemetryLifecycleEdge(Y, Z)."
            .parse()
            .unwrap();
    db.run(&q);
    let view = db.materialize(&q).unwrap();
    db.load_facts("TelemetryLifecycleEdge(c, d).").unwrap();
    assert!(view.is_fresh());
    sac::telemetry::bus::uninstall();

    let events = sink.drain();
    let ours = |text: &String| text.contains("TelemetryLifecycleEdge");
    let jsons: Vec<String> = events.iter().map(|e| e.to_json()).collect();
    assert!(
        jsons
            .iter()
            .any(|j| j.contains("\"plan_built\"") && ours(j)),
        "planning was announced: {jsons:?}"
    );
    assert!(
        jsons.iter().any(|j| j.contains("\"run_completed\"")),
        "execution was announced"
    );
    assert!(
        jsons
            .iter()
            .any(|j| j.contains("\"view_registered\"") && ours(j)),
        "materialization was announced"
    );
    assert!(
        jsons.iter().any(|j| j.contains("\"view_refreshed\"")),
        "maintenance was announced"
    );
    // Uninstalled: further work is invisible.
    let before = sink.len();
    db.run(&q);
    assert_eq!(sink.len(), before, "no sink, no events");
}
