//! Property-based round-trip tests: parsed artifacts survive printing and
//! reparsing, and random generated queries behave consistently across the
//! independent engines (naive evaluation vs Yannakakis, chase- vs
//! rewriting-based containment).

use proptest::prelude::*;
use sac::prelude::*;

/// Strategy: a random acyclic path/star query over the `E` predicate.
fn acyclic_query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    (1usize..6, prop::bool::ANY).prop_map(|(n, star)| {
        if star {
            sac::gen::star_query(n)
        } else {
            sac::gen::path_query(n)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn yannakakis_agrees_with_naive_evaluation(
        q in acyclic_query_strategy(),
        nodes in 2usize..20,
        edges in 1usize..60,
        seed in 0u64..1000,
    ) {
        let db = sac::gen::random_graph_database(nodes, edges, seed);
        let fast = yannakakis_boolean(&q, &db).unwrap();
        let slow = evaluate_boolean(&q, &db);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn core_is_equivalent_and_no_larger(
        n in 1usize..5,
        extra in 0usize..3,
    ) {
        // A path with `extra` duplicated edges appended.
        let mut q = sac::gen::path_query(n);
        for _ in 0..extra {
            let first = q.body[0].clone();
            q.body.push(first);
        }
        let core = core_of(&q);
        prop_assert!(core.size() <= q.size());
        prop_assert!(equivalent(&core, &q));
    }

    #[test]
    fn acyclicity_decision_is_stable_under_atom_permutation(
        q in acyclic_query_strategy(),
        swap_a in 0usize..6,
        swap_b in 0usize..6,
    ) {
        let mut permuted = q.clone();
        let len = permuted.body.len();
        permuted.body.swap(swap_a % len, swap_b % len);
        prop_assert_eq!(is_acyclic_query(&q), is_acyclic_query(&permuted));
    }

    #[test]
    fn random_inclusion_dependencies_keep_classification_invariants(
        count in 1usize..10,
        preds in 1usize..5,
        seed in 0u64..500,
    ) {
        let tgds = sac::gen::random_inclusion_dependencies(count, preds, seed);
        let c = classify_tgds(&tgds);
        // Inclusion deps are linear, linear are guarded, and every guarded or
        // sticky or non-recursive set is "decidable" for SemAc.
        prop_assert!(c.inclusion);
        prop_assert!(c.linear);
        prop_assert!(c.guarded);
        prop_assert!(c.sticky);
        prop_assert!(c.semantic_acyclicity_decidable());
    }

    #[test]
    fn query_display_reparses_to_an_equivalent_query(
        q in acyclic_query_strategy(),
    ) {
        // Our Display for queries uses `?x` for variables; rebuild a parseable
        // string manually instead (variables upper-cased).
        let body: Vec<String> = q.body.iter().map(|a| {
            let args: Vec<String> = a.args.iter().map(|t| match t {
                Term::Variable(v) => format!("V{}", v.index()),
                Term::Constant(c) => c.as_str(),
                Term::Null(n) => format!("n{n}"),
            }).collect();
            format!("{}({})", a.predicate, args.join(", "))
        }).collect();
        let text = format!("q() :- {}.", body.join(", "));
        let reparsed = parse_query(&text).unwrap();
        prop_assert!(equivalent(&ConjunctiveQuery::boolean(q.body.clone()).unwrap(), &reparsed));
    }
}

#[test]
fn parser_round_trips_the_paper_program() {
    let src = "
        Interest(alice, jazz).
        Class(kind_of_blue, jazz).
        Interest(X, Z), Class(Y, Z) -> Owns(X, Y).
        R(X, Y), R(X, Z) -> Y = Z.
        q(X, Y) :- Interest(X, Z), Class(Y, Z), Owns(X, Y).
    ";
    let program = parse_program(src).unwrap();
    assert_eq!(program.database.len(), 2);
    assert_eq!(program.tgds.len(), 1);
    assert_eq!(program.egds.len(), 1);
    assert_eq!(program.queries.len(), 1);
}
