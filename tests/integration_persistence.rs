//! The kill/recover differential suite: a durable [`Database`] is fed a
//! stream of append batches (with a checkpoint mid-stream), killed — once
//! cleanly at a batch boundary, once with the final WAL record deliberately
//! torn — and reopened.  The recovered database must return **byte-identical**
//! answer sets to a never-restarted twin for every strategy rung (direct
//! Yannakakis, acyclic witness, forced indexed search) at parallelism 1, 2
//! and 4, and its recovered materialized view must equal the twin's.
//!
//! Each test prints one `recovery digest:` line, an FNV-1a hash over the
//! display form of every (query, answers) pair.  CI runs the suite twice
//! under `--test-threads=1` and diffs those lines, so any nondeterminism in
//! the recovery path breaks the build.

use sac::prelude::*;
use std::path::PathBuf;

/// FNV-1a over the display form of everything the sweep produced — the
/// same digest the differential suite uses, stable across runs iff the
/// recovered answers are.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn absorb(&mut self, text: &str) {
        for byte in text.bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

const PARALLELISM_LEVELS: [usize; 3] = [1, 2, 4];
const VIEW_QUERY: &str = "q(X, Z) :- E(X, Y), E(Y, Z).";

/// A fresh scratch directory for one test's durable database.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sac-integration-persistence-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Queries covering all three strategy rungs: paths/stars plan on the
/// direct Yannakakis rung, the looped triangle has an acyclic core and
/// planes on the witness rung, and the 3-cycle (no reformulation exists)
/// falls to indexed search.
fn rung_queries() -> Vec<ConjunctiveQuery> {
    vec![
        sac::gen::path_query(2),
        sac::gen::star_query(3),
        sac::gen::looped_triangle_query(),
        sac::gen::cycle_query(3),
    ]
}

/// Asserts `recovered` answers every rung query identically to `twin` at
/// every parallelism level (and through the forced-indexed fallback),
/// absorbing each answer set into `digest`.
fn assert_identical_answers(recovered: Database, twin: &Database, digest: &mut Digest) {
    let mut recovered = recovered;
    let mut rungs = std::collections::BTreeSet::new();
    for force_indexed in [false, true] {
        recovered = recovered.with_config(EngineConfig {
            force_indexed,
            ..EngineConfig::default()
        });
        for parallelism in PARALLELISM_LEVELS {
            recovered = recovered.with_exec_options(ExecOptions {
                parallelism,
                min_parallel_rows: 0,
            });
            for query in rung_queries() {
                rungs.insert(recovered.explain(&query).strategy.to_string());
                let ours = recovered.run(&query);
                let theirs = twin.run(&query);
                assert_eq!(
                    ours, theirs,
                    "recovered database disagrees with the never-restarted twin on \
                     {query} (forced={force_indexed}, parallelism {parallelism})"
                );
                digest.absorb(&format!(
                    "forced={force_indexed} par={parallelism} | {query} -> {ours}"
                ));
            }
        }
    }
    assert!(
        rungs.contains("yannakakis-direct")
            && rungs.contains("yannakakis-witness")
            && rungs.contains("indexed-search"),
        "rung sweep must cover all three strategies, saw {rungs:?}"
    );
}

#[test]
fn kill_at_a_batch_boundary_recovers_the_exact_database() {
    let dir = scratch_dir("boundary");
    let (base, stream) = sac::gen::streaming_graph_workload(40, 200, 8, 25, 17);

    // The never-restarted twin ingests the identical sequence in-process.
    let twin = Database::from_instance(base.clone());
    let twin_view = twin.materialize(VIEW_QUERY).expect("valid standing query");
    for batch in &stream {
        for atom in batch {
            twin.insert(atom.clone()).expect("twin append");
        }
    }

    // The durable run: same base, a standing query, a checkpoint
    // mid-stream, then the rest of the batches and a clean drop at a batch
    // boundary (some batches live only in the WAL tail, not the snapshot).
    {
        let db = Database::open(&dir).expect("create durable database");
        db.extend_from(&base).expect("load base");
        // Bind the handle: the view registry holds weak references, and
        // only live views are persisted by later checkpoints.
        let view = db.materialize(VIEW_QUERY).expect("valid standing query");
        for (i, batch) in stream.iter().enumerate() {
            for atom in batch {
                db.insert(atom.clone()).expect("durable append");
            }
            if i == stream.len() / 2 {
                db.checkpoint().expect("mid-stream checkpoint");
            }
        }
        assert_eq!(db.len(), twin.len(), "durable twin drifted before the kill");
        drop(view);
    }

    // "Crash" recovery: reopen and sweep every rung × parallelism cell.
    let recovered = Database::open(&dir).expect("recover");
    let report = recovered.recovery_report().expect("opened from disk");
    assert!(
        report.replayed_batches > 0,
        "the mid-stream checkpoint must leave WAL records to replay"
    );
    assert_eq!(report.views, 1);
    assert_eq!(recovered.len(), twin.len());

    let views = recovered.durable_views();
    assert_eq!(views.len(), 1);
    assert_eq!(
        views[0].snapshot(),
        twin_view.snapshot(),
        "recovered view disagrees with the never-restarted twin's"
    );

    let mut digest = Digest::new();
    digest.absorb(&format!("view -> {}", views[0].snapshot()));
    assert_identical_answers(recovered, &twin, &mut digest);
    println!("recovery digest: batch boundary {:016x}", digest.0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_torn_final_wal_record_recovers_the_acknowledged_prefix() {
    let dir = scratch_dir("torn");
    let (base, stream) = sac::gen::streaming_graph_workload(30, 120, 6, 20, 29);
    let (tail, acknowledged) = stream.split_last().expect("nonempty stream");

    // The twin ingests everything EXCEPT the final batch: that batch's WAL
    // record is the one the "crash" tears, so recovery must roll it back.
    let twin = Database::from_instance(base.clone());
    let twin_view = twin.materialize(VIEW_QUERY).expect("valid standing query");
    for batch in acknowledged {
        for atom in batch {
            twin.insert(atom.clone()).expect("twin append");
        }
    }

    {
        let db = Database::open(&dir).expect("create durable database");
        db.extend_from(&base).expect("load base");
        let view = db.materialize(VIEW_QUERY).expect("valid standing query");
        for batch in acknowledged {
            for atom in batch {
                db.insert(atom.clone()).expect("durable append");
            }
        }
        // The final batch goes in as ONE WAL record (extend_from = one
        // frame), which the tear below truncates away in its entirety.
        let mut last = Instance::new();
        for atom in tail {
            let _ = last.insert(atom.clone());
        }
        db.extend_from(&last).expect("final durable append");
        drop(view);
    }

    // Tear the final record: chop bytes off the end of the log, simulating
    // a crash partway through the last write().
    let wal = dir.join("wal.sacwal");
    let len = std::fs::metadata(&wal).expect("wal exists").len();
    assert!(len > 4, "the final batch must have produced a WAL record");
    std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .expect("wal is writable")
        .set_len(len - 3)
        .expect("truncate");

    let recovered = Database::open(&dir).expect("recover from torn tail");
    let report = recovered.recovery_report().expect("opened from disk");
    assert!(
        report.truncated_bytes > 0,
        "the torn frame must be detected and truncated"
    );
    assert_eq!(
        recovered.len(),
        twin.len(),
        "recovery must keep exactly the acknowledged prefix"
    );

    let views = recovered.durable_views();
    assert_eq!(views.len(), 1);
    assert_eq!(views[0].snapshot(), twin_view.snapshot());

    let mut digest = Digest::new();
    digest.absorb(&format!(
        "truncated>0={} view -> {}",
        report.truncated_bytes > 0,
        views[0].snapshot()
    ));
    assert_identical_answers(recovered, &twin, &mut digest);
    println!("recovery digest: torn tail {:016x}", digest.0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_is_idempotent_across_repeated_reopens() {
    let dir = scratch_dir("idempotent");
    {
        let db = Database::open(&dir).expect("create durable database");
        db.load_facts("E(a, b). E(b, c). E(c, d).").expect("facts");
        db.materialize(VIEW_QUERY).expect("valid standing query");
    }

    // Every reopen ends in a checkpoint that re-baselines the on-disk
    // state; none of them may change what the database answers.
    let mut digest = Digest::new();
    let mut previous: Option<ResultSet> = None;
    for round in 0..3 {
        let db = Database::open(&dir).expect("reopen");
        let rows = db.query(VIEW_QUERY).expect("query");
        assert_eq!(db.len(), 3);
        assert_eq!(db.durable_views().len(), 1);
        if let Some(expected) = &previous {
            assert_eq!(&rows, expected, "reopen round {round} changed the answers");
        }
        digest.absorb(&format!("round {round} -> {rows}"));
        previous = Some(rows);
    }
    println!("recovery digest: idempotent reopen {:016x}", digest.0);

    std::fs::remove_dir_all(&dir).ok();
}
