//! The recursive-query differential suite: every Datalog workload runs
//! through every plan-strategy rung — the planner's own pick and the forced
//! indexed fallback, plus the constraint-assisted witness rung where it
//! applies — at parallelism 1, 2 and 4, and every configuration must derive
//! exactly the facts of an independent naive bottom-up fixpoint
//! ([`sac::datalog::naive::naive_fixpoint`]).
//!
//! On top of answer agreement, every cell's [`Certificate`] must be
//! byte-identical to the serial default cell's, must replay green through
//! the engine-independent checker ([`sac::datalog::check`]) against the
//! base facts alone, and must support every derived answer.
//!
//! The suite prints one `datalog digest:` line per test, a hash over the
//! display form of every (program, derived answers) pair.  CI runs the
//! suite twice under `--test-threads=1` and diffs those lines: any
//! scheduling or iteration-order nondeterminism that leaks into results
//! (or into certificates) breaks the build.

use sac::prelude::*;
use std::collections::BTreeSet;

/// FNV-1a over the display form of everything the sweep produced: cheap,
/// dependency-free, and stable across runs iff the results are.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn absorb(&mut self, text: &str) {
        for byte in text.bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

const PARALLELISM_LEVELS: [usize; 3] = [1, 2, 4];

/// The named recursive workloads plus a band of seeded random stratified
/// programs (which mix recursion shapes and negation strata).
fn workloads() -> Vec<(String, DatalogProgram, Instance)> {
    let mut workloads = vec![
        (
            "reachability".to_owned(),
            sac::gen::reachability_program(),
            sac::gen::random_graph_database(12, 24, 11),
        ),
        (
            "same-generation".to_owned(),
            sac::gen::same_generation_program(),
            sac::gen::parent_tree_database(3, 2),
        ),
        (
            "ontology-closure".to_owned(),
            sac::gen::ontology_closure_program(),
            sac::gen::ontology_database(8, 12, 5),
        ),
    ];
    for seed in 0..6 {
        let (program, base) = sac::gen::random_stratified_program(seed);
        workloads.push((format!("random-stratified-{seed}"), program, base));
    }
    workloads
}

/// The facts the naive reference derives beyond the base: the oracle every
/// engine configuration must reproduce exactly.
fn naive_reference(program: &DatalogProgram, base: &Instance) -> BTreeSet<Atom> {
    let (fixpoint, certificate) = sac::datalog::naive::naive_fixpoint(program, base).unwrap();
    // The reference certificate must itself replay: the oracle is checked
    // before it is trusted.
    sac::datalog::check::check_certificate(program, base, &certificate).unwrap();
    fixpoint.atoms().filter(|a| !base.contains(a)).collect()
}

/// Runs `program` on `base` through one (force_indexed, parallelism) cell,
/// asserting answer agreement with `reference` and a green, answer-covering
/// certificate replay.
fn run_cell(
    name: &str,
    program: &DatalogProgram,
    base: &Instance,
    reference: &BTreeSet<Atom>,
    force_indexed: bool,
    parallelism: usize,
) -> (DatalogRun, BTreeSet<Atom>) {
    let config = EngineConfig {
        force_indexed,
        ..EngineConfig::default()
    };
    // min_parallel_rows 0 forces the parallel machinery even on these small
    // oracle fixtures — the sweep exists to drive those paths, not the gate.
    let db = Database::from_instance(base.clone())
        .with_config(config)
        .with_exec_options(ExecOptions {
            parallelism,
            min_parallel_rows: 0,
        });
    let run = db.run_datalog(program).unwrap();
    let derived: BTreeSet<Atom> = run.derived.iter().cloned().collect();
    assert_eq!(
        &derived, reference,
        "{name}: force_indexed={force_indexed} parallelism={parallelism}"
    );

    // The certificate replays without the engine, against base facts alone,
    // and supports every answer.
    let certificate = run.certificate.as_ref().expect("certificates default on");
    sac::datalog::check::check_certificate(program, base, certificate).unwrap();
    for answer in &run.derived {
        sac::datalog::check::verify_answer(program, base, certificate, answer).unwrap();
    }
    (run, derived)
}

#[test]
fn semi_naive_agrees_with_the_naive_reference_across_rungs_and_parallelism() {
    let mut digest = Digest::new();
    for (name, program, base) in workloads() {
        let reference = naive_reference(&program, &base);
        assert!(!reference.is_empty(), "{name}: workload derives nothing");

        let mut baseline: Option<DatalogRun> = None;
        for force_indexed in [false, true] {
            for parallelism in PARALLELISM_LEVELS {
                let (run, derived) = run_cell(
                    &name,
                    &program,
                    &base,
                    &reference,
                    force_indexed,
                    parallelism,
                );
                // Certificates are deterministic: every cell replays the
                // exact derivation log of the serial default-rung run.
                match &baseline {
                    None => {
                        digest.absorb(&name);
                        digest.absorb(&program.to_string());
                        for atom in &derived {
                            digest.absorb(&atom.to_string());
                        }
                        if let Some(cert) = &run.certificate {
                            digest.absorb(&cert.to_string());
                        }
                        baseline = Some(run);
                    }
                    Some(first) => {
                        assert_eq!(
                            run.certificate, first.certificate,
                            "{name}: certificate differs at force_indexed={force_indexed} \
                             parallelism={parallelism}"
                        );
                        assert_eq!(run.derived, first.derived, "{name}: answer order differs");
                    }
                }
            }
        }

        // The sweep drove both rungs it forced.
        let first = baseline.unwrap();
        assert!(first.stats.rule_runs_indexed_search == 0 || program.rule_count() > 0);
    }
    println!("datalog digest: sweep {:016x}", digest.0);
}

#[test]
fn witness_rung_fires_under_constraints_and_agrees_with_the_fallback() {
    // The cyclic rule body of Example 1's triangle is semantically acyclic
    // under the collector tgd: with `use_constraints` the rule runs on the
    // witness rung, and the answers must not change.
    let base = sac::gen::music_database(30, 60, 7);
    let triangle = sac::gen::example1_triangle();
    let head_var = triangle.body[0].args[0];
    let rule = sac::datalog::Rule::positive(
        Atom::from_parts("Tri", vec![head_var]),
        triangle.body.clone(),
    )
    .unwrap();
    let program = DatalogProgram::new(vec![rule]).unwrap();
    let reference = naive_reference(&program, &base);

    let mut digest = Digest::new();
    for parallelism in PARALLELISM_LEVELS {
        let db = Database::from_instance(base.clone())
            .with_tgds(vec![sac::gen::collector_tgd()])
            .with_exec_options(ExecOptions {
                parallelism,
                min_parallel_rows: 0,
            });
        let witness = db
            .run_datalog_with(
                &program,
                DatalogOptions {
                    use_constraints: true,
                    ..DatalogOptions::default()
                },
            )
            .unwrap();
        assert!(
            witness.stats.rule_runs_yannakakis_witness > 0,
            "constraint planning must reach the witness rung"
        );
        let fallback = db.run_datalog(&program).unwrap();
        assert_eq!(fallback.stats.rule_runs_yannakakis_witness, 0);
        assert_eq!(witness.derived, fallback.derived);

        let derived: BTreeSet<Atom> = witness.derived.iter().cloned().collect();
        assert_eq!(derived, reference);
        let cert = witness.certificate.as_ref().unwrap();
        sac::datalog::check::check_certificate(&program, &base, cert).unwrap();
        for answer in &witness.derived {
            sac::datalog::check::verify_answer(&program, &base, cert, answer).unwrap();
        }
        digest.absorb(&format!("witness p{parallelism} "));
        digest.absorb(&cert.to_string());
    }
    println!("datalog digest: witness {:016x}", digest.0);
}

#[test]
fn tgd_only_programs_agree_with_the_chase() {
    // A positive Datalog program whose rules are full tgds computes exactly
    // the tgd-chase fixpoint: the two subsystems are independent
    // implementations of the same closure, so their models must coincide.
    let mut digest = Digest::new();
    for (name, program, base) in workloads() {
        if !program.is_positive() {
            continue;
        }
        let tgds = program
            .to_tgds()
            .expect("positive programs convert to full tgds");
        let chase = tgd_chase(&base, &tgds, ChaseBudget::small());
        assert!(chase.terminated, "{name}: chase must reach a fixpoint");

        let db = Database::from_instance(base.clone());
        let run = db.run_datalog(&program).unwrap();
        let datalog_model: BTreeSet<Atom> =
            base.atoms().chain(run.derived.iter().cloned()).collect();
        let chase_model: BTreeSet<Atom> = chase.instance.atoms().collect();
        assert_eq!(datalog_model, chase_model, "{name}: chase disagreement");

        digest.absorb(&name);
        digest.absorb(&format!("{} atoms", chase_model.len()));
    }
    println!("datalog digest: chase {:016x}", digest.0);
}

#[test]
fn prepared_datalog_programs_follow_appends_with_fresh_certificates() {
    // A prepared program re-runs against the grown database; the naive
    // reference and the checker keep agreeing at every step.
    let program = sac::gen::reachability_program();
    let db = Database::from_facts("E(a, b).").unwrap();
    let prepared = db.prepare_datalog(&program).unwrap();
    let mut digest = Digest::new();
    for batch in ["E(b, c).", "E(c, d).", "E(d, a)."] {
        db.load_facts(batch).unwrap();
        let run = prepared.run().unwrap();
        let base = db.read(|inst| inst.clone());
        let reference = naive_reference(&program, &base);
        let derived: BTreeSet<Atom> = run.derived.iter().cloned().collect();
        assert_eq!(derived, reference);
        let cert = run.certificate.as_ref().unwrap();
        sac::datalog::check::check_certificate(&program, &base, cert).unwrap();
        digest.absorb(&cert.to_string());
    }
    println!("datalog digest: prepared {:016x}", digest.0);
}
