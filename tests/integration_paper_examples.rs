//! One test per named artifact of the paper (examples, figures, theorems with
//! executable content), serving as the index of reproduced results.

use sac::prelude::*;

/// Example 1 + Theorem 11 machinery: semantic acyclicity under a (full,
/// non-recursive) tgd, witness matches the paper's reformulation.
#[test]
fn example_1_reformulation() {
    let q = sac::gen::example1_triangle();
    let tgds = vec![sac::gen::collector_tgd()];
    let witness = semantic_acyclicity_under_tgds(&q, &tgds, SemAcConfig::default())
        .witness()
        .cloned()
        .expect("Example 1");
    assert_eq!(witness.size(), 2);
    let preds: Vec<String> = witness.predicates().iter().map(|p| p.as_str()).collect();
    assert!(preds.contains(&"Interest".to_string()));
    assert!(preds.contains(&"Class".to_string()));
}

/// Figure 1: the marking procedure classifies the sticky and non-sticky sets.
#[test]
fn figure_1_stickiness() {
    assert!(is_sticky(&sac::gen::figure1_sticky()));
    assert!(!is_sticky(&sac::gen::figure1_non_sticky()));
}

/// Example 2: non-recursive/sticky chases can destroy acyclicity (n-clique).
#[test]
fn example_2_clique() {
    let n = 5;
    let probe = chase_preserves_acyclicity(
        &sac::gen::example2_query(n),
        &[sac::gen::example2_tgd()],
        ChaseBudget::large(),
    );
    assert!(probe.input_acyclic && !probe.output_acyclic);
    assert!(probe.clique_lower_bound >= n);
}

/// Example 3: the UCQ rewriting height under the sticky family is 2^n.
#[test]
fn example_3_exponential_rewriting_height() {
    for n in 2..=3usize {
        let (tgds, q) = sac::gen::example3_sticky_family(n);
        assert!(is_sticky(&tgds));
        let rw = rewrite(&q, &tgds, RewriteBudget::large());
        assert!(rw.complete);
        assert!(
            rw.height() >= 1 << n,
            "height {} should be ≥ 2^{n}",
            rw.height()
        );
    }
}

/// Examples 4 and 5: keys over ≥3-ary predicates destroy acyclicity, keys
/// over unary/binary predicates do not (Propositions 22 / Theorem 23).
#[test]
fn examples_4_and_5_keys() {
    let ternary_key = FunctionalDependency::key("R", 2, [1]).unwrap().to_egds();
    let probe = sac::chase::probe::egd_chase_preserves_acyclicity(
        &sac::gen::example4_query(),
        &ternary_key,
    );
    assert!(probe.input_acyclic && !probe.output_acyclic);

    let binary_key = FunctionalDependency::key("E", 2, [1]).unwrap().to_egds();
    let acyclic_queries = [sac::gen::path_query(5), sac::gen::star_query(5)];
    for q in acyclic_queries {
        let probe = sac::chase::probe::egd_chase_preserves_acyclicity(&q, &binary_key);
        assert!(probe.preserved());
    }
}

/// Theorem 7 / Figure 2: the PCP reduction, executable in both directions on
/// concrete instances.
#[test]
fn theorem_7_pcp_reduction() {
    let solvable = PcpInstance::new(vec!["a"], vec!["a"])
        .unwrap()
        .normalize_even();
    let (q, tgds) = sac::core::build_pcp_reduction(&solvable);
    assert!(classify_tgds(&tgds).full);
    let path = solution_path_query(&solvable, &[0]).unwrap();
    assert!(equivalent_under_tgds(&q, &path, &tgds, ChaseBudget::new(5_000, 100_000)).holds());

    let unsolvable = PcpInstance::new(vec!["a"], vec!["b"])
        .unwrap()
        .normalize_even();
    let (q, tgds) = sac::core::build_pcp_reduction(&unsolvable);
    let candidate = solution_path_query(&unsolvable, &[0]).unwrap();
    assert!(
        !equivalent_under_tgds(&q, &candidate, &tgds, ChaseBudget::new(5_000, 100_000)).holds()
    );
}

/// Lemma 9 / Figure 3: compact acyclic witnesses of linear size.
#[test]
fn lemma_9_compaction() {
    use sac::acyclic::compact_acyclic_witness;
    let q = parse_query("q() :- Start(S), End(E).").unwrap();
    let mut atoms = Vec::new();
    atoms.push(sac_atom("Start", &[0]));
    for i in 0..30u64 {
        atoms.push(sac_atom("Next", &[i, i + 1]));
    }
    atoms.push(sac_atom("End", &[30]));
    let instance = Instance::from_atoms(atoms).unwrap();
    let hom = sac::query::find_homomorphism(&q.body, &instance).unwrap();
    let witness = compact_acyclic_witness(&q, &instance, &hom).unwrap();
    assert!(is_acyclic_query(&witness));
    assert!(witness.size() <= 3 * q.size());
    assert!(contained_in(&witness, &q));
}

fn sac_atom(pred: &str, nulls: &[u64]) -> Atom {
    Atom::from_parts(pred, nulls.iter().map(|n| Term::Null(*n)).collect())
}

/// Theorem 25: cover-game evaluation equals standard evaluation for
/// semantically acyclic queries on databases satisfying the constraints.
#[test]
fn theorem_25_cover_game_evaluation() {
    let q = ConjunctiveQuery::boolean(sac::gen::example1_triangle().body).unwrap();
    let db = sac::gen::music_database(15, 30, 4);
    let game = cover_game_evaluate(&q, &db);
    let exact = evaluate(&q, &db);
    assert_eq!(game, exact);
}

/// Section 8.2: acyclic approximations exist and are Σ-contained in the query.
#[test]
fn section_8_2_approximations() {
    let q = parse_query("q() :- E(X, Y), E(Y, Z), E(Z, X).").unwrap();
    let report = acyclic_approximations(&q, &[], ChaseBudget::small());
    assert!(!report.maximal.is_empty());
    for approx in &report.maximal {
        assert!(is_acyclic_query(approx));
        assert!(contained_under_tgds(approx, &q, &[], ChaseBudget::small()).holds());
    }
}
