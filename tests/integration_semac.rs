//! Integration tests for the semantic-acyclicity deciders across crates:
//! parser → classifier → decider → verification with the chase.

use sac::prelude::*;

#[test]
fn example1_pipeline_from_text_to_witness() {
    let program = parse_program(
        "
        q(X, Y) :- Interest(X, Z), Class(Y, Z), Owns(X, Y).
        Interest(X, Z), Class(Y, Z) -> Owns(X, Y).
        ",
    )
    .unwrap();
    let q = &program.queries[0];
    let tgds = &program.tgds;

    let classification = classify_tgds(tgds);
    assert!(classification.full && classification.non_recursive);
    assert!(classification.semantic_acyclicity_decidable());

    let result = semantic_acyclicity_under_tgds(q, tgds, SemAcConfig::default());
    let witness = result.witness().expect("Example 1 witness");
    assert!(is_acyclic_query(witness));
    assert!(equivalent_under_tgds(q, witness, tgds, ChaseBudget::small()).holds());
}

#[test]
fn inclusion_dependencies_enable_reformulations() {
    // Σ: every Enrolled pair implies the Student and the Course exist, and
    // every Student has an Advisor meeting them.
    let tgds = vec![
        parse_tgd("Enrolled(S, C) -> Student(S).").unwrap(),
        parse_tgd("Enrolled(S, C) -> Course(C).").unwrap(),
    ];
    let classification = classify_tgds(&tgds);
    assert!(classification.inclusion && classification.guarded);

    // The query redundantly re-asserts Student(S) and Course(C); its core is
    // acyclic, so it is semantically acyclic even without Σ — and the decider
    // must find a witness of size 1 using Σ-free reasoning.
    let q = parse_query("q(S) :- Enrolled(S, C), Student(S), Course(C).").unwrap();
    let result = semantic_acyclicity_under_tgds(&q, &tgds, SemAcConfig::default());
    let witness = result.witness().expect("redundant atoms fold away");
    assert!(witness.size() <= 3);
    assert!(is_acyclic_query(witness));
}

#[test]
fn guarded_set_that_does_not_help_a_real_cycle() {
    let tgds = vec![parse_tgd("Edge(X, Y) -> Node(X).").unwrap()];
    let q = parse_query("q() :- Edge(X, Y), Edge(Y, Z), Edge(Z, X).").unwrap();
    let result = semantic_acyclicity_under_tgds(&q, &tgds, SemAcConfig::default());
    assert!(!result.is_acyclic());
}

#[test]
fn keys_over_binary_predicates_collapse_cycles() {
    // Key on R's first attribute; the "diamond" closes into an acyclic shape
    // once y and z are identified.
    let key = FunctionalDependency::key("R", 2, [1]).unwrap().to_egds();
    let q = parse_query("q(X) :- R(X, Y), R(X, Z), T(Y, Z), T(Z, Y).").unwrap();
    let result = semantic_acyclicity_under_egds(&q, &key, SemAcConfig::default());
    let witness = result.witness().expect("the key merges Y and Z");
    assert!(is_acyclic_query(witness));
    assert!(contained_under_egds(&q, witness, &key));
    assert!(contained_under_egds(witness, &q, &key));
}

#[test]
fn ucq_semantic_acyclicity_follows_section_8_1() {
    let triangle = parse_query("q() :- E(X, Y), E(Y, Z), E(Z, X).").unwrap();
    let edge = parse_query("q() :- E(X, Y).").unwrap();
    let ucq = UnionOfConjunctiveQueries::new(vec![triangle.clone(), edge]).unwrap();
    let result =
        ucq_semantic_acyclicity_under_tgds(&ucq, &[], SemAcConfig::default(), ChaseBudget::small());
    assert!(result.is_acyclic(), "the triangle disjunct is redundant");

    let lone = UnionOfConjunctiveQueries::single(triangle);
    let lone_result = ucq_semantic_acyclicity_under_tgds(
        &lone,
        &[],
        SemAcConfig::default(),
        ChaseBudget::small(),
    );
    assert!(!lone_result.is_acyclic());
}

#[test]
fn connecting_operator_preserves_containment_on_a_concrete_instance() {
    // q ⊆Σ q' iff c(q) ⊆c(Σ) c(q') — checked on a positive and a negative
    // instance with full tgds (where the chase terminates, so answers are
    // exact).
    let tgds = vec![parse_tgd("A(X, Y) -> B(X, Y).").unwrap()];
    let q = parse_query("q() :- A(X, Y).").unwrap();
    let q_contained = parse_query("q() :- B(X, Y).").unwrap();
    let q_not = parse_query("q() :- C(X, Y).").unwrap();

    let (cq, cq1, ctgds) = connecting_operator(&q, &q_contained, &tgds);
    assert!(contained_under_tgds(&q, &q_contained, &tgds, ChaseBudget::small()).holds());
    assert!(contained_under_tgds(&cq, &cq1, &ctgds, ChaseBudget::small()).holds());

    let (cq, cq2, ctgds) = connecting_operator(&q, &q_not, &tgds);
    assert!(!contained_under_tgds(&q, &q_not, &tgds, ChaseBudget::small()).holds());
    assert!(!contained_under_tgds(&cq, &cq2, &ctgds, ChaseBudget::small()).holds());
}

#[test]
fn pcp_reduction_round_trip() {
    let instance = PcpInstance::new(vec!["a", "ab"], vec!["aa", "b"])
        .unwrap()
        .normalize_even();
    let solution = instance.find_solution(3).expect("solvable instance");
    let (q, tgds) = sac::core::build_pcp_reduction(&instance);
    let path = solution_path_query(&instance, &solution).unwrap();
    assert!(is_acyclic_query(&path));
    assert!(equivalent_under_tgds(&q, &path, &tgds, ChaseBudget::new(5_000, 100_000)).holds());
}
