//! The differential oracle suite: every generated query family runs through
//! every plan-strategy rung — the planner's own pick, the forced indexed
//! fallback, and (where applicable) the witness rung — at parallelism 1, 2
//! and 4, and every configuration must return a [`ResultSet`] identical to
//! naive homomorphism enumeration (sorted-tuple comparison; `ResultSet`
//! equality also covers the column names).
//!
//! The suite prints one `differential digest:` line per test, a hash over
//! the display form of every (query, answers) pair.  CI runs the suite
//! twice under `--test-threads=1` and diffs those lines: any scheduling or
//! iteration-order nondeterminism that leaks into results breaks the build.

use sac::prelude::*;

/// FNV-1a over the display form of everything the sweep produced: cheap,
/// dependency-free, and stable across runs iff the results are.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn absorb(&mut self, text: &str) {
        for byte in text.bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

const PARALLELISM_LEVELS: [usize; 3] = [1, 2, 4];

/// Every generated query family over the binary `E` graph schema, plus
/// non-Boolean variants (projection exercises the join-back-up phase and
/// the fallback's head materialization).
fn graph_queries() -> Vec<ConjunctiveQuery> {
    let mut queries = Vec::new();
    for n in 1..=4 {
        queries.push(sac::gen::path_query(n));
        queries.push(sac::gen::star_query(n));
    }
    for n in 2..=5 {
        queries.push(sac::gen::cycle_query(n));
    }
    queries.push(sac::gen::clique_query(3));
    // Semantically acyclic with no constraints: drives the witness rung.
    queries.push(sac::gen::looped_triangle_query());
    // Non-Boolean path endpoints.
    queries.push(
        ConjunctiveQuery::new(
            vec![intern("x0"), intern("x2")],
            sac::gen::path_query(2).body,
        )
        .unwrap(),
    );
    // Non-Boolean cyclic query with projection.
    queries.push(ConjunctiveQuery::new(vec![intern("x0")], sac::gen::cycle_query(3).body).unwrap());
    queries
}

/// Runs `query` on `data` through one (config, parallelism) cell and
/// returns the typed result set, asserting it matches the naive oracle.
fn run_cell(
    data: &Instance,
    tgds: &[Tgd],
    query: &ConjunctiveQuery,
    force_indexed: bool,
    parallelism: usize,
    seen: &mut std::collections::BTreeSet<String>,
    oracle: &std::collections::BTreeSet<Vec<Term>>,
) -> ResultSet {
    let config = EngineConfig {
        force_indexed,
        ..EngineConfig::default()
    };
    // min_parallel_rows 0 forces the parallel machinery (sharded match
    // sets, semijoin chunks, per-shard fallback roots) even on these small
    // oracle fixtures — the whole point of the sweep is to drive those
    // paths, not the size gate.
    let db = Database::from_instance(data.clone())
        .with_tgds(tgds.to_vec())
        .with_config(config)
        .with_exec_options(ExecOptions {
            parallelism,
            min_parallel_rows: 0,
        });
    seen.insert(db.explain(query).strategy.to_string());
    let result = db.run(query);
    assert_eq!(
        &result.clone().into_tuples(),
        oracle,
        "rung {} (forced={force_indexed}) at parallelism {parallelism} \
         disagrees with naive evaluation on {query}",
        db.explain(query).strategy,
    );
    result
}

#[test]
fn every_rung_and_parallelism_level_matches_naive_evaluation() {
    let databases = [
        ("sparse graph", sac::gen::random_graph_database(10, 25, 7)),
        ("dense graph", sac::gen::random_graph_database(14, 90, 41)),
    ];
    let mut digest = Digest::new();
    let mut seen = std::collections::BTreeSet::new();
    for (name, data) in &databases {
        for query in graph_queries() {
            let oracle = evaluate(&query, data);
            let mut cells: Vec<ResultSet> = Vec::new();
            for parallelism in PARALLELISM_LEVELS {
                for force_indexed in [false, true] {
                    cells.push(run_cell(
                        data,
                        &[],
                        &query,
                        force_indexed,
                        parallelism,
                        &mut seen,
                        &oracle,
                    ));
                }
            }
            // Every cell is identical to every other — including column
            // names, row order and row count, not just the tuple sets.
            for pair in cells.windows(2) {
                assert_eq!(pair[0], pair[1], "cells disagree on {query} over {name}");
            }
            digest.absorb(&format!("{name} | {query} -> {}", cells[0]));
        }
    }
    assert_eq!(
        seen.into_iter().collect::<Vec<_>>(),
        vec![
            "indexed-search".to_owned(),
            "yannakakis-direct".to_owned(),
            "yannakakis-witness".to_owned(),
        ],
        "the sweep must exercise all three strategy rungs"
    );
    println!("differential digest: graph sweep {:016x}", digest.0);
}

#[test]
fn witness_rung_under_tgds_matches_naive_at_every_parallelism() {
    let data = sac::gen::music_database(30, 60, 5);
    let tgds = vec![sac::gen::collector_tgd()];
    let query = sac::gen::example1_triangle();
    let oracle = evaluate(&query, &data);
    let mut digest = Digest::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut cells = Vec::new();
    for parallelism in PARALLELISM_LEVELS {
        for force_indexed in [false, true] {
            cells.push(run_cell(
                &data,
                &tgds,
                &query,
                force_indexed,
                parallelism,
                &mut seen,
                &oracle,
            ));
        }
    }
    assert!(
        seen.contains("yannakakis-witness"),
        "the collector tgd must put Example 1 on the witness rung"
    );
    assert!(seen.contains("indexed-search"));
    for pair in cells.windows(2) {
        assert_eq!(pair[0], pair[1]);
    }
    digest.absorb(&format!("{query} -> {}", cells[0]));
    println!("differential digest: tgd witness {:016x}", digest.0);
}

#[test]
fn maintained_views_match_from_scratch_queries_after_every_append_batch() {
    // Every generated query family becomes a standing query, and after
    // every append batch its maintained contents must be cell-identical
    // (columns, rows, order) to a from-scratch `query()` on the same
    // database AND to naive evaluation over the accumulated facts — across
    // the planner's own rung and the forced indexed fallback, at
    // parallelism 1, 2 and 4.  Even-indexed views are auto-refreshed by the
    // inserts themselves; odd-indexed views stay lazy and are refreshed
    // here, so both maintenance shapes are driven.
    let (base, stream) = sac::gen::streaming_graph_workload(12, 40, 3, 8, 31);
    let mut digest = Digest::new();
    let mut seen = std::collections::BTreeSet::new();
    for parallelism in PARALLELISM_LEVELS {
        for force_indexed in [false, true] {
            let config = EngineConfig {
                force_indexed,
                ..EngineConfig::default()
            };
            let db = Database::from_instance(base.clone())
                .with_config(config)
                .with_exec_options(ExecOptions {
                    parallelism,
                    min_parallel_rows: 0,
                });
            let queries = graph_queries();
            let views: Vec<MaterializedView<'_>> = queries
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    db.materialize_with(
                        q,
                        ViewOptions {
                            auto_refresh: i % 2 == 0,
                            ..ViewOptions::default()
                        },
                    )
                    .expect("generated queries are valid")
                })
                .collect();
            let mut accumulated = base.clone();
            for batch in &stream {
                for atom in batch {
                    db.insert(atom.clone()).unwrap();
                    accumulated.insert(atom.clone()).unwrap();
                }
                for view in &views {
                    seen.insert(view.strategy().to_string());
                    let report = view.refresh(); // no-op for fresh auto views
                    if view.options().auto_refresh {
                        assert_eq!(
                            report.mode,
                            RefreshMode::Fresh,
                            "auto views must already be fresh after the inserts"
                        );
                    }
                    let snapshot = view.snapshot();
                    assert_eq!(
                        snapshot,
                        db.run(view.query()),
                        "maintained view differs from a from-scratch run of {} \
                         (forced={force_indexed}, parallelism {parallelism})",
                        view.query()
                    );
                    assert_eq!(
                        &snapshot.into_tuples(),
                        &evaluate(view.query(), &accumulated),
                        "maintained view differs from naive evaluation of {} \
                         (forced={force_indexed}, parallelism {parallelism})",
                        view.query()
                    );
                }
            }
            for view in &views {
                digest.absorb(&format!(
                    "forced={force_indexed} par={parallelism} | {} -> {}",
                    view.query(),
                    view.snapshot()
                ));
            }
        }
    }
    assert_eq!(
        seen.into_iter().collect::<Vec<_>>(),
        vec![
            "indexed-search".to_owned(),
            "yannakakis-direct".to_owned(),
            "yannakakis-witness".to_owned(),
        ],
        "the view sweep must cover all three strategy rungs"
    );
    println!("differential digest: view sweep {:016x}", digest.0);
}

#[test]
fn tgd_witness_views_stay_exact_under_constraint_closed_appends() {
    // A standing Example 1 triangle under the collector tgd: the view's
    // plan sits on the witness rung (refreshes recompute), and appends that
    // keep the database closed under the tgd must keep the maintained
    // answers equal to naive evaluation of the *original* cyclic query.
    // Each batch is one whole new customer (interest plus every owned
    // record), so the database is constraint-closed at every observation
    // point — the witness rung's contract, exactly as for queries.
    let mut accumulated = sac::gen::music_database(20, 40, 4);
    let mut digest = Digest::new();
    let db =
        Database::from_instance(accumulated.clone()).with_tgds(vec![sac::gen::collector_tgd()]);
    let view = db
        .materialize(sac::gen::example1_triangle())
        .expect("Example 1 is a valid standing query");
    assert_eq!(view.strategy(), PlanStrategy::YannakakisWitness);
    for customers in 21..=26 {
        let bigger = sac::gen::music_database(customers, 40, 4);
        let batch: Vec<Atom> = bigger
            .atoms()
            .filter(|a| !accumulated.contains(a))
            .collect();
        assert!(!batch.is_empty());
        for atom in batch {
            db.insert(atom.clone()).unwrap();
            accumulated.insert(atom).unwrap();
        }
        assert!(view.is_fresh());
        assert_eq!(
            view.snapshot().into_tuples(),
            evaluate(view.query(), &accumulated),
            "witness-rung view drifted under closed appends"
        );
    }
    assert!(db.metrics().view_refreshes_full > 1);
    digest.absorb(&format!("{} -> {}", view.query(), view.snapshot()));
    println!("differential digest: tgd view {:016x}", digest.0);
}

#[test]
fn parallel_batches_are_identical_to_serial_batches() {
    let data = sac::gen::random_graph_database(12, 60, 19);
    let workload: Vec<ConjunctiveQuery> = (0..3).flat_map(|_| graph_queries()).collect();
    let serial = Database::from_instance(data.clone());
    let expected = serial.run_batch(&workload);
    let mut digest = Digest::new();
    for parallelism in [2, 4] {
        let parallel = Database::from_instance(data.clone()).with_parallelism(parallelism);
        let got = parallel.run_batch(&workload);
        assert_eq!(expected, got, "batch at parallelism {parallelism} drifted");
        let m = parallel.metrics();
        assert_eq!(m.queries_run, workload.len());
        assert!(m.threads_spawned > 0, "the batch really fanned out");
    }
    for (query, result) in workload.iter().zip(&expected) {
        digest.absorb(&format!("{query} -> {result}"));
    }
    println!("differential digest: batch sweep {:016x}", digest.0);
}

#[test]
fn trace_structure_is_deterministic_across_runs() {
    // Query traces carry wall times (nondeterministic by nature) next to
    // structure (rung, cache outcomes, per-node rows, fan-out, answers).
    // The structure must be a pure function of (data, query, config): this
    // digest folds `QueryTrace::structure_digest` for the whole sweep into
    // one `differential digest:` line, so the CI double-run diff catches
    // any scheduling nondeterminism that leaks into what traces *say*.
    let data = sac::gen::random_graph_database(10, 25, 7);
    let mut digest = Digest::new();
    for parallelism in PARALLELISM_LEVELS {
        for query in graph_queries() {
            let db = Database::from_instance(data.clone()).with_exec_options(ExecOptions {
                parallelism,
                min_parallel_rows: 0,
            });
            let (cold_result, cold) = db.run_traced(&query);
            let (warm_result, warm) = db.run_traced(&query);
            assert_eq!(cold_result, warm_result);
            assert!(!cold.plan_cache_hit && warm.plan_cache_hit);
            assert_eq!(
                warm.structure_digest(),
                db.run_traced(&query).1.structure_digest(),
                "repeat runs must agree structurally on {query}"
            );
            digest.absorb(&format!(
                "par={parallelism} | {query} -> {:016x} {:016x}",
                cold.structure_digest(),
                warm.structure_digest()
            ));
        }
    }
    println!("differential digest: trace structure {:016x}", digest.0);
}
