//! Integration: the `sac-engine` subsystem through the `sac` facade — plan
//! strategies, cache behaviour, mutation invalidation, and agreement with
//! every other evaluator in the workspace.

use sac::prelude::*;

#[test]
fn engine_strategies_cover_the_lattice() {
    let mut seed = sac::gen::music_database(20, 40, 4);
    seed.extend_from(&sac::gen::random_graph_database(15, 60, 3))
        .unwrap();
    let db = Database::from_instance(seed).with_tgds(vec![sac::gen::collector_tgd()]);

    // Acyclic query → direct Yannakakis.
    let path = sac::gen::path_query(3);
    assert_eq!(db.explain(&path).strategy, PlanStrategy::YannakakisDirect);

    // Cyclic but semantically acyclic under the tgd → witness Yannakakis.
    let triangle = sac::gen::example1_triangle();
    let explain = db.explain(&triangle);
    assert_eq!(explain.strategy, PlanStrategy::YannakakisWitness);
    let witness = explain.witness.expect("witness is recorded in the explain");
    assert!(is_acyclic_query(&witness));

    // Genuinely cyclic → indexed fallback.
    let cycle = sac::gen::cycle_query(4);
    assert_eq!(db.explain(&cycle).strategy, PlanStrategy::IndexedSearch);
}

#[test]
fn engine_agrees_with_every_other_evaluator_on_example1() {
    let q = sac::gen::example1_triangle();
    let tgds = vec![sac::gen::collector_tgd()];
    let reference = sac::gen::music_database(60, 120, 6);

    let naive = evaluate(&q, &reference);
    let game = cover_game_evaluate(&q, &reference);
    let fpt = evaluate_semantically_acyclic(
        &q,
        &tgds,
        &reference,
        EvaluationStrategy::RewriteThenYannakakis,
        SemAcConfig::default(),
    );
    let db = Database::from_instance(reference).with_tgds(tgds);
    let engine_answers = db.run(&q).into_tuples();

    assert_eq!(engine_answers, naive);
    assert_eq!(engine_answers, game);
    assert_eq!(engine_answers, fpt);
}

#[test]
fn batched_traffic_amortizes_planning_and_reports_metrics() {
    let reference = sac::gen::random_graph_database(20, 100, 9);
    let db = Database::from_instance(reference.clone());
    let shapes = [
        sac::gen::path_query(2),
        sac::gen::star_query(3),
        sac::gen::cycle_query(3),
    ];
    let workload: Vec<ConjunctiveQuery> = (0..10).flat_map(|_| shapes.iter().cloned()).collect();
    let results = db.run_batch(&workload);
    assert_eq!(results.len(), 30);
    for (q, r) in workload.iter().zip(&results) {
        assert_eq!(
            r.clone().into_tuples(),
            evaluate(q, &reference),
            "batch answer mismatch on {q}"
        );
    }

    let m = db.metrics();
    assert_eq!(m.queries_run, 30);
    assert_eq!(m.plans_built, 3);
    assert_eq!(m.plan_cache_hits, 27);
    assert!(m.plan_cache_hit_rate() >= 0.9);
    assert_eq!(
        m.runs_yannakakis_direct + m.runs_yannakakis_witness + m.runs_indexed_search,
        30
    );
    assert!(m.indexes_built > 0, "the fallback strategy builds indexes");
}

#[test]
fn mutations_through_the_database_are_visible_to_cached_plans() {
    let db = Database::new();
    let q = sac::gen::path_query(2);
    assert!(!db.run_boolean(&q));
    assert!(db.insert(atom!("E", cst "a", cst "b")).unwrap());
    assert!(db.insert(atom!("E", cst "b", cst "c")).unwrap());
    assert!(db.run_boolean(&q));

    // The richer storage stats are visible through the facade as well.
    let stats = db.stats();
    let rel = stats.relation(intern("E")).expect("E is populated");
    assert_eq!(rel.tuples, 2);
    assert_eq!(rel.distinct_per_column, vec![2, 2]);
    assert_eq!(db.epoch(), 2);
}

#[test]
#[allow(deprecated)]
fn deprecated_engine_shim_still_serves_legacy_call_sites() {
    // The pre-`Database` API keeps compiling and answering identically.
    let reference = sac::gen::random_graph_database(10, 40, 17);
    let mut engine = Engine::new(reference.clone());
    let q = sac::gen::path_query(2);
    assert_eq!(engine.run(&q), evaluate(&q, &reference));
    assert_eq!(engine.metrics().queries_run, 1);
}
