//! Integration: the `sac-engine` subsystem through the `sac` facade — plan
//! strategies, cache behaviour, mutation invalidation, and agreement with
//! every other evaluator in the workspace.

use sac::prelude::*;

#[test]
fn engine_strategies_cover_the_lattice() {
    let mut db = sac::gen::music_database(20, 40, 4);
    db.extend_from(&sac::gen::random_graph_database(15, 60, 3))
        .unwrap();
    let mut engine = Engine::new(db).with_tgds(vec![sac::gen::collector_tgd()]);

    // Acyclic query → direct Yannakakis.
    let path = sac::gen::path_query(3);
    assert_eq!(
        engine.explain(&path).strategy,
        PlanStrategy::YannakakisDirect
    );

    // Cyclic but semantically acyclic under the tgd → witness Yannakakis.
    let triangle = sac::gen::example1_triangle();
    let explain = engine.explain(&triangle);
    assert_eq!(explain.strategy, PlanStrategy::YannakakisWitness);
    let witness = explain.witness.expect("witness is recorded in the explain");
    assert!(is_acyclic_query(&witness));

    // Genuinely cyclic → indexed fallback.
    let cycle = sac::gen::cycle_query(4);
    assert_eq!(engine.explain(&cycle).strategy, PlanStrategy::IndexedSearch);
}

#[test]
fn engine_agrees_with_every_other_evaluator_on_example1() {
    let q = sac::gen::example1_triangle();
    let tgds = vec![sac::gen::collector_tgd()];
    let db = sac::gen::music_database(60, 120, 6);

    let naive = evaluate(&q, &db);
    let game = cover_game_evaluate(&q, &db);
    let fpt = evaluate_semantically_acyclic(
        &q,
        &tgds,
        &db,
        EvaluationStrategy::RewriteThenYannakakis,
        SemAcConfig::default(),
    );
    let mut engine = Engine::new(db).with_tgds(tgds);
    let engine_answers = engine.run(&q);

    assert_eq!(engine_answers, naive);
    assert_eq!(engine_answers, game);
    assert_eq!(engine_answers, fpt);
}

#[test]
fn batched_traffic_amortizes_planning_and_reports_metrics() {
    let db = sac::gen::random_graph_database(20, 100, 9);
    let mut engine = Engine::new(db.clone());
    let shapes = [
        sac::gen::path_query(2),
        sac::gen::star_query(3),
        sac::gen::cycle_query(3),
    ];
    let workload: Vec<ConjunctiveQuery> = (0..10).flat_map(|_| shapes.iter().cloned()).collect();
    let results = engine.run_batch(&workload);
    assert_eq!(results.len(), 30);
    for (q, r) in workload.iter().zip(&results) {
        assert_eq!(r, &evaluate(q, &db), "batch answer mismatch on {q}");
    }

    let m = engine.metrics();
    assert_eq!(m.queries_run, 30);
    assert_eq!(m.plans_built, 3);
    assert_eq!(m.plan_cache_hits, 27);
    assert!(m.plan_cache_hit_rate() >= 0.9);
    assert_eq!(
        m.runs_yannakakis_direct + m.runs_yannakakis_witness + m.runs_indexed_search,
        30
    );
    assert!(m.indexes_built > 0, "the fallback strategy builds indexes");
}

#[test]
fn mutations_through_the_engine_are_visible_to_cached_plans() {
    let mut engine = Engine::new(Instance::new());
    let q = sac::gen::path_query(2);
    assert!(!engine.run_boolean(&q));
    assert!(engine.insert(atom!("E", cst "a", cst "b")).unwrap());
    assert!(engine.insert(atom!("E", cst "b", cst "c")).unwrap());
    assert!(engine.run_boolean(&q));

    // The richer storage stats are visible through the facade as well.
    let stats = engine.database().stats();
    let rel = stats.relation(intern("E")).expect("E is populated");
    assert_eq!(rel.tuples, 2);
    assert_eq!(rel.distinct_per_column, vec![2, 2]);
    assert_eq!(engine.database().epoch(), 2);
}
