use sac::prelude::*;
use sac::datalog::{check, Certificate, DerivationStep, Premise};

#[test]
fn incomplete_certificate_forges_a_negation_fact() {
    let program: DatalogProgram = "T(X, Y) :- E(X, Y).\n\
                                   Sep(X, Y) :- N(X), N(Y), not T(X, Y)."
        .parse()
        .unwrap();
    let base = Instance::from_atoms([
        Atom::from_parts("E", vec![Term::constant("a"), Term::constant("b")]),
        Atom::from_parts("N", vec![Term::constant("a")]),
        Atom::from_parts("N", vec![Term::constant("b")]),
    ])
    .unwrap();
    let step = DerivationStep {
        rule: 1,
        fact: Atom::from_parts("Sep", vec![Term::constant("a"), Term::constant("b")]),
        premises: vec![
            Premise::Base { predicate: sac::common::intern("N"), row: 0 },
            Premise::Base { predicate: sac::common::intern("N"), row: 1 },
        ],
        negated: vec![Atom::from_parts(
            "T",
            vec![Term::constant("a"), Term::constant("b")],
        )],
    };
    let cert = Certificate { steps: vec![step] };
    let forged = Atom::from_parts("Sep", vec![Term::constant("a"), Term::constant("b")]);
    let replay = check::check_certificate(&program, &base, &cert);
    let verify = check::verify_answer(&program, &base, &cert, &forged);
    assert!(replay.is_err() || verify.is_err(),
        "checker accepted a forged negation-dependent fact: replay={replay:?} verify={verify:?}");
}
