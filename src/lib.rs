//! Workspace umbrella crate.
//!
//! Exists so the repository root can host the cross-crate integration tests
//! (`tests/`) and runnable examples (`examples/`), all of which go through
//! the [`sac`] facade. Use the `sac` crate directly as a library consumer.

pub use sac;
