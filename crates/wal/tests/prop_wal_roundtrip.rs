//! Property tests over the WAL record codec: a randomly generated
//! [`FactBatch`] must survive encode → decode bit-exactly, and the same
//! batch must survive a trip through the framed log file — including a log
//! holding many batches at once.

use proptest::prelude::*;
use sac_wal::{FactBatch, RelationBatch, SyncMode, TermRepr, WalWriter};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One random term repr: tag picks the variant, `n` seeds the payload.
fn term_repr((tag, n): (u8, u64)) -> TermRepr {
    match tag % 3 {
        0 => TermRepr::Constant(format!("c_{n}")),
        1 => TermRepr::Null(n),
        _ => TermRepr::Variable(format!("V{n}")),
    }
}

/// A random relation batch; `arity` may be 0 (propositional facts).
fn relation_batch((pred, arity, row_count, seed): (u64, usize, usize, u64)) -> RelationBatch {
    let rows = (0..row_count * arity)
        .map(|i| (seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9)) as u32 % 1000)
        .collect();
    RelationBatch {
        predicate: format!("R{pred}"),
        arity,
        row_count,
        rows,
    }
}

fn batch_strategy() -> impl Strategy<Value = FactBatch> {
    (
        1u64..1_000_000,
        0u32..5_000,
        proptest::collection::vec((0u8..3, 0u64..100_000).prop_map(term_repr), 0..12),
        proptest::collection::vec(
            (0u64..6, 0usize..4, 0usize..8, 0u64..u64::MAX).prop_map(relation_batch),
            0..5,
        ),
    )
        .prop_map(|(seq, dict_start, dict_terms, relations)| FactBatch {
            seq,
            dict_start,
            dict_terms,
            relations,
        })
}

fn temp_log() -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sac_wal_prop_{}_{n}.sacwal", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_is_identity(batch in batch_strategy()) {
        let decoded = FactBatch::decode(&batch.encode());
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
        prop_assert_eq!(decoded.unwrap(), batch);
    }

    #[test]
    fn truncated_bodies_never_decode_to_a_batch_with_more_data(
        batch in batch_strategy(),
        cut in 1usize..64,
    ) {
        // Chopping bytes off the end must yield an error, never a batch
        // that silently lost rows (the frame checksum catches bit flips;
        // this guards the decoder against structural truncation).
        let bytes = batch.encode();
        if cut < bytes.len() {
            let truncated = &bytes[..bytes.len() - cut];
            if let Ok(decoded) = FactBatch::decode(truncated) {
                prop_assert!(
                    decoded == batch,
                    "truncation must not fabricate a different batch"
                );
            }
        }
    }
}

proptest! {
    // File-backed cases are slower; fewer cases keep the suite quick.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn framed_log_round_trips_many_batches(batches in proptest::collection::vec(batch_strategy(), 1..8)) {
        let path = temp_log();
        {
            let (mut writer, outcome) = WalWriter::open(&path, SyncMode::Never).unwrap();
            prop_assert!(outcome.batches.is_empty());
            for batch in &batches {
                writer.append(batch).unwrap();
            }
        }
        let (_, outcome) = WalWriter::open(&path, SyncMode::Never).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(outcome.truncated_bytes, 0);
        prop_assert_eq!(outcome.batches, batches);
    }
}
