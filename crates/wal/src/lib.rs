//! # sac-wal
//!
//! Durable persistence for the workspace: an append-only, checksummed
//! **write-ahead log** of fact batches, periodic compacted **snapshots**,
//! and the serialization layer both share.  `sac-engine` builds crash
//! recovery (`Database::open`) on top; this crate owns everything that
//! touches disk and stays policy-free about *when* to write.
//!
//! ## The durability model
//!
//! The columnar storage layer ([`sac_storage`]) stores every tuple as a row
//! of `u32` codes into a **process-wide** term dictionary — a code is
//! meaningless outside the process that assigned it.  Durability therefore
//! ships two things together, always:
//!
//! * the appended **code rows** (cheap: four bytes per term occurrence), and
//! * the **dictionary delta** — the `(code, term)` assignments handed out
//!   since the previous record — so a later process can rebuild a
//!   translation table and re-encode under its own dictionary.
//!
//! A [`FactBatch`] is exactly that pair plus a monotone sequence number.
//! The log file is a magic header followed by length-prefixed,
//! FNV-1a-checksummed records (see [`log`] for the byte layout); a torn
//! final record — the expected artifact of a crash mid-append — is detected
//! by its checksum and truncated away on open.
//!
//! A [`Snapshot`] compacts the log: a full dump of the dictionary prefix,
//! every relation's code rows, the registered constraints, view
//! definitions and plan-cache fingerprints, plus the last WAL sequence
//! number it covers.  Snapshots are written atomically (temp file, fsync,
//! rename, directory fsync) and the WAL is truncated only afterwards, so a
//! crash between the two replays a harmless prefix twice — fact insertion
//! is set-semantic, so over-replay is idempotent.
//!
//! Queries, constraints and view definitions are persisted **structurally**
//! ([`QueryRepr`] / [`TgdRepr`] / [`ViewRepr`]), not as display text: the
//! display form of a variable (`?X`) does not re-parse, and lower-case
//! variable names would re-parse as constants.

mod codec;
pub mod log;
pub mod record;
pub mod snapshot;

pub use log::{LogReadOutcome, WalWriter};
pub use record::{
    AtomRepr, FactBatch, QueryRepr, RelationBatch, Snapshot, TermRepr, TgdRepr, ViewRepr,
};
pub use snapshot::{latest_snapshot, prune_snapshots, read_snapshot, write_snapshot};

use std::fmt;

/// Result alias using [`WalError`].
pub type WalResult<T> = std::result::Result<T, WalError>;

/// Anything that can go wrong while persisting or recovering.
#[derive(Debug)]
pub enum WalError {
    /// The operating system refused a read/write/sync/rename.
    Io {
        /// What the layer was doing when the OS said no.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// On-disk bytes that pass framing but fail validation (bad magic, a
    /// dictionary gap, an impossible arity).  Torn *tails* are not errors —
    /// the log reader truncates them silently — this is for corruption the
    /// recovery layer cannot repair.
    Corrupt {
        /// What was wrong with the bytes.
        message: String,
    },
}

impl WalError {
    pub(crate) fn io(context: impl Into<String>, source: std::io::Error) -> WalError {
        WalError::Io {
            context: context.into(),
            source,
        }
    }

    pub(crate) fn corrupt(message: impl Into<String>) -> WalError {
        WalError::Corrupt {
            message: message.into(),
        }
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { context, source } => write!(f, "{context}: {source}"),
            WalError::Corrupt { message } => write!(f, "corrupt persistence data: {message}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            WalError::Corrupt { .. } => None,
        }
    }
}

/// When the WAL fsyncs (see [`DurabilityOptions::sync_mode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// `fsync` after every appended record: an acknowledged append survives
    /// a machine crash, at the cost of one disk round-trip per batch.  The
    /// default.
    Always,
    /// Write without syncing: appends survive a *process* kill (the page
    /// cache persists them eventually) but a machine crash can lose the
    /// unsynced suffix.  The torn-tail truncation rule keeps recovery
    /// correct either way — what is lost is recent, never inconsistent.
    Never,
}

/// Durability knobs, fixed when a database is opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// fsync discipline for WAL appends.
    pub sync_mode: SyncMode,
    /// Write a compacted snapshot (and truncate the WAL) automatically
    /// every this many appended batches.  `0` disables automatic
    /// snapshots — the log grows until an explicit checkpoint.
    pub snapshot_every: usize,
}

impl Default for DurabilityOptions {
    fn default() -> DurabilityOptions {
        DurabilityOptions {
            sync_mode: SyncMode::Always,
            snapshot_every: 1024,
        }
    }
}
