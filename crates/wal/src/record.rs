//! The persisted value types: structural representations of terms, atoms,
//! queries, constraints and view definitions, plus the two on-disk
//! composites — [`FactBatch`] (one WAL record) and [`Snapshot`] (one
//! compacted checkpoint).
//!
//! Everything here is plain owned data with an explicit binary encoding;
//! nothing touches disk (see [`crate::log`] and [`crate::snapshot`] for
//! framing and files) and nothing touches the process-wide dictionary —
//! translation between persisted codes and live [`Term`]s is the recovery
//! layer's job, precisely because the dictionary of the writing process is
//! dead by the time these bytes are read back.

use crate::codec::{Decoder, Encoder};
use crate::{WalError, WalResult};
use sac_common::Term;

/// A [`Term`], process-independent: constants and variables by name, nulls
/// by label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermRepr {
    /// A constant, by interned name.
    Constant(String),
    /// A labelled null.
    Null(u64),
    /// A variable, by name (frozen queries and the cover game store
    /// variable atoms in instances, so the WAL must carry them too).
    Variable(String),
}

const TERM_CONSTANT: u8 = 0;
const TERM_NULL: u8 = 1;
const TERM_VARIABLE: u8 = 2;

impl TermRepr {
    /// The representation of a live term (reads the symbol table, never the
    /// dictionary).
    pub fn of(term: Term) -> TermRepr {
        match term {
            Term::Constant(s) => TermRepr::Constant(s.as_str()),
            Term::Null(label) => TermRepr::Null(label),
            Term::Variable(s) => TermRepr::Variable(s.as_str()),
        }
    }

    /// Re-interns the representation as a live term in this process.
    pub fn to_term(&self) -> Term {
        match self {
            TermRepr::Constant(name) => Term::constant(name),
            TermRepr::Null(label) => Term::null(*label),
            TermRepr::Variable(name) => Term::variable(name),
        }
    }

    fn encode(&self, enc: &mut Encoder) {
        match self {
            TermRepr::Constant(name) => {
                enc.u8(TERM_CONSTANT);
                enc.str(name);
            }
            TermRepr::Null(label) => {
                enc.u8(TERM_NULL);
                enc.u64(*label);
            }
            TermRepr::Variable(name) => {
                enc.u8(TERM_VARIABLE);
                enc.str(name);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> WalResult<TermRepr> {
        match dec.u8()? {
            TERM_CONSTANT => Ok(TermRepr::Constant(dec.str()?)),
            TERM_NULL => Ok(TermRepr::Null(dec.u64()?)),
            TERM_VARIABLE => Ok(TermRepr::Variable(dec.str()?)),
            tag => Err(WalError::corrupt(format!("unknown term tag {tag}"))),
        }
    }
}

/// An atom, process-independent: predicate by name, arguments as
/// [`TermRepr`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomRepr {
    /// The predicate name.
    pub predicate: String,
    /// The arguments.
    pub args: Vec<TermRepr>,
}

impl AtomRepr {
    /// The representation of a live atom.
    pub fn of(atom: &sac_common::Atom) -> AtomRepr {
        AtomRepr {
            predicate: atom.predicate.as_str(),
            args: atom.args.iter().map(|&t| TermRepr::of(t)).collect(),
        }
    }

    /// Re-interns the representation as a live atom.
    pub fn to_atom(&self) -> sac_common::Atom {
        sac_common::Atom::from_parts(
            &self.predicate,
            self.args.iter().map(TermRepr::to_term).collect(),
        )
    }

    fn encode(&self, enc: &mut Encoder) {
        enc.str(&self.predicate);
        enc.len(self.args.len());
        for arg in &self.args {
            arg.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> WalResult<AtomRepr> {
        let predicate = dec.str()?;
        let n = dec.bounded_len(1)?;
        let args = (0..n)
            .map(|_| TermRepr::decode(dec))
            .collect::<WalResult<_>>()?;
        Ok(AtomRepr { predicate, args })
    }
}

/// A conjunctive query, structurally: head variable names plus body atoms.
///
/// Structural on purpose — the display form (`q(?X) :- E(?X, ?Y).`) does
/// not round-trip through the parser (variables print with a `?` sigil,
/// and a lower-case variable name would re-parse as a constant), so the
/// recovery layer rebuilds through `ConjunctiveQuery::new` instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRepr {
    /// The query's display name, if it had one.
    pub name: Option<String>,
    /// Head (answer) variable names, in answer-column order.
    pub head: Vec<String>,
    /// Body atoms.
    pub body: Vec<AtomRepr>,
}

impl QueryRepr {
    fn encode(&self, enc: &mut Encoder) {
        match &self.name {
            Some(name) => {
                enc.u8(1);
                enc.str(name);
            }
            None => enc.u8(0),
        }
        enc.len(self.head.len());
        for v in &self.head {
            enc.str(v);
        }
        enc.len(self.body.len());
        for atom in &self.body {
            atom.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> WalResult<QueryRepr> {
        let name = match dec.u8()? {
            0 => None,
            1 => Some(dec.str()?),
            tag => return Err(WalError::corrupt(format!("unknown option tag {tag}"))),
        };
        let heads = dec.bounded_len(1)?;
        let head = (0..heads).map(|_| dec.str()).collect::<WalResult<_>>()?;
        let atoms = dec.bounded_len(1)?;
        let body = (0..atoms)
            .map(|_| AtomRepr::decode(dec))
            .collect::<WalResult<_>>()?;
        Ok(QueryRepr { name, head, body })
    }
}

/// A tgd, structurally: body and head atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TgdRepr {
    /// Body atoms.
    pub body: Vec<AtomRepr>,
    /// Head atoms.
    pub head: Vec<AtomRepr>,
}

impl TgdRepr {
    fn encode(&self, enc: &mut Encoder) {
        enc.len(self.body.len());
        for atom in &self.body {
            atom.encode(enc);
        }
        enc.len(self.head.len());
        for atom in &self.head {
            atom.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> WalResult<TgdRepr> {
        let bodies = dec.bounded_len(1)?;
        let body = (0..bodies)
            .map(|_| AtomRepr::decode(dec))
            .collect::<WalResult<_>>()?;
        let heads = dec.bounded_len(1)?;
        let head = (0..heads)
            .map(|_| AtomRepr::decode(dec))
            .collect::<WalResult<_>>()?;
        Ok(TgdRepr { body, head })
    }
}

/// A registered materialized view: its standing query plus the maintenance
/// options it was registered with.  The maintained answers themselves are
/// **not** persisted — recovery re-materializes from the recovered facts,
/// which is both simpler and self-checking (the kill/recover differential
/// asserts the re-materialized set equals the never-restarted one).
#[derive(Debug, Clone, PartialEq)]
pub struct ViewRepr {
    /// `ViewOptions::auto_refresh`.
    pub auto_refresh: bool,
    /// `ViewOptions::max_incremental_fraction` (bit-exact through
    /// `f64::to_bits`).
    pub max_incremental_fraction: f64,
    /// The standing query.
    pub query: QueryRepr,
}

impl ViewRepr {
    fn encode(&self, enc: &mut Encoder) {
        enc.u8(u8::from(self.auto_refresh));
        enc.u64(self.max_incremental_fraction.to_bits());
        self.query.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> WalResult<ViewRepr> {
        let auto_refresh = match dec.u8()? {
            0 => false,
            1 => true,
            tag => return Err(WalError::corrupt(format!("unknown bool tag {tag}"))),
        };
        let max_incremental_fraction = f64::from_bits(dec.u64()?);
        let query = QueryRepr::decode(dec)?;
        Ok(ViewRepr {
            auto_refresh,
            max_incremental_fraction,
            query,
        })
    }
}

/// One relation's appended (or dumped) code rows.
///
/// `rows` is the flattened row-major code matrix: `row_count * arity`
/// entries.  `row_count` is explicit rather than derived because arity-0
/// relations (propositional facts) have rows but no codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationBatch {
    /// The predicate name.
    pub predicate: String,
    /// The relation's arity.
    pub arity: usize,
    /// Number of rows carried.
    pub row_count: usize,
    /// Flattened code rows (`row_count * arity` codes).
    pub rows: Vec<u32>,
}

impl RelationBatch {
    fn encode(&self, enc: &mut Encoder) {
        enc.str(&self.predicate);
        enc.len(self.arity);
        enc.len(self.row_count);
        enc.codes(&self.rows);
    }

    fn decode(dec: &mut Decoder<'_>) -> WalResult<RelationBatch> {
        let predicate = dec.str()?;
        let arity = dec.len()?;
        // Arity-0 rows occupy no bytes, so the bytes-remaining bound cannot
        // apply; the row vector is empty either way, so a corrupt count
        // cannot trigger a giant allocation there.
        let row_count = if arity == 0 {
            dec.len()?
        } else {
            dec.bounded_len(arity.saturating_mul(4))?
        };
        let codes = row_count
            .checked_mul(arity)
            .ok_or_else(|| WalError::corrupt("relation batch size overflows"))?;
        let rows = dec.codes(codes)?;
        Ok(RelationBatch {
            predicate,
            arity,
            row_count,
            rows,
        })
    }

    /// Iterates the batch's rows as code slices.
    pub fn code_rows(&self) -> impl Iterator<Item = &[u32]> + '_ {
        // `chunks_exact(0)` panics, so arity-0 rows are produced explicitly.
        (0..self.row_count).map(move |r| &self.rows[r * self.arity..(r + 1) * self.arity])
    }
}

/// One WAL record: the facts appended by one mutation, as code rows, plus
/// the dictionary delta needed to decode them in another process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactBatch {
    /// Monotone sequence number (1-based); a snapshot stores the last seq
    /// it covers, and replay skips records at or below it.
    pub seq: u64,
    /// First code the delta describes: `dict_terms[i]` is the term behind
    /// code `dict_start + i` of the **writing** process's dictionary.
    pub dict_start: u32,
    /// Terms assigned to codes `dict_start..dict_start + len`, in code
    /// order.
    pub dict_terms: Vec<TermRepr>,
    /// The appended rows, grouped by relation.
    pub relations: Vec<RelationBatch>,
}

impl FactBatch {
    /// Total appended rows across all relations.
    pub fn rows(&self) -> usize {
        self.relations.iter().map(|r| r.row_count).sum()
    }

    /// The record body, ready for [`crate::log::WalWriter::append`]'s
    /// framing.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.u64(self.seq);
        enc.u32(self.dict_start);
        enc.len(self.dict_terms.len());
        for term in &self.dict_terms {
            term.encode(&mut enc);
        }
        enc.len(self.relations.len());
        for rel in &self.relations {
            rel.encode(&mut enc);
        }
        enc.into_bytes()
    }

    /// Decodes a record body; trailing garbage after a well-formed batch is
    /// corruption (the frame length said the bytes belong to this record).
    pub fn decode(bytes: &[u8]) -> WalResult<FactBatch> {
        let mut dec = Decoder::new(bytes);
        let seq = dec.u64()?;
        let dict_start = dec.u32()?;
        let terms = dec.bounded_len(1)?;
        let dict_terms = (0..terms)
            .map(|_| TermRepr::decode(&mut dec))
            .collect::<WalResult<_>>()?;
        let rels = dec.bounded_len(1)?;
        let relations = (0..rels)
            .map(|_| RelationBatch::decode(&mut dec))
            .collect::<WalResult<_>>()?;
        if !dec.is_done() {
            return Err(WalError::corrupt("trailing bytes after fact batch"));
        }
        Ok(FactBatch {
            seq,
            dict_start,
            dict_terms,
            relations,
        })
    }
}

/// One compacted checkpoint: everything needed to rebuild a `Database`
/// without the WAL prefix it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The last WAL sequence number the snapshot covers; replay starts at
    /// `last_seq + 1`.
    pub last_seq: u64,
    /// The writing process's dictionary prefix, in code order: `dict[i]`
    /// is the term behind code `i`.
    pub dict: Vec<TermRepr>,
    /// Full relation dumps.
    pub relations: Vec<RelationBatch>,
    /// The constraint set.
    pub tgds: Vec<TgdRepr>,
    /// Registered view definitions.
    pub views: Vec<ViewRepr>,
    /// Plan-cache fingerprints: the distinct query shapes the process had
    /// compiled, re-planned on open to warm the cache.
    pub plans: Vec<QueryRepr>,
}

impl Snapshot {
    /// Total dumped rows across all relations.
    pub fn atoms(&self) -> usize {
        self.relations.iter().map(|r| r.row_count).sum()
    }

    /// The snapshot body, ready for [`crate::snapshot::write_snapshot`]'s
    /// framing.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.u64(self.last_seq);
        enc.len(self.dict.len());
        for term in &self.dict {
            term.encode(&mut enc);
        }
        enc.len(self.relations.len());
        for rel in &self.relations {
            rel.encode(&mut enc);
        }
        enc.len(self.tgds.len());
        for tgd in &self.tgds {
            tgd.encode(&mut enc);
        }
        enc.len(self.views.len());
        for view in &self.views {
            view.encode(&mut enc);
        }
        enc.len(self.plans.len());
        for plan in &self.plans {
            plan.encode(&mut enc);
        }
        enc.into_bytes()
    }

    /// Decodes a snapshot body.
    pub fn decode(bytes: &[u8]) -> WalResult<Snapshot> {
        let mut dec = Decoder::new(bytes);
        let last_seq = dec.u64()?;
        let terms = dec.bounded_len(1)?;
        let dict = (0..terms)
            .map(|_| TermRepr::decode(&mut dec))
            .collect::<WalResult<_>>()?;
        let rels = dec.bounded_len(1)?;
        let relations = (0..rels)
            .map(|_| RelationBatch::decode(&mut dec))
            .collect::<WalResult<_>>()?;
        let tgd_count = dec.bounded_len(1)?;
        let tgds = (0..tgd_count)
            .map(|_| TgdRepr::decode(&mut dec))
            .collect::<WalResult<_>>()?;
        let view_count = dec.bounded_len(1)?;
        let views = (0..view_count)
            .map(|_| ViewRepr::decode(&mut dec))
            .collect::<WalResult<_>>()?;
        let plan_count = dec.bounded_len(1)?;
        let plans = (0..plan_count)
            .map(|_| QueryRepr::decode(&mut dec))
            .collect::<WalResult<_>>()?;
        if !dec.is_done() {
            return Err(WalError::corrupt("trailing bytes after snapshot"));
        }
        Ok(Snapshot {
            last_seq,
            dict,
            relations,
            tgds,
            views,
            plans,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> FactBatch {
        FactBatch {
            seq: 7,
            dict_start: 3,
            dict_terms: vec![
                TermRepr::Constant("ann".into()),
                TermRepr::Null(42),
                TermRepr::Variable("X".into()),
            ],
            relations: vec![
                RelationBatch {
                    predicate: "E".into(),
                    arity: 2,
                    row_count: 2,
                    rows: vec![3, 4, 4, 5],
                },
                RelationBatch {
                    predicate: "Flag".into(),
                    arity: 0,
                    row_count: 1,
                    rows: vec![],
                },
            ],
        }
    }

    #[test]
    fn fact_batches_round_trip() {
        let batch = sample_batch();
        assert_eq!(FactBatch::decode(&batch.encode()).unwrap(), batch);
        assert_eq!(batch.rows(), 3);
    }

    #[test]
    fn zero_arity_rows_are_enumerable() {
        let batch = sample_batch();
        let flag = &batch.relations[1];
        assert_eq!(flag.code_rows().count(), 1);
        assert_eq!(flag.code_rows().next().unwrap(), &[] as &[u32]);
    }

    #[test]
    fn term_reprs_translate_both_ways() {
        for term in [Term::constant("c"), Term::variable("V"), Term::null(9)] {
            assert_eq!(TermRepr::of(term).to_term(), term);
        }
    }

    #[test]
    fn snapshots_round_trip() {
        let snap = Snapshot {
            last_seq: 12,
            dict: vec![
                TermRepr::Constant("a".into()),
                TermRepr::Constant("b".into()),
            ],
            relations: vec![RelationBatch {
                predicate: "E".into(),
                arity: 2,
                row_count: 1,
                rows: vec![0, 1],
            }],
            tgds: vec![TgdRepr {
                body: vec![AtomRepr {
                    predicate: "E".into(),
                    args: vec![
                        TermRepr::Variable("X".into()),
                        TermRepr::Variable("Y".into()),
                    ],
                }],
                head: vec![AtomRepr {
                    predicate: "R".into(),
                    args: vec![
                        TermRepr::Variable("Y".into()),
                        TermRepr::Variable("X".into()),
                    ],
                }],
            }],
            views: vec![ViewRepr {
                auto_refresh: true,
                max_incremental_fraction: 0.5,
                query: QueryRepr {
                    name: Some("reach".into()),
                    head: vec!["X".into(), "Z".into()],
                    body: vec![
                        AtomRepr {
                            predicate: "E".into(),
                            args: vec![
                                TermRepr::Variable("X".into()),
                                TermRepr::Variable("Y".into()),
                            ],
                        },
                        AtomRepr {
                            predicate: "E".into(),
                            args: vec![
                                TermRepr::Variable("Y".into()),
                                TermRepr::Variable("Z".into()),
                            ],
                        },
                    ],
                },
            }],
            plans: vec![QueryRepr {
                name: None,
                head: vec!["X".into()],
                body: vec![AtomRepr {
                    predicate: "E".into(),
                    args: vec![
                        TermRepr::Variable("X".into()),
                        TermRepr::Variable("Y".into()),
                    ],
                }],
            }],
        };
        assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);
        assert_eq!(snap.atoms(), 1);
    }

    #[test]
    fn corrupt_tags_are_rejected() {
        let mut bytes = sample_batch().encode();
        // The first term tag sits after seq (8) + dict_start (4) + count (8).
        bytes[20] = 99;
        assert!(FactBatch::decode(&bytes).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_batch().encode();
        bytes.push(0);
        assert!(FactBatch::decode(&bytes).is_err());
    }
}
