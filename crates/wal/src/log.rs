//! The write-ahead log file: framing, appends, fsync discipline, and the
//! torn-tail repair rule.
//!
//! ## Byte layout
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ magic: b"SACWAL01"                                  8 bytes  │
//! ├──────────────────────────────────────────────────────────────┤
//! │ record 0:  body_len  u32 LE                         4 bytes  │
//! │            checksum  u64 LE   (FNV-1a of body)      8 bytes  │
//! │            body      FactBatch::encode       body_len bytes  │
//! ├──────────────────────────────────────────────────────────────┤
//! │ record 1:  …                                                 │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! ## The torn-tail truncation rule
//!
//! A crash mid-append leaves a partial frame at the end of the file: a
//! short header, a body shorter than its declared length, or a body whose
//! checksum does not match.  On open, the reader walks the frames and stops
//! at the first invalid one; everything before it is the recovered log,
//! and the file is truncated back to that point so the next append starts
//! on a clean boundary.  In an append-only log an invalid frame mid-file
//! can only mean the writer died there (or the medium lost the suffix), so
//! truncation discards nothing that was ever acknowledged under
//! [`SyncMode::Always`].

use crate::codec::fnv64;
use crate::record::FactBatch;
use crate::{SyncMode, WalError, WalResult};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The log file's magic header.
pub const WAL_MAGIC: &[u8; 8] = b"SACWAL01";

/// Frame header size: `u32` body length + `u64` checksum.
const FRAME_HEADER: usize = 4 + 8;

/// What reading (and repairing) a log produced.
#[derive(Debug)]
pub struct LogReadOutcome {
    /// Every valid record, in append order.
    pub batches: Vec<FactBatch>,
    /// Bytes of torn tail that were truncated away (0 for a clean log).
    pub truncated_bytes: u64,
}

/// An open, append-positioned WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    sync: SyncMode,
}

impl WalWriter {
    /// Opens (creating or repairing) the log at `path`, returning the
    /// writer positioned after the last valid record together with
    /// everything that was already on disk.
    ///
    /// A missing file is created with just the magic header; an existing
    /// file has its torn tail (if any) truncated away per the module-level
    /// rule.  A file that does not start with the magic is corruption, not
    /// a torn tail — refusing to append to it beats silently destroying
    /// whatever it actually is.
    pub fn open(path: &Path, sync: SyncMode) -> WalResult<(WalWriter, LogReadOutcome)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| WalError::io(format!("open WAL {}", path.display()), e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| WalError::io(format!("read WAL {}", path.display()), e))?;

        let (batches, valid_len) = if bytes.is_empty() {
            file.write_all(WAL_MAGIC)
                .map_err(|e| WalError::io(format!("initialize WAL {}", path.display()), e))?;
            file.sync_all()
                .map_err(|e| WalError::io(format!("sync WAL {}", path.display()), e))?;
            (Vec::new(), WAL_MAGIC.len() as u64)
        } else {
            parse_frames(&bytes)?
        };

        let truncated_bytes = (bytes.len() as u64).saturating_sub(valid_len);
        if truncated_bytes > 0 {
            file.set_len(valid_len)
                .map_err(|e| WalError::io(format!("truncate torn WAL {}", path.display()), e))?;
            file.sync_all()
                .map_err(|e| WalError::io(format!("sync WAL {}", path.display()), e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| WalError::io(format!("seek WAL {}", path.display()), e))?;

        Ok((
            WalWriter {
                file,
                path: path.to_path_buf(),
                sync,
            },
            LogReadOutcome {
                batches,
                truncated_bytes,
            },
        ))
    }

    /// Appends one record; returns the frame's size in bytes.  Under
    /// [`SyncMode::Always`] the record is fsynced before returning.
    pub fn append(&mut self, batch: &FactBatch) -> WalResult<u64> {
        let body = batch.encode();
        let mut frame = Vec::with_capacity(FRAME_HEADER + body.len());
        frame.extend_from_slice(
            &u32::try_from(body.len())
                .map_err(|_| WalError::corrupt("record body over 4 GiB"))?
                .to_le_bytes(),
        );
        frame.extend_from_slice(&fnv64(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.file
            .write_all(&frame)
            .map_err(|e| WalError::io(format!("append to WAL {}", self.path.display()), e))?;
        if self.sync == SyncMode::Always {
            self.file
                .sync_data()
                .map_err(|e| WalError::io(format!("sync WAL {}", self.path.display()), e))?;
        }
        Ok(frame.len() as u64)
    }

    /// Truncates the log back to just the magic header — called after a
    /// snapshot has durably covered every record.
    pub fn reset(&mut self) -> WalResult<()> {
        self.file
            .set_len(WAL_MAGIC.len() as u64)
            .map_err(|e| WalError::io(format!("reset WAL {}", self.path.display()), e))?;
        self.file
            .sync_all()
            .map_err(|e| WalError::io(format!("sync WAL {}", self.path.display()), e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| WalError::io(format!("seek WAL {}", self.path.display()), e))?;
        Ok(())
    }

    /// Forces everything written so far to disk regardless of the sync
    /// mode (e.g. on graceful shutdown under [`SyncMode::Never`]).
    pub fn sync(&mut self) -> WalResult<()> {
        self.file
            .sync_data()
            .map_err(|e| WalError::io(format!("sync WAL {}", self.path.display()), e))
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Walks `bytes` as magic + frames; returns the valid records and the byte
/// offset the valid prefix ends at.  Invalid framing past the magic is a
/// torn tail (recoverable, by truncation); a bad magic is corruption.
fn parse_frames(bytes: &[u8]) -> WalResult<(Vec<FactBatch>, u64)> {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(WalError::corrupt("WAL file does not start with SACWAL01"));
    }
    let mut batches = Vec::new();
    let mut pos = WAL_MAGIC.len();
    // Every break is a torn tail: the valid prefix ends at `pos`.
    while let Some(header) = bytes.get(pos..pos + FRAME_HEADER) {
        let body_len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(header[4..].try_into().unwrap());
        let Some(body) = bytes.get(pos + FRAME_HEADER..pos + FRAME_HEADER + body_len) else {
            break; // body shorter than declared: torn tail
        };
        if fnv64(body) != checksum {
            break; // checksum mismatch: torn (or lost) suffix
        }
        let Ok(batch) = FactBatch::decode(body) else {
            break; // checksummed but undecodable: treat as torn, keep prefix
        };
        batches.push(batch);
        pos += FRAME_HEADER + body_len;
    }
    Ok((batches, pos as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RelationBatch, TermRepr};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "sac_wal_log_{tag}_{}_{n}.sacwal",
            std::process::id()
        ))
    }

    fn batch(seq: u64) -> FactBatch {
        FactBatch {
            seq,
            dict_start: 0,
            dict_terms: vec![TermRepr::Constant(format!("c{seq}"))],
            relations: vec![RelationBatch {
                predicate: "E".into(),
                arity: 1,
                row_count: 1,
                rows: vec![0],
            }],
        }
    }

    #[test]
    fn append_and_reopen_round_trips() {
        let path = temp_path("roundtrip");
        {
            let (mut writer, outcome) = WalWriter::open(&path, SyncMode::Always).unwrap();
            assert!(outcome.batches.is_empty());
            for seq in 1..=3 {
                writer.append(&batch(seq)).unwrap();
            }
        }
        let (_, outcome) = WalWriter::open(&path, SyncMode::Never).unwrap();
        assert_eq!(outcome.truncated_bytes, 0);
        assert_eq!(
            outcome.batches.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tails_truncate_to_the_valid_prefix() {
        let path = temp_path("torn");
        {
            let (mut writer, _) = WalWriter::open(&path, SyncMode::Never).unwrap();
            writer.append(&batch(1)).unwrap();
            writer.append(&batch(2)).unwrap();
        }
        // Tear the final record: chop bytes off the end of the file.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let (mut writer, outcome) = WalWriter::open(&path, SyncMode::Never).unwrap();
        // The whole partial frame goes, not just the chopped bytes.
        assert!(outcome.truncated_bytes > 0);
        assert_eq!(
            outcome.batches.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![1],
            "the torn record is gone, the valid prefix survives"
        );
        // The repaired log accepts appends on the clean boundary.
        writer.append(&batch(9)).unwrap();
        drop(writer);
        let (_, outcome) = WalWriter::open(&path, SyncMode::Never).unwrap();
        assert_eq!(
            outcome.batches.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![1, 9]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_checksum_drops_the_suffix() {
        let path = temp_path("checksum");
        {
            let (mut writer, _) = WalWriter::open(&path, SyncMode::Never).unwrap();
            writer.append(&batch(1)).unwrap();
            writer.append(&batch(2)).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte in the second record's body.
        let len = bytes.len();
        bytes[len - 3] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_, outcome) = WalWriter::open(&path, SyncMode::Never).unwrap();
        assert_eq!(outcome.batches.len(), 1);
        assert!(outcome.truncated_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = temp_path("reset");
        let (mut writer, _) = WalWriter::open(&path, SyncMode::Never).unwrap();
        writer.append(&batch(1)).unwrap();
        writer.reset().unwrap();
        writer.append(&batch(2)).unwrap();
        drop(writer);
        let (_, outcome) = WalWriter::open(&path, SyncMode::Never).unwrap();
        assert_eq!(
            outcome.batches.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![2]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_files_are_refused() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"definitely not a WAL").unwrap();
        assert!(matches!(
            WalWriter::open(&path, SyncMode::Never),
            Err(WalError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
