//! Snapshot files: atomically written, checksummed checkpoint dumps.
//!
//! A snapshot lives at `snapshot-<seq, zero-padded>.sacsnap` inside the
//! database directory, where `<seq>` is the last WAL sequence number it
//! covers — zero-padding makes lexicographic directory order equal
//! numeric order.  Layout:
//!
//! ```text
//! magic b"SACSNP01" · body_len u64 LE · checksum u64 LE · body
//! ```
//!
//! Writes go to a `.tmp` sibling, fsync, then rename over the final name
//! and fsync the directory — a crash mid-write leaves at worst a stale
//! temp file, never a half-visible snapshot.  Readers take the **newest
//! valid** snapshot: a corrupt or unreadable file is skipped (with its
//! name reported) and the next-older one is tried, so one bad checkpoint
//! degrades recovery to an older baseline plus a longer WAL replay rather
//! than failing it.

use crate::codec::fnv64;
use crate::record::Snapshot;
use crate::{WalError, WalResult};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The snapshot file magic.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SACSNP01";

const SUFFIX: &str = ".sacsnap";

/// The file name covering WAL seq `last_seq`.
fn file_name(last_seq: u64) -> String {
    format!("snapshot-{last_seq:020}{SUFFIX}")
}

/// The `last_seq` a snapshot file name encodes, if it is one.
fn parse_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?
        .strip_suffix(SUFFIX)?
        .parse()
        .ok()
}

/// Writes `snapshot` into `dir` atomically; returns the final path and the
/// file's size in bytes.
pub fn write_snapshot(dir: &Path, snapshot: &Snapshot) -> WalResult<(PathBuf, u64)> {
    let body = snapshot.encode();
    let mut bytes = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 16 + body.len());
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&(body.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv64(&body).to_le_bytes());
    bytes.extend_from_slice(&body);

    let final_path = dir.join(file_name(snapshot.last_seq));
    let tmp_path = dir.join(format!("{}.tmp", file_name(snapshot.last_seq)));
    {
        let mut tmp = fs::File::create(&tmp_path)
            .map_err(|e| WalError::io(format!("create {}", tmp_path.display()), e))?;
        tmp.write_all(&bytes)
            .map_err(|e| WalError::io(format!("write {}", tmp_path.display()), e))?;
        tmp.sync_all()
            .map_err(|e| WalError::io(format!("sync {}", tmp_path.display()), e))?;
    }
    fs::rename(&tmp_path, &final_path).map_err(|e| {
        WalError::io(
            format!(
                "rename {} over {}",
                tmp_path.display(),
                final_path.display()
            ),
            e,
        )
    })?;
    sync_dir(dir)?;
    Ok((final_path, bytes.len() as u64))
}

/// Reads and validates one snapshot file.
pub fn read_snapshot(path: &Path) -> WalResult<Snapshot> {
    let bytes = fs::read(path).map_err(|e| WalError::io(format!("read {}", path.display()), e))?;
    let header = SNAPSHOT_MAGIC.len() + 16;
    if bytes.len() < header || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(WalError::corrupt(format!(
            "{} is not a SACSNP01 snapshot",
            path.display()
        )));
    }
    let body_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let body = &bytes[header..];
    if body.len() as u64 != body_len {
        return Err(WalError::corrupt(format!(
            "{}: body is {} bytes, header declares {body_len}",
            path.display(),
            body.len()
        )));
    }
    if fnv64(body) != checksum {
        return Err(WalError::corrupt(format!(
            "{}: checksum mismatch",
            path.display()
        )));
    }
    Snapshot::decode(body)
}

/// The newest **valid** snapshot in `dir`, if any, with the names of
/// corrupt snapshot files that were skipped on the way (newest first).
pub fn latest_snapshot(dir: &Path) -> WalResult<(Option<Snapshot>, Vec<PathBuf>)> {
    let mut seqs: Vec<u64> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|entry| entry.ok())
            .filter_map(|entry| parse_file_name(&entry.file_name().to_string_lossy()))
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(WalError::io(format!("list {}", dir.display()), e)),
    };
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    let mut skipped = Vec::new();
    for seq in seqs {
        let path = dir.join(file_name(seq));
        match read_snapshot(&path) {
            Ok(snapshot) => return Ok((Some(snapshot), skipped)),
            Err(_) => skipped.push(path),
        }
    }
    Ok((None, skipped))
}

/// Removes all but the newest `keep` snapshot files (temp leftovers
/// included).  Best-effort: a file that refuses deletion is left behind.
pub fn prune_snapshots(dir: &Path, keep: usize) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut seqs = Vec::new();
    for entry in entries.filter_map(|e| e.ok()) {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".tmp") && name.contains(SUFFIX) {
            fs::remove_file(entry.path()).ok();
        } else if let Some(seq) = parse_file_name(&name) {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    for seq in seqs.into_iter().skip(keep.max(1)) {
        fs::remove_file(dir.join(file_name(seq))).ok();
    }
}

/// fsyncs a directory so a just-renamed file's directory entry is durable.
fn sync_dir(dir: &Path) -> WalResult<()> {
    #[cfg(unix)]
    {
        fs::File::open(dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| WalError::io(format!("sync directory {}", dir.display()), e))?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RelationBatch, TermRepr};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("sac_wal_snap_{tag}_{}_{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snapshot(last_seq: u64) -> Snapshot {
        Snapshot {
            last_seq,
            dict: vec![TermRepr::Constant(format!("s{last_seq}"))],
            relations: vec![RelationBatch {
                predicate: "E".into(),
                arity: 1,
                row_count: 1,
                rows: vec![0],
            }],
            tgds: vec![],
            views: vec![],
            plans: vec![],
        }
    }

    #[test]
    fn write_then_latest_round_trips() {
        let dir = temp_dir("roundtrip");
        write_snapshot(&dir, &snapshot(3)).unwrap();
        write_snapshot(&dir, &snapshot(8)).unwrap();
        let (latest, skipped) = latest_snapshot(&dir).unwrap();
        assert!(skipped.is_empty());
        assert_eq!(latest.unwrap().last_seq, 8);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = temp_dir("fallback");
        write_snapshot(&dir, &snapshot(3)).unwrap();
        let (newest, _) = write_snapshot(&dir, &snapshot(9)).unwrap();
        // Corrupt the newest file's body.
        let mut bytes = fs::read(&newest).unwrap();
        let len = bytes.len();
        bytes[len - 1] ^= 0xff;
        fs::write(&newest, &bytes).unwrap();

        let (latest, skipped) = latest_snapshot(&dir).unwrap();
        assert_eq!(latest.unwrap().last_seq, 3);
        assert_eq!(skipped, vec![newest]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_means_no_snapshot() {
        let dir = std::env::temp_dir().join(format!("sac_wal_absent_{}", std::process::id()));
        let (latest, skipped) = latest_snapshot(&dir).unwrap();
        assert!(latest.is_none());
        assert!(skipped.is_empty());
    }

    #[test]
    fn prune_keeps_the_newest() {
        let dir = temp_dir("prune");
        for seq in [1, 5, 9] {
            write_snapshot(&dir, &snapshot(seq)).unwrap();
        }
        prune_snapshots(&dir, 2);
        let (latest, _) = latest_snapshot(&dir).unwrap();
        assert_eq!(latest.unwrap().last_seq, 9);
        let names: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 2, "oldest pruned away: {names:?}");
        fs::remove_dir_all(&dir).ok();
    }
}
