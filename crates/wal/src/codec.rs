//! The byte codec shared by WAL records and snapshots: little-endian
//! fixed-width integers, length-prefixed UTF-8 strings, and the FNV-1a
//! checksum that guards every frame.  Hand-rolled on purpose — the
//! workspace vendors no serialization dependency, and the format is small
//! enough that explicitness beats a derive.

use crate::{WalError, WalResult};

/// FNV-1a over `bytes`: the same cheap, deterministic digest the
/// differential test suites use, here guarding record frames.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// An append-only byte buffer with typed writers.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub fn new() -> Encoder {
        Encoder::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` travels as `u64` so the format is identical across hosts.
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn str(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).expect("string over 4 GiB"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn codes(&mut self, codes: &[u32]) {
        self.buf.reserve(codes.len() * 4);
        for &c in codes {
            self.u32(c);
        }
    }
}

/// A checked reader over a byte slice; every read that runs off the end or
/// finds malformed data reports [`WalError::Corrupt`].
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> WalResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| WalError::corrupt("record truncated mid-field"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub fn u8(&mut self) -> WalResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> WalResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> WalResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn len(&mut self) -> WalResult<usize> {
        usize::try_from(self.u64()?).map_err(|_| WalError::corrupt("length exceeds address space"))
    }

    /// A length bounded by what the remaining bytes could possibly hold
    /// (each element at least `min_element_bytes` wide) — the guard that
    /// keeps a corrupt length field from turning into a giant allocation.
    pub fn bounded_len(&mut self, min_element_bytes: usize) -> WalResult<usize> {
        let n = self.len()?;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(min_element_bytes.max(1))
            .is_none_or(|need| need > remaining)
        {
            return Err(WalError::corrupt(format!(
                "declared {n} elements but only {remaining} bytes remain"
            )));
        }
        Ok(n)
    }

    pub fn str(&mut self) -> WalResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WalError::corrupt("string field is not UTF-8"))
    }

    pub fn codes(&mut self, n: usize) -> WalResult<Vec<u32>> {
        let bytes = self.take(
            n.checked_mul(4)
                .ok_or_else(|| WalError::corrupt("code-row length overflows"))?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_known_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn primitives_round_trip() {
        let mut enc = Encoder::new();
        enc.u8(7);
        enc.u32(0xdead_beef);
        enc.u64(u64::MAX - 1);
        enc.len(42);
        enc.str("héllo");
        enc.codes(&[1, 2, 3]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u32().unwrap(), 0xdead_beef);
        assert_eq!(dec.u64().unwrap(), u64::MAX - 1);
        assert_eq!(dec.len().unwrap(), 42);
        assert_eq!(dec.str().unwrap(), "héllo");
        assert_eq!(dec.codes(3).unwrap(), vec![1, 2, 3]);
        assert!(dec.is_done());
    }

    #[test]
    fn truncated_reads_report_corruption() {
        let mut enc = Encoder::new();
        enc.u32(5);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(dec.u64().is_err());
    }

    #[test]
    fn bounded_len_rejects_absurd_counts() {
        let mut enc = Encoder::new();
        enc.len(usize::MAX / 2);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(dec.bounded_len(4).is_err());
    }

    #[test]
    fn non_utf8_strings_report_corruption() {
        let mut enc = Encoder::new();
        enc.u32(2);
        enc.u8(0xff);
        enc.u8(0xfe);
        let bytes = enc.into_bytes();
        assert!(Decoder::new(&bytes).str().is_err());
    }
}
