//! Term unification for the backward-resolution rewriting step.
//!
//! The unifier works over equivalence classes of terms (union–find on a
//! small map).  Constants are rigid: two distinct constants never unify, and
//! a class containing a constant uses it as representative.

use sac_common::{Atom, Term};
use std::collections::BTreeMap;

/// A most-general unifier represented as a union–find over terms.
#[derive(Debug, Clone, Default)]
pub struct Unifier {
    parent: BTreeMap<Term, Term>,
}

impl Unifier {
    /// The empty unifier.
    pub fn new() -> Unifier {
        Unifier::default()
    }

    /// Finds the representative of a term's class.
    pub fn find(&self, term: Term) -> Term {
        let mut current = term;
        while let Some(next) = self.parent.get(&current) {
            if *next == current {
                break;
            }
            current = *next;
        }
        current
    }

    /// Unifies two terms; returns `false` on a constant clash.
    pub fn union(&mut self, a: Term, b: Term) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return true;
        }
        match (ra.is_constant(), rb.is_constant()) {
            (true, true) => false,
            // Constants become representatives so that `resolve` maps
            // variables to them.
            (true, false) => {
                self.parent.insert(rb, ra);
                true
            }
            (false, true) => {
                self.parent.insert(ra, rb);
                true
            }
            (false, false) => {
                // Deterministic orientation.
                if ra < rb {
                    self.parent.insert(rb, ra);
                } else {
                    self.parent.insert(ra, rb);
                }
                true
            }
        }
    }

    /// Unifies two atoms position-wise; returns `false` if the predicates or
    /// arities differ or a constant clash occurs.
    pub fn unify_atoms(&mut self, a: &Atom, b: &Atom) -> bool {
        if a.predicate != b.predicate || a.arity() != b.arity() {
            return false;
        }
        a.args
            .iter()
            .zip(b.args.iter())
            .all(|(x, y)| self.union(*x, *y))
    }

    /// Applies the unifier to a term (maps it to its representative).
    pub fn resolve(&self, term: Term) -> Term {
        self.find(term)
    }

    /// Applies the unifier to an atom.
    pub fn resolve_atom(&self, atom: &Atom) -> Atom {
        atom.map_args(|t| self.resolve(t))
    }

    /// The terms unified into the same class as `term` (including itself).
    pub fn class_of(&self, term: Term) -> Vec<Term> {
        let rep = self.find(term);
        let mut members: Vec<Term> = self
            .parent
            .keys()
            .copied()
            .filter(|t| self.find(*t) == rep)
            .collect();
        if !members.contains(&rep) {
            members.push(rep);
        }
        if !members.contains(&term) {
            members.push(term);
        }
        members
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::atom;

    #[test]
    fn unifying_matching_atoms_succeeds() {
        let mut u = Unifier::new();
        assert!(u.unify_atoms(&atom!("R", var "x", var "y"), &atom!("R", var "a", cst "c")));
        assert_eq!(u.resolve(Term::variable("y")), Term::constant("c"));
        assert_eq!(
            u.resolve(Term::variable("x")),
            u.resolve(Term::variable("a"))
        );
    }

    #[test]
    fn constant_clash_fails() {
        let mut u = Unifier::new();
        assert!(!u.unify_atoms(&atom!("R", cst "a", var "y"), &atom!("R", cst "b", var "z")));
    }

    #[test]
    fn predicate_or_arity_mismatch_fails() {
        let mut u = Unifier::new();
        assert!(!u.unify_atoms(&atom!("R", var "x"), &atom!("S", var "y")));
        assert!(!u.unify_atoms(&atom!("R", var "x"), &atom!("R", var "x", var "y")));
    }

    #[test]
    fn classes_are_transitive() {
        let mut u = Unifier::new();
        u.union(Term::variable("a"), Term::variable("b"));
        u.union(Term::variable("b"), Term::variable("c"));
        assert_eq!(
            u.resolve(Term::variable("a")),
            u.resolve(Term::variable("c"))
        );
        let class = u.class_of(Term::variable("a"));
        assert!(class.len() >= 3);
    }

    #[test]
    fn repeated_variables_force_equalities() {
        let mut u = Unifier::new();
        assert!(u.unify_atoms(&atom!("R", var "x", var "x"), &atom!("R", var "u", var "v")));
        assert_eq!(
            u.resolve(Term::variable("u")),
            u.resolve(Term::variable("v"))
        );
    }

    #[test]
    fn constants_become_representatives() {
        let mut u = Unifier::new();
        u.union(Term::variable("x"), Term::constant("k"));
        u.union(Term::variable("y"), Term::variable("x"));
        assert_eq!(u.resolve(Term::variable("y")), Term::constant("k"));
    }
}
