//! The backward-resolution rewriting loop.
//!
//! Starting from the input query, repeatedly pick a disjunct `p`, a tgd
//! `τ = φ → ∃z̄ ψ` (with variables renamed apart), and an atom `α` of `p`
//! unifiable with a head atom of `ψ`; when the unification satisfies the
//! applicability conditions below, add the rewritten disjunct
//! `θ(p \ {α}) ∪ θ(φ)` to the set.  The loop runs to a fixpoint modulo a
//! canonical form (variable renaming by first occurrence), or until the
//! budget is exhausted.
//!
//! Applicability conditions (soundness of a single resolution step): for
//! every existential variable `z` of `τ` whose class under the unifier meets
//! a term of the query atom `α`, the class must contain
//! * no constant,
//! * no frontier variable of `τ`,
//! * no answer (head) variable of `p`,
//! * no query variable that occurs in `p` outside of `α`.
//!
//! These are the classic conditions under which the resolution step is the
//! inverse of a chase step; together with the fixpoint they yield the perfect
//! rewriting for non-recursive and sticky sets (Propositions 17 and 19).

use crate::budget::RewriteBudget;
use crate::unify::Unifier;
use sac_common::{intern, Atom, FreshSource, Symbol, Term};
use sac_deps::Tgd;
use sac_query::{ConjunctiveQuery, UnionOfConjunctiveQueries};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The result of a rewriting computation.
#[derive(Debug, Clone)]
pub struct UcqRewriting {
    /// The disjuncts accumulated so far (always includes the input query).
    pub ucq: UnionOfConjunctiveQueries,
    /// Whether a fixpoint was reached (the rewriting is complete/perfect).
    pub complete: bool,
    /// Number of successful resolution steps performed.
    pub steps: usize,
}

impl UcqRewriting {
    /// The height of the rewriting (maximal disjunct size), the quantity
    /// `f_C(q, Σ)` of Section 5 measured by experiment E5.
    pub fn height(&self) -> usize {
        self.ucq.height()
    }
}

/// Computes the UCQ rewriting of `query` under `tgds` within `budget`.
pub fn rewrite(query: &ConjunctiveQuery, tgds: &[Tgd], budget: RewriteBudget) -> UcqRewriting {
    let mut fresh = FreshSource::new();
    let start = query.dedup_atoms();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    seen.insert(canonical_form(&start));
    let mut disjuncts: Vec<ConjunctiveQuery> = vec![start.clone()];
    let mut queue: VecDeque<ConjunctiveQuery> = VecDeque::from([start]);
    let mut steps = 0usize;
    let mut complete = true;

    while let Some(current) = queue.pop_front() {
        for tgd in tgds {
            // Rename the tgd apart from the current disjunct.  The renaming
            // must be *consistent* across occurrences of the same variable,
            // hence the memo map.
            let mut rename_map: BTreeMap<Symbol, Symbol> = BTreeMap::new();
            let renamed = tgd.rename_variables(|v| {
                *rename_map
                    .entry(v)
                    .or_insert_with(|| fresh.fresh_var(&format!("r_{}", v.as_str())))
            });
            for (atom_idx, atom) in current.body.iter().enumerate() {
                for head_atom in &renamed.head {
                    if steps >= budget.max_steps || disjuncts.len() >= budget.max_disjuncts {
                        complete = false;
                        return finish(disjuncts, complete, steps);
                    }
                    let Some(rewritten) =
                        resolution_step(&current, atom_idx, atom, &renamed, head_atom)
                    else {
                        continue;
                    };
                    if rewritten.size() > budget.max_atoms_per_disjunct {
                        complete = false;
                        continue;
                    }
                    steps += 1;
                    let canon = canonical_form(&rewritten);
                    if seen.insert(canon) {
                        disjuncts.push(rewritten.clone());
                        queue.push_back(rewritten);
                    }
                }
            }
        }
    }
    finish(disjuncts, complete, steps)
}

fn finish(disjuncts: Vec<ConjunctiveQuery>, complete: bool, steps: usize) -> UcqRewriting {
    UcqRewriting {
        ucq: UnionOfConjunctiveQueries::new(disjuncts).expect("rewriting preserves the head arity"),
        complete,
        steps,
    }
}

/// Attempts one backward-resolution step of `atom` (at `atom_idx` in `query`)
/// against `head_atom` of `tgd`.
fn resolution_step(
    query: &ConjunctiveQuery,
    atom_idx: usize,
    atom: &Atom,
    tgd: &Tgd,
    head_atom: &Atom,
) -> Option<ConjunctiveQuery> {
    let mut unifier = Unifier::new();
    if !unifier.unify_atoms(atom, head_atom) {
        return None;
    }

    let existential = tgd.existential_variables();
    let frontier = tgd.frontier_variables();
    let answer_vars: BTreeSet<Symbol> = query.free_variables();

    // Query variables occurring outside the rewritten atom.
    let mut outside: BTreeSet<Symbol> = BTreeSet::new();
    for (i, other) in query.body.iter().enumerate() {
        if i != atom_idx {
            outside.extend(other.variables());
        }
    }
    outside.extend(answer_vars.iter().copied());

    // Applicability: check every class that contains an existential variable.
    for z in &existential {
        let z_term = Term::Variable(*z);
        // Only classes actually touched by the unification matter.
        let class = unifier.class_of(z_term);
        if class.len() <= 1 {
            continue;
        }
        for member in class {
            if member == z_term {
                continue;
            }
            match member {
                Term::Constant(_) => return None,
                Term::Null(_) => return None,
                Term::Variable(v) => {
                    if frontier.contains(&v) {
                        return None;
                    }
                    if existential.contains(&v) && v != *z {
                        return None;
                    }
                    // A query variable: it must not occur outside the atom
                    // being rewritten and must not be an answer variable.
                    if !existential.contains(&v) && outside.contains(&v) {
                        return None;
                    }
                }
            }
        }
    }

    // Answer variables must stay variables (our CQ model has no constants in
    // heads); bail out of steps that would bind them to constants.
    for v in &answer_vars {
        if unifier.resolve(Term::Variable(*v)).is_constant() {
            return None;
        }
    }

    // Build the rewritten disjunct: θ(body(q) \ {α}) ∪ θ(body(τ)).
    let mut body: Vec<Atom> = Vec::new();
    for (i, other) in query.body.iter().enumerate() {
        if i != atom_idx {
            body.push(unifier.resolve_atom(other));
        }
    }
    for b in &tgd.body {
        body.push(unifier.resolve_atom(b));
    }
    // Deduplicate atoms.
    let mut dedup: Vec<Atom> = Vec::new();
    let mut seen: BTreeSet<Atom> = BTreeSet::new();
    for a in body {
        if seen.insert(a.clone()) {
            dedup.push(a);
        }
    }

    // Head: answer variables resolved through the unifier (they remain
    // variables by the check above).
    let head: Vec<Symbol> = query
        .head
        .iter()
        .map(|v| match unifier.resolve(Term::Variable(*v)) {
            Term::Variable(sym) => sym,
            _ => unreachable!("answer variables were checked to remain variables"),
        })
        .collect();

    Some(ConjunctiveQuery::new_unchecked(head, dedup))
}

/// A canonical string form of a query up to consistent variable renaming:
/// variables are renumbered in first-occurrence order over the sorted atom
/// list, constants keep their names.
fn canonical_form(query: &ConjunctiveQuery) -> String {
    // Sort atoms by (predicate name, shape) first to reduce sensitivity to
    // atom order, then rename variables by first occurrence.
    let mut atoms: Vec<Atom> = query.body.clone();
    atoms.sort_by_key(|a| {
        (
            a.predicate.as_str(),
            a.args
                .iter()
                .map(|t| match t {
                    Term::Constant(c) => format!("c{}", c.as_str()),
                    Term::Variable(_) => "v".to_string(),
                    Term::Null(n) => format!("n{n}"),
                })
                .collect::<Vec<_>>(),
        )
    });
    let mut names: BTreeMap<Symbol, usize> = BTreeMap::new();
    let mut next = 0usize;
    let mut render_term = |t: &Term| -> String {
        match t {
            Term::Constant(c) => format!("c:{}", c.as_str()),
            Term::Null(n) => format!("n:{n}"),
            Term::Variable(v) => {
                let id = *names.entry(*v).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
                format!("v{id}")
            }
        }
    };
    let mut out = String::new();
    // Head first so that answer-variable positions matter.
    out.push_str("H(");
    for v in &query.head {
        out.push_str(&render_term(&Term::Variable(*v)));
        out.push(',');
    }
    out.push(')');
    for a in &atoms {
        out.push_str(a.predicate.as_str().as_str());
        out.push('(');
        for t in &a.args {
            out.push_str(&render_term(t));
            out.push(',');
        }
        out.push(')');
    }
    out
}

/// Interns a fresh-looking variable name for tests.
#[allow(dead_code)]
fn v(name: &str) -> Symbol {
    intern(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::atom;
    use sac_query::{contained_in, evaluate_boolean, FrozenQuery};

    fn budget() -> RewriteBudget {
        RewriteBudget::small()
    }

    #[test]
    fn linear_tgd_produces_the_expected_two_disjuncts() {
        // Σ = { R(x,y) → S(y) }, q() :- S(u): rewriting = S(u) ∨ R(x,u).
        let tgds = vec![Tgd::new(
            vec![atom!("R", var "x", var "y")],
            vec![atom!("S", var "y")],
        )
        .unwrap()];
        let q = ConjunctiveQuery::boolean(vec![atom!("S", var "u")]).unwrap();
        let rw = rewrite(&q, &tgds, budget());
        assert!(rw.complete);
        assert_eq!(rw.ucq.len(), 2);
        // One disjunct mentions R.
        assert!(rw
            .ucq
            .disjuncts
            .iter()
            .any(|d| d.predicates().contains(&intern("R"))));
    }

    #[test]
    fn existential_variables_are_erased_when_isolated() {
        // Person(x) → ∃z HasParent(x,z); q() :- HasParent(u,v)
        // rewrites to Person(u).
        let tgds = vec![Tgd::new(
            vec![atom!("Person", var "x")],
            vec![atom!("HasParent", var "x", var "z")],
        )
        .unwrap()];
        let q = ConjunctiveQuery::boolean(vec![atom!("HasParent", var "u", var "v")]).unwrap();
        let rw = rewrite(&q, &tgds, budget());
        assert!(rw.complete);
        assert_eq!(rw.ucq.len(), 2);
        assert!(rw
            .ucq
            .disjuncts
            .iter()
            .any(|d| d.size() == 1 && d.predicates().contains(&intern("Person"))));
    }

    #[test]
    fn existential_variable_shared_outside_the_atom_blocks_the_step() {
        // Same tgd, but v is used elsewhere: HasParent(u,v), Child(v).
        let tgds = vec![Tgd::new(
            vec![atom!("Person", var "x")],
            vec![atom!("HasParent", var "x", var "z")],
        )
        .unwrap()];
        let q = ConjunctiveQuery::boolean(vec![
            atom!("HasParent", var "u", var "v"),
            atom!("Child", var "v"),
        ])
        .unwrap();
        let rw = rewrite(&q, &tgds, budget());
        assert!(rw.complete);
        assert_eq!(rw.ucq.len(), 1, "no sound rewriting step exists");
    }

    #[test]
    fn answer_variables_cannot_be_absorbed_into_existentials() {
        let tgds = vec![Tgd::new(
            vec![atom!("Person", var "x")],
            vec![atom!("HasParent", var "x", var "z")],
        )
        .unwrap()];
        // v is an answer variable: the step must be blocked.
        let q = ConjunctiveQuery::new(
            vec![intern("v")],
            vec![atom!("HasParent", var "u", var "v")],
        )
        .unwrap();
        let rw = rewrite(&q, &tgds, budget());
        assert!(rw.complete);
        assert_eq!(rw.ucq.len(), 1);
    }

    #[test]
    fn rewriting_characterizes_containment_for_nonrecursive_sets() {
        // Σ: Employee(x, d) → Dept(d); Dept(d) → ∃m Manages(m, d)
        // q() :- Manages(m, d).  Then q'() :- Employee(e, d) is contained in q
        // under Σ, and the rewriting of q must witness it without the chase.
        let tgds = vec![
            Tgd::new(
                vec![atom!("Employee", var "x", var "d")],
                vec![atom!("Dept", var "d")],
            )
            .unwrap(),
            Tgd::new(
                vec![atom!("Dept", var "d")],
                vec![atom!("Manages", var "m", var "d")],
            )
            .unwrap(),
        ];
        let q = ConjunctiveQuery::boolean(vec![atom!("Manages", var "m", var "d")]).unwrap();
        let rw = rewrite(&q, &tgds, budget());
        assert!(rw.complete);
        // Disjuncts: Manages(m,d) ∨ Dept(d) ∨ Employee(x,d).
        assert_eq!(rw.ucq.len(), 3);

        let q_prime =
            ConjunctiveQuery::boolean(vec![atom!("Employee", cst "ann", cst "sales")]).unwrap();
        let frozen = FrozenQuery::freeze(&q_prime);
        assert!(rw.ucq.evaluate_boolean(&frozen.instance));

        let unrelated = ConjunctiveQuery::boolean(vec![atom!("Project", cst "p")]).unwrap();
        let frozen2 = FrozenQuery::freeze(&unrelated);
        assert!(!rw.ucq.evaluate_boolean(&frozen2.instance));
    }

    #[test]
    fn rewriting_of_example3_has_exponential_height() {
        // Example 3 (arity n = 2): the disjunct mentioning only P_n contains
        // 2^n atoms.  We build the family for n = 2 and check the height.
        // Σ_i: P_i(x̄_{1..i-1}, Z, x̄_{i+1..n}, Z, O), P_i(…, O, …, Z, O) → P_{i-1}(…, Z, …, Z, O)
        // with n = 2 the predicates have arity n + 2 = 4.
        let n = 2usize;
        let mk_var = |name: String| Term::Variable(intern(&name));
        let mut tgds = Vec::new();
        for i in 1..=n {
            let mut args_z: Vec<Term> = Vec::new();
            let mut args_o: Vec<Term> = Vec::new();
            let mut head_args: Vec<Term> = Vec::new();
            for j in 1..=n {
                if j == i {
                    args_z.push(mk_var("Z".into()));
                    args_o.push(mk_var("O".into()));
                    head_args.push(mk_var("Z".into()));
                } else {
                    args_z.push(mk_var(format!("x{j}")));
                    args_o.push(mk_var(format!("x{j}")));
                    head_args.push(mk_var(format!("x{j}")));
                }
            }
            for args in [&mut args_z, &mut args_o, &mut head_args] {
                args.push(mk_var("Z".into()));
                args.push(mk_var("O".into()));
            }
            tgds.push(
                Tgd::new(
                    vec![
                        Atom::from_parts(&format!("P{i}"), args_z),
                        Atom::from_parts(&format!("P{i}"), args_o),
                    ],
                    vec![Atom::from_parts(&format!("P{}", i - 1), head_args)],
                )
                .unwrap(),
            );
        }
        // q() :- P0(0,…,0,0,1).
        let mut q_args = vec![Term::constant("0"); n];
        q_args.push(Term::constant("0"));
        q_args.push(Term::constant("1"));
        let q = ConjunctiveQuery::boolean(vec![Atom::from_parts("P0", q_args)]).unwrap();

        let rw = rewrite(&q, &tgds, RewriteBudget::large());
        assert!(rw.complete);
        // The P_n-only disjunct has 2^n atoms, so the height is at least 2^n.
        let pn = intern(&format!("P{n}"));
        let pn_only = rw
            .ucq
            .disjuncts
            .iter()
            .filter(|d| d.predicates() == BTreeSet::from([pn]))
            .map(|d| d.size())
            .max()
            .unwrap_or(0);
        assert!(
            pn_only >= 1 << n,
            "expected a P{n}-only disjunct with ≥ {} atoms, found {}",
            1 << n,
            pn_only
        );
    }

    #[test]
    fn rewriting_result_always_contains_the_original_query() {
        let tgds = vec![Tgd::new(vec![atom!("A", var "x")], vec![atom!("B", var "x")]).unwrap()];
        let q = ConjunctiveQuery::boolean(vec![atom!("B", var "u"), atom!("C", var "u")]).unwrap();
        let rw = rewrite(&q, &tgds, budget());
        assert!(rw
            .ucq
            .disjuncts
            .iter()
            .any(|d| contained_in(d, &q) && contained_in(&q, d)));
        // And the rewritten disjunct A(u), C(u) is present too.
        assert!(rw
            .ucq
            .disjuncts
            .iter()
            .any(|d| d.predicates().contains(&intern("A"))));
        // Sanity: evaluating the rewriting on a database satisfying only the
        // rewritten disjunct succeeds.
        let db = sac_storage::Instance::from_atoms(vec![atom!("A", cst "k"), atom!("C", cst "k")])
            .unwrap();
        assert!(rw.ucq.evaluate_boolean(&db));
        assert!(!evaluate_boolean(&q, &db));
    }

    #[test]
    fn budget_exhaustion_is_reported_for_recursive_sets() {
        // A recursive guarded set (not UCQ rewritable): the loop must stop and
        // report incompleteness rather than diverge.
        let tgds = vec![Tgd::new(
            vec![atom!("P", var "x", var "y"), atom!("S", var "x")],
            vec![atom!("S", var "y")],
        )
        .unwrap()];
        let q = ConjunctiveQuery::boolean(vec![atom!("S", cst "b")]).unwrap();
        let rw = rewrite(&q, &tgds, RewriteBudget::new(16, 8, 200));
        assert!(!rw.complete);
        assert!(rw.ucq.len() <= 16);
    }
}
