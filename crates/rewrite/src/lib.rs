//! # sac-rewrite
//!
//! UCQ rewriting of conjunctive queries under tgds — the engine behind the
//! paper's Section 5 (Definition 2: *UCQ rewritability*).
//!
//! For non-recursive and sticky sets of tgds, CQ containment `q' ⊆Σ q` can be
//! reduced to the evaluation of a (finite, constraint-free) union of CQs `Q`
//! over the canonical database of `q'`: this crate computes that `Q` by
//! backward resolution (piece unification) in the style of the XRewrite
//! algorithm of Gottlob, Orsi & Pieris (TODS 2014), which the paper's
//! Propositions 17 and 19 invoke.
//!
//! The rewriting loop is budgeted: for UCQ-rewritable classes it reaches a
//! fixpoint and reports `complete = true`; for other classes (e.g. guarded
//! sets, which are *not* UCQ rewritable — see the appendix counterexample) it
//! stops at the budget and reports `complete = false`, letting callers fall
//! back to chase-based reasoning.

pub mod budget;
pub mod containment;
pub mod unify;
pub mod xrewrite;

pub use budget::RewriteBudget;
pub use containment::contained_via_rewriting;
pub use xrewrite::{rewrite, UcqRewriting};
