//! Budgets for the rewriting loop.

/// Limits on a UCQ rewriting computation.
///
/// For UCQ-rewritable classes (non-recursive, sticky) the rewriting reaches a
/// fixpoint well within reasonable budgets; the limits exist so that feeding
/// a non-UCQ-rewritable set (e.g. a recursive guarded set) never diverges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewriteBudget {
    /// Maximum number of disjuncts kept in the rewriting.
    pub max_disjuncts: usize,
    /// Maximum number of atoms allowed in a generated disjunct.
    pub max_atoms_per_disjunct: usize,
    /// Maximum number of rewriting steps (disjunct × tgd × atom applications).
    pub max_steps: usize,
}

impl RewriteBudget {
    /// Budget for unit tests and interactive inputs.
    pub fn small() -> RewriteBudget {
        RewriteBudget {
            max_disjuncts: 2_000,
            max_atoms_per_disjunct: 64,
            max_steps: 50_000,
        }
    }

    /// Budget for the benchmark workloads (Example 3 sweeps in particular).
    pub fn large() -> RewriteBudget {
        RewriteBudget {
            max_disjuncts: 50_000,
            max_atoms_per_disjunct: 1_024,
            max_steps: 2_000_000,
        }
    }

    /// Custom budget.
    pub fn new(
        max_disjuncts: usize,
        max_atoms_per_disjunct: usize,
        max_steps: usize,
    ) -> RewriteBudget {
        RewriteBudget {
            max_disjuncts,
            max_atoms_per_disjunct,
            max_steps,
        }
    }
}

impl Default for RewriteBudget {
    fn default() -> RewriteBudget {
        RewriteBudget::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        assert!(RewriteBudget::small().max_disjuncts < RewriteBudget::large().max_disjuncts);
        assert_eq!(RewriteBudget::default(), RewriteBudget::small());
    }
}
