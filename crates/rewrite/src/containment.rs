//! Containment under tgds via UCQ rewriting.
//!
//! For UCQ-rewritable classes (non-recursive, sticky) this gives an exact
//! containment test without running the chase: `q' ⊆Σ q` iff the canonical
//! head tuple of `q'` is an answer of the rewriting of `q` on the canonical
//! database of `q'` (Definition 2).

use crate::budget::RewriteBudget;
use crate::xrewrite::rewrite;
use sac_deps::Tgd;
use sac_query::{ConjunctiveQuery, FrozenQuery};

/// Decides `q_left ⊆Σ q_right` via the UCQ rewriting of `q_right`.
///
/// Returns `None` when the rewriting did not reach a fixpoint within the
/// budget (the set is then presumably not UCQ rewritable and the caller
/// should use a chase-based test instead).
pub fn contained_via_rewriting(
    q_left: &ConjunctiveQuery,
    q_right: &ConjunctiveQuery,
    tgds: &[Tgd],
    budget: RewriteBudget,
) -> Option<bool> {
    if q_left.head.len() != q_right.head.len() {
        return Some(false);
    }
    let rewriting = rewrite(q_right, tgds, budget);
    if !rewriting.complete {
        return None;
    }
    let frozen = FrozenQuery::freeze(q_left);
    let answers = rewriting.ucq.evaluate(&frozen.instance);
    Some(answers.contains(&frozen.head))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};

    fn tgds() -> Vec<Tgd> {
        vec![
            Tgd::new(
                vec![atom!("Employee", var "x", var "d")],
                vec![atom!("Dept", var "d")],
            )
            .unwrap(),
            Tgd::new(
                vec![atom!("Dept", var "d")],
                vec![atom!("Manages", var "m", var "d")],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn containment_through_two_tgd_steps() {
        let q_left = ConjunctiveQuery::boolean(vec![atom!("Employee", var "e", var "d")]).unwrap();
        let q_right = ConjunctiveQuery::boolean(vec![atom!("Manages", var "m", var "d")]).unwrap();
        assert_eq!(
            contained_via_rewriting(&q_left, &q_right, &tgds(), RewriteBudget::small()),
            Some(true)
        );
        // The converse fails.
        assert_eq!(
            contained_via_rewriting(&q_right, &q_left, &tgds(), RewriteBudget::small()),
            Some(false)
        );
    }

    #[test]
    fn containment_without_constraints_reduces_to_classical() {
        let q_left = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "z"),
        ])
        .unwrap();
        let q_right = ConjunctiveQuery::boolean(vec![atom!("E", var "x", var "y")]).unwrap();
        assert_eq!(
            contained_via_rewriting(&q_left, &q_right, &[], RewriteBudget::small()),
            Some(true)
        );
        assert_eq!(
            contained_via_rewriting(&q_right, &q_left, &[], RewriteBudget::small()),
            Some(false)
        );
    }

    #[test]
    fn non_boolean_heads_are_compared_positionally() {
        let q_left =
            ConjunctiveQuery::new(vec![intern("d")], vec![atom!("Employee", var "e", var "d")])
                .unwrap();
        let q_right =
            ConjunctiveQuery::new(vec![intern("d")], vec![atom!("Manages", var "m", var "d")])
                .unwrap();
        assert_eq!(
            contained_via_rewriting(&q_left, &q_right, &tgds(), RewriteBudget::small()),
            Some(true)
        );
        // Swapped answer variable breaks containment.
        let q_right_swapped =
            ConjunctiveQuery::new(vec![intern("m")], vec![atom!("Manages", var "m", var "d")])
                .unwrap();
        assert_eq!(
            contained_via_rewriting(&q_left, &q_right_swapped, &tgds(), RewriteBudget::small()),
            Some(false)
        );
    }

    #[test]
    fn arity_mismatch_is_not_contained() {
        let q_left =
            ConjunctiveQuery::new(vec![intern("d")], vec![atom!("Dept", var "d")]).unwrap();
        let q_right = ConjunctiveQuery::boolean(vec![atom!("Dept", var "d")]).unwrap();
        assert_eq!(
            contained_via_rewriting(&q_left, &q_right, &tgds(), RewriteBudget::small()),
            Some(false)
        );
    }

    #[test]
    fn incomplete_rewriting_returns_none() {
        let recursive = vec![Tgd::new(
            vec![atom!("P", var "x", var "y"), atom!("S", var "x")],
            vec![atom!("S", var "y")],
        )
        .unwrap()];
        let q_left =
            ConjunctiveQuery::boolean(vec![atom!("S", cst "a"), atom!("P", cst "a", cst "b")])
                .unwrap();
        let q_right = ConjunctiveQuery::boolean(vec![atom!("S", cst "b")]).unwrap();
        assert_eq!(
            contained_via_rewriting(&q_left, &q_right, &recursive, RewriteBudget::new(8, 8, 50)),
            None
        );
    }
}
