//! The global term dictionary: [`Term`] ⟷ dense `u32` codes.
//!
//! The columnar [`crate::Relation`] stores every tuple as a row of `u32`
//! **codes** instead of boxed [`Term`]s.  This module owns the bijection:
//! a process-wide, append-only table mapping each distinct term ever stored
//! to a dense code, exactly like `sac_common::symbol` interns strings.
//!
//! Making the dictionary global (rather than per-relation or per-instance)
//! buys three properties the engine's vectorized hot path depends on:
//!
//! * **codes are comparable everywhere** — a semijoin between two relations,
//!   or between a relation and a query constant, is a `u32 == u32`, never a
//!   decode;
//! * **codes are stable across appends** — a code never changes meaning, so
//!   cached indexes, shard decompositions and delta watermarks survive
//!   growth untouched;
//! * **relations stay freely constructible** — shards and scratch relations
//!   ([`crate::Relation::partition_by`], tests) share the codes of their
//!   parent with zero re-encoding.
//!
//! The table is guarded by an `RwLock`; encoding an already-known term (the
//! steady-state path) and every decode take only the shared read lock.
//! Codes are never reclaimed — a `u32` code is valid for the lifetime of
//! the process, mirroring the symbol interner's contract.

use sac_common::{FxHashMap, Term};
use std::sync::{OnceLock, RwLock};

#[derive(Default)]
struct Dict {
    codes: FxHashMap<Term, u32>,
    terms: Vec<Term>,
}

fn global() -> &'static RwLock<Dict> {
    static GLOBAL: OnceLock<RwLock<Dict>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Dict::default()))
}

/// Encodes `term`, assigning the next dense code on first sight.
///
/// Encoding the same term twice returns the same code; codes already handed
/// out are never reassigned (append-only, like symbol interning).
pub fn encode(term: Term) -> u32 {
    {
        let guard = global().read().expect("term dictionary poisoned");
        if let Some(&code) = guard.codes.get(&term) {
            return code;
        }
    }
    let mut guard = global().write().expect("term dictionary poisoned");
    if let Some(&code) = guard.codes.get(&term) {
        return code;
    }
    let code = u32::try_from(guard.terms.len()).expect("term dictionary overflow");
    guard.terms.push(term);
    guard.codes.insert(term, code);
    code
}

/// The code of `term` if it was ever encoded, without assigning one.
///
/// A `None` answer is a strong fact: the term occurs in **no** columnar
/// relation of the process, so lookups for it can short-circuit to empty.
pub fn lookup(term: Term) -> Option<u32> {
    global()
        .read()
        .expect("term dictionary poisoned")
        .codes
        .get(&term)
        .copied()
}

/// Decodes one code back to its term.
///
/// # Panics
///
/// Panics if `code` was never handed out by [`encode`] (only possible for a
/// forged code).
pub fn decode(code: u32) -> Term {
    let guard = global().read().expect("term dictionary poisoned");
    *guard
        .terms
        .get(code as usize)
        .unwrap_or_else(|| panic!("unknown term code {code}"))
}

/// Decodes a whole code row under a single read lock (the veneer's
/// row-materialization path).
pub fn decode_row(codes: &[u32]) -> Vec<Term> {
    let guard = global().read().expect("term dictionary poisoned");
    codes
        .iter()
        .map(|&code| {
            *guard
                .terms
                .get(code as usize)
                .unwrap_or_else(|| panic!("unknown term code {code}"))
        })
        .collect()
}

/// A held read guard over the dictionary for bulk decoding: one lock
/// acquisition amortized over arbitrarily many [`Decoder::decode`] calls
/// (e.g. materializing a whole answer set).
///
/// Do **not** call [`encode`] while a `Decoder` is alive on the same
/// thread — encoding an unseen term takes the write lock and would
/// deadlock against the held read guard.
pub struct Decoder {
    guard: std::sync::RwLockReadGuard<'static, Dict>,
}

impl Decoder {
    /// Decodes one code back to its term (see [`decode`] for the panic
    /// contract).
    pub fn decode(&self, code: u32) -> Term {
        *self
            .guard
            .terms
            .get(code as usize)
            .unwrap_or_else(|| panic!("unknown term code {code}"))
    }
}

/// Takes the dictionary read lock once, for bulk decoding.
pub fn decoder() -> Decoder {
    Decoder {
        guard: global().read().expect("term dictionary poisoned"),
    }
}

/// The terms behind the code range `start..end`, in code order — the
/// export the `sac-wal` persistence layer uses to ship dictionary deltas
/// alongside encoded rows (codes are process-local; a WAL record or
/// snapshot must carry the `(code, term)` assignments it references).
///
/// `end` is clamped to the dictionary's current length, so callers can
/// pass a watermark pair without racing later encodes.
pub fn terms_range(start: u32, end: u32) -> Vec<Term> {
    let guard = global().read().expect("term dictionary poisoned");
    let end = (end as usize).min(guard.terms.len());
    let start = (start as usize).min(end);
    guard.terms[start..end].to_vec()
}

/// Number of distinct terms ever encoded, process-wide.
pub fn len() -> usize {
    global()
        .read()
        .expect("term dictionary poisoned")
        .terms
        .len()
}

/// Estimated heap footprint of the dictionary itself: the decode table plus
/// the encode map (entry ≈ key + value + bucket overhead).
pub fn heap_bytes() -> usize {
    let guard = global().read().expect("term dictionary poisoned");
    let term = std::mem::size_of::<Term>();
    guard.terms.capacity() * term
        + guard.codes.capacity() * (term + std::mem::size_of::<u32>() + std::mem::size_of::<u64>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent_and_decode_round_trips() {
        let t = Term::constant("dict_round_trip");
        let code = encode(t);
        assert_eq!(encode(t), code);
        assert_eq!(decode(code), t);
        assert_eq!(lookup(t), Some(code));
    }

    #[test]
    fn all_term_kinds_are_encodable() {
        for t in [
            Term::constant("dict_c"),
            Term::variable("dict_v"),
            Term::null(123_456_789),
        ] {
            assert_eq!(decode(encode(t)), t);
        }
    }

    #[test]
    fn lookup_without_encode_is_none() {
        assert_eq!(lookup(Term::constant("dict_never_encoded_xyzzy")), None);
    }

    #[test]
    fn decode_row_matches_per_code_decode() {
        let row: Vec<u32> = ["dr_a", "dr_b", "dr_a"]
            .iter()
            .map(|s| encode(Term::constant(s)))
            .collect();
        let decoded = decode_row(&row);
        assert_eq!(decoded, row.iter().map(|&c| decode(c)).collect::<Vec<_>>());
        assert_eq!(decoded[0], decoded[2]);
    }

    #[test]
    fn bulk_decoder_agrees_with_per_code_decode() {
        let codes: Vec<u32> = ["dec_a", "dec_b", "dec_c"]
            .iter()
            .map(|s| encode(Term::constant(s)))
            .collect();
        let decoder = decoder();
        for &code in &codes {
            assert_eq!(decoder.decode(code), decode(code));
        }
    }

    #[test]
    fn codes_are_stable_across_later_appends() {
        let a = encode(Term::constant("dict_stable_a"));
        for i in 0..100 {
            encode(Term::constant(&format!("dict_filler_{i}")));
        }
        assert_eq!(encode(Term::constant("dict_stable_a")), a);
    }

    #[test]
    fn dictionary_reports_size_and_bytes() {
        encode(Term::constant("dict_sizing"));
        assert!(len() > 0);
        assert!(heap_bytes() > 0);
    }

    #[test]
    fn terms_range_exports_in_code_order() {
        let a = encode(Term::constant("dict_range_a"));
        let b = encode(Term::constant("dict_range_b"));
        // Codes are dense but other tests encode concurrently; read back
        // exactly the two codes we were handed.
        let exported = terms_range(a, a + 1);
        assert_eq!(exported, vec![decode(a)]);
        // Other tests encode concurrently, so only lower-bound the size.
        let all = terms_range(0, u32::MAX);
        assert!(all.len() > b as usize);
        assert_eq!(all[a as usize], decode(a));
        assert_eq!(all[b as usize], decode(b));
        // Clamping: inverted and out-of-range bounds yield empty, not panic.
        assert!(terms_range(u32::MAX - 1, u32::MAX).is_empty());
    }
}
