//! A single relation: a deduplicated, insertion-ordered set of tuples with
//! per-position hash indexes.

use crate::stats::RelationStats;
use sac_common::{Symbol, Term};
use std::collections::{HashMap, HashSet};

/// The tuples of one predicate, with positional indexes.
///
/// Tuples are stored in insertion order (`tuples`) with a parallel hash set
/// (`seen`) for O(1) membership tests, plus one hash index per argument
/// position mapping a term to the row ids where it occurs at that position.
#[derive(Debug, Clone)]
pub struct Relation {
    predicate: Symbol,
    arity: usize,
    tuples: Vec<Vec<Term>>,
    seen: HashSet<Vec<Term>>,
    /// `indexes[pos][term]` = row ids whose `pos`-th component is `term`.
    indexes: Vec<HashMap<Term, Vec<usize>>>,
}

impl Relation {
    /// Creates an empty relation for `predicate` with the given arity.
    pub fn new(predicate: Symbol, arity: usize) -> Relation {
        Relation {
            predicate,
            arity,
            tuples: Vec::new(),
            seen: HashSet::new(),
            indexes: vec![HashMap::new(); arity],
        }
    }

    /// The predicate this relation stores tuples for.
    pub fn predicate(&self) -> Symbol {
        self.predicate
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if the tuple's length differs from the relation's arity — the
    /// higher-level [`crate::Instance`] API validates this and returns an
    /// error instead.
    pub fn insert(&mut self, tuple: Vec<Term>) -> bool {
        assert_eq!(
            tuple.len(),
            self.arity,
            "tuple arity mismatch for {}",
            self.predicate
        );
        if self.seen.contains(&tuple) {
            return false;
        }
        let row = self.tuples.len();
        for (pos, term) in tuple.iter().enumerate() {
            self.indexes[pos].entry(*term).or_default().push(row);
        }
        self.seen.insert(tuple.clone());
        self.tuples.push(tuple);
        true
    }

    /// O(1) membership test.
    pub fn contains(&self, tuple: &[Term]) -> bool {
        self.seen.contains(tuple)
    }

    /// Iterates over all tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[Term]> + '_ {
        self.tuples.iter().map(|t| t.as_slice())
    }

    /// Returns the tuple stored at `row`.
    pub fn row(&self, row: usize) -> Option<&[Term]> {
        self.tuples.get(row).map(|t| t.as_slice())
    }

    /// Iterates over the tuples appended at or after row `start`, in
    /// insertion order — the relation's **delta log** since a watermark.
    /// Relations are append-only (tuples are never removed or reordered),
    /// so `rows_from(w)` is exactly the growth since `len()` was `w`.
    /// A `start` beyond the current length yields nothing.
    pub fn rows_from(&self, start: usize) -> impl Iterator<Item = &[Term]> + '_ {
        self.tuples[start.min(self.tuples.len())..]
            .iter()
            .map(|t| t.as_slice())
    }

    /// Row ids of tuples whose `pos`-th component equals `term`.
    pub fn rows_with(&self, pos: usize, term: Term) -> &[usize] {
        self.indexes
            .get(pos)
            .and_then(|idx| idx.get(&term))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Iterates over the tuples matching a partial binding: every `(pos,
    /// term)` pair in `bound` must hold.  Uses the sparsest positional index
    /// available and verifies the remaining positions.
    pub fn select<'a>(
        &'a self,
        bound: &[(usize, Term)],
    ) -> Box<dyn Iterator<Item = &'a [Term]> + 'a> {
        if bound.is_empty() {
            return Box::new(self.iter());
        }
        // Pick the most selective bound position to drive the scan.
        let (drive_pos, drive_term) = bound
            .iter()
            .copied()
            .min_by_key(|(pos, term)| self.rows_with(*pos, *term).len())
            .expect("bound is non-empty");
        let rows = self.rows_with(drive_pos, drive_term);
        let bound: Vec<(usize, Term)> = bound.to_vec();
        Box::new(rows.iter().filter_map(move |&r| {
            let tuple = self.tuples[r].as_slice();
            let ok = bound.iter().all(|(pos, term)| tuple[*pos] == *term);
            ok.then_some(tuple)
        }))
    }

    /// Number of distinct terms occurring at position `pos`.
    pub fn distinct_at(&self, pos: usize) -> usize {
        self.indexes.get(pos).map(|idx| idx.len()).unwrap_or(0)
    }

    /// Builds a hash index over the projection of the relation onto
    /// `positions`: each key is the tuple of terms at those positions, mapped
    /// to the row ids sharing it.
    ///
    /// This is the building block for multi-column (join-key) indexes.  The
    /// single-column case is already maintained incrementally (`rows_with`);
    /// multi-column indexes are built on demand by this method and cached by
    /// the caller — `sac-engine` keeps them in an epoch-validated cache so a
    /// batch of queries builds each index at most once.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range for the relation's arity.
    pub fn project_index(&self, positions: &[usize]) -> HashMap<Vec<Term>, Vec<usize>> {
        assert!(
            positions.iter().all(|p| *p < self.arity),
            "projection position out of range for {}/{}",
            self.predicate,
            self.arity
        );
        let mut index: HashMap<Vec<Term>, Vec<usize>> = HashMap::new();
        for (row, tuple) in self.tuples.iter().enumerate() {
            let key: Vec<Term> = positions.iter().map(|p| tuple[*p]).collect();
            index.entry(key).or_default().push(row);
        }
        index
    }

    /// The shard a term belongs to when hash-partitioning into `k` shards.
    ///
    /// The assignment is a pure function of the term and `k` (a fixed-key
    /// hash), so every caller — the engine's shard cache, incremental
    /// maintenance, tests — routes a tuple to the same shard.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn shard_of(term: &Term, k: usize) -> usize {
        use std::hash::{Hash, Hasher};
        assert!(k > 0, "shard count must be positive");
        // DefaultHasher::new() uses fixed keys: deterministic within and
        // across processes, which keeps shard layouts reproducible.
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        term.hash(&mut hasher);
        (hasher.finish() % k as u64) as usize
    }

    /// Hash-partitions the relation into `k` shards on column `col`: shard
    /// `i` holds exactly the tuples whose `col`-th term hashes to `i` (see
    /// [`Relation::shard_of`]).  Each shard is a full [`Relation`] — same
    /// predicate and arity, its own incrementally maintained positional
    /// indexes and [`Relation::stats`] — so shards can be scanned, probed
    /// and summarized independently by parallel workers.
    ///
    /// Within each shard, tuples keep the parent relation's insertion order,
    /// so the decomposition is deterministic and append-only growth of the
    /// parent maps to append-only growth of the shards.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range for the relation's arity or `k` is
    /// zero.
    pub fn partition_by(&self, col: usize, k: usize) -> Vec<Relation> {
        assert!(
            col < self.arity,
            "partition column {col} out of range for {}/{}",
            self.predicate,
            self.arity
        );
        assert!(k > 0, "shard count must be positive");
        let mut shards: Vec<Relation> = (0..k)
            .map(|_| Relation::new(self.predicate, self.arity))
            .collect();
        for tuple in &self.tuples {
            shards[Self::shard_of(&tuple[col], k)].insert(tuple.clone());
        }
        shards
    }

    /// Per-relation statistics: cardinality and distinct counts per column.
    pub fn stats(&self) -> RelationStats {
        RelationStats {
            predicate: self.predicate,
            arity: self.arity,
            tuples: self.len(),
            distinct_per_column: (0..self.arity).map(|p| self.distinct_at(p)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::intern;

    fn rel() -> Relation {
        let mut r = Relation::new(intern("R"), 2);
        r.insert(vec![Term::constant("a"), Term::constant("b")]);
        r.insert(vec![Term::constant("a"), Term::constant("c")]);
        r.insert(vec![Term::constant("d"), Term::constant("b")]);
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = rel();
        assert_eq!(r.len(), 3);
        assert!(!r.insert(vec![Term::constant("a"), Term::constant("b")]));
        assert_eq!(r.len(), 3);
        assert!(r.insert(vec![Term::constant("x"), Term::constant("y")]));
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn contains_after_insert() {
        let r = rel();
        assert!(r.contains(&[Term::constant("a"), Term::constant("c")]));
        assert!(!r.contains(&[Term::constant("c"), Term::constant("a")]));
    }

    #[test]
    fn positional_index_finds_rows() {
        let r = rel();
        assert_eq!(r.rows_with(0, Term::constant("a")).len(), 2);
        assert_eq!(r.rows_with(1, Term::constant("b")).len(), 2);
        assert_eq!(r.rows_with(1, Term::constant("zzz")).len(), 0);
    }

    #[test]
    fn select_honours_all_bindings() {
        let r = rel();
        let hits: Vec<_> = r
            .select(&[(0, Term::constant("a")), (1, Term::constant("b"))])
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], &[Term::constant("a"), Term::constant("b")][..]);
        let empty: Vec<_> = r
            .select(&[(0, Term::constant("d")), (1, Term::constant("c"))])
            .collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn select_with_no_bindings_scans_everything() {
        let r = rel();
        assert_eq!(r.select(&[]).count(), 3);
    }

    #[test]
    fn distinct_counts() {
        let r = rel();
        assert_eq!(r.distinct_at(0), 2);
        assert_eq!(r.distinct_at(1), 2);
    }

    #[test]
    fn project_index_groups_rows_by_key() {
        let r = rel();
        let by_first = r.project_index(&[0]);
        assert_eq!(by_first.len(), 2);
        assert_eq!(by_first[&vec![Term::constant("a")]].len(), 2);
        let by_both = r.project_index(&[0, 1]);
        assert_eq!(by_both.len(), 3);
        // Reversed position order produces reversed keys.
        let reversed = r.project_index(&[1, 0]);
        assert!(reversed.contains_key(&vec![Term::constant("b"), Term::constant("a")]));
    }

    #[test]
    fn project_index_on_no_positions_groups_everything() {
        let r = rel();
        let all = r.project_index(&[]);
        assert_eq!(all.len(), 1);
        assert_eq!(all[&Vec::new()].len(), 3);
    }

    #[test]
    #[should_panic]
    fn project_index_rejects_out_of_range_positions() {
        rel().project_index(&[2]);
    }

    #[test]
    fn stats_report_distinct_counts_per_column() {
        let st = rel().stats();
        assert_eq!(st.tuples, 3);
        assert_eq!(st.arity, 2);
        assert_eq!(st.distinct_per_column, vec![2, 2]);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(intern("R"), 2);
        r.insert(vec![Term::constant("a")]);
    }

    #[test]
    fn partition_by_routes_every_tuple_to_its_hash_shard() {
        let r = rel();
        for k in 1..=4 {
            let shards = r.partition_by(0, k);
            assert_eq!(shards.len(), k);
            let mut total = 0;
            for (i, shard) in shards.iter().enumerate() {
                assert_eq!(shard.predicate(), r.predicate());
                assert_eq!(shard.arity(), r.arity());
                for tuple in shard.iter() {
                    assert_eq!(Relation::shard_of(&tuple[0], k), i);
                    assert!(r.contains(tuple));
                }
                total += shard.len();
            }
            assert_eq!(total, r.len(), "shards partition the relation");
        }
    }

    #[test]
    fn partition_by_single_shard_is_the_whole_relation() {
        let r = rel();
        let shards = r.partition_by(1, 1);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].len(), r.len());
        let original: Vec<_> = r.iter().collect();
        let sharded: Vec<_> = shards[0].iter().collect();
        assert_eq!(original, sharded, "insertion order is preserved");
    }

    #[test]
    fn shard_stats_sum_to_relation_cardinality() {
        let r = rel();
        let shards = r.partition_by(0, 3);
        let tuples: usize = shards.iter().map(|s| s.stats().tuples).sum();
        assert_eq!(tuples, r.stats().tuples);
        // On the partition column, distinct terms split exactly across
        // shards (each term lives in one shard).
        let distinct: usize = shards.iter().map(|s| s.distinct_at(0)).sum();
        assert_eq!(distinct, r.distinct_at(0));
    }

    #[test]
    fn shard_indexes_serve_lookups() {
        let r = rel();
        let k = 2;
        let shards = r.partition_by(0, k);
        let a = Term::constant("a");
        let home = Relation::shard_of(&a, k);
        assert_eq!(shards[home].rows_with(0, a).len(), 2);
        for (i, shard) in shards.iter().enumerate() {
            if i != home {
                assert!(shard.rows_with(0, a).is_empty());
            }
        }
    }

    #[test]
    #[should_panic]
    fn partition_by_rejects_out_of_range_columns() {
        rel().partition_by(2, 2);
    }

    #[test]
    #[should_panic]
    fn partition_by_rejects_zero_shards() {
        rel().partition_by(0, 0);
    }
}
