//! A single relation stored **columnar**: dictionary-coded flat columns with
//! a packed-row dedup table and per-column hash-bucket sidecar indexes.
//!
//! Tuples are rows of `u32` codes from the global [`crate::dict`] term
//! dictionary, laid out as `arity` parallel `Vec<u32>` buffers in insertion
//! order.  Three sidecar structures ride along, all keyed by codes:
//!
//! * `seen` — packed-row hash → row ids, the O(1) dedup test (candidates
//!   sharing a 64-bit [`sac_common::FxHasher`] hash are verified against the
//!   columns, so dedup is exact);
//! * `sidecars[pos]` — code → row ids whose `pos`-th column holds it, the
//!   incrementally maintained single-column index (and, as a byproduct, an
//!   exact per-column distinct count for [`Relation::stats`]);
//! * nothing else: multi-column join indexes are built on demand by
//!   [`Relation::project_index`] and cached by `sac-engine`.
//!
//! The [`Term`]-level API (`insert` / `contains` / `iter` / `row` /
//! `select`) is a thin veneer — encode on append, decode on read — so the
//! storage swap is invisible to the chase, the naive evaluator and the
//! test oracles, while the engine's hot path reads the raw columns
//! ([`Relation::column`], [`Relation::rows_with_code`],
//! [`Relation::project_index`]) and compares codes without ever touching a
//! `Term`.

use crate::dict;
use crate::stats::RelationStats;
use sac_common::{FxHashMap, FxHasher, Symbol, Term};
use std::hash::Hasher;

/// No-match answer shared by every lookup miss.
const NO_ROWS: &[u32] = &[];

/// Deterministic content hash of one packed code row (length-prefixed so
/// rows of different arity never alias; only ever compared within the
/// process).
#[inline]
fn hash_codes(codes: &[u32]) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write_usize(codes.len());
    for &code in codes {
        hasher.write_u32(code);
    }
    hasher.finish()
}

/// The tuples of one predicate in columnar, dictionary-coded form.
#[derive(Debug, Clone)]
pub struct Relation {
    predicate: Symbol,
    arity: usize,
    /// Row count (kept separately so zero-arity relations — no columns —
    /// still count their single possible tuple).
    rows: u32,
    /// `columns[pos][row]` = the code of the `pos`-th component of `row`.
    columns: Vec<Vec<u32>>,
    /// Packed-row hash → row ids with that hash (dedup; exact via verify).
    seen: FxHashMap<u64, Vec<u32>>,
    /// `sidecars[pos][code]` = row ids whose `pos`-th component is `code`.
    sidecars: Vec<FxHashMap<u32, Vec<u32>>>,
}

impl Relation {
    /// Creates an empty relation for `predicate` with the given arity.
    pub fn new(predicate: Symbol, arity: usize) -> Relation {
        Relation {
            predicate,
            arity,
            rows: 0,
            columns: vec![Vec::new(); arity],
            seen: FxHashMap::default(),
            sidecars: vec![FxHashMap::default(); arity],
        }
    }

    /// The predicate this relation stores tuples for.
    pub fn predicate(&self) -> Symbol {
        self.predicate
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.rows as usize
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Inserts a tuple, encoding each term through the global dictionary;
    /// returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if the tuple's length differs from the relation's arity — the
    /// higher-level [`crate::Instance`] API validates this and returns an
    /// error instead.
    pub fn insert(&mut self, tuple: Vec<Term>) -> bool {
        assert_eq!(
            tuple.len(),
            self.arity,
            "tuple arity mismatch for {}",
            self.predicate
        );
        let codes: Vec<u32> = tuple.into_iter().map(dict::encode).collect();
        self.insert_codes(&codes)
    }

    /// Inserts an already-encoded row; returns `true` if it was new.  The
    /// fast path for code-preserving copies (shard routing, bulk loads).
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the relation's arity.
    pub fn insert_codes(&mut self, codes: &[u32]) -> bool {
        assert_eq!(
            codes.len(),
            self.arity,
            "code row arity mismatch for {}",
            self.predicate
        );
        let hash = hash_codes(codes);
        if let Some(candidates) = self.seen.get(&hash) {
            if candidates.iter().any(|&row| self.row_eq(row, codes)) {
                return false;
            }
        }
        let row = self.rows;
        for (pos, &code) in codes.iter().enumerate() {
            self.columns[pos].push(code);
            self.sidecars[pos].entry(code).or_default().push(row);
        }
        self.seen.entry(hash).or_default().push(row);
        self.rows += 1;
        true
    }

    /// Whether the stored row `row` equals the code row `codes`.
    #[inline]
    fn row_eq(&self, row: u32, codes: &[u32]) -> bool {
        self.columns
            .iter()
            .zip(codes)
            .all(|(col, &code)| col[row as usize] == code)
    }

    /// O(1) membership test (decode-free: a term the dictionary has never
    /// seen cannot be stored anywhere).
    pub fn contains(&self, tuple: &[Term]) -> bool {
        if tuple.len() != self.arity {
            return false;
        }
        let mut codes = Vec::with_capacity(self.arity);
        for term in tuple {
            match dict::lookup(*term) {
                Some(code) => codes.push(code),
                None => return false,
            }
        }
        self.contains_codes(&codes)
    }

    /// O(1) membership test on an already-encoded row.
    pub fn contains_codes(&self, codes: &[u32]) -> bool {
        if codes.len() != self.arity {
            return false;
        }
        self.seen
            .get(&hash_codes(codes))
            .is_some_and(|candidates| candidates.iter().any(|&row| self.row_eq(row, codes)))
    }

    /// The row id storing exactly `tuple`, if present.  Relations are
    /// append-only and deduplicated, so a stored tuple has exactly one row
    /// id and it is stable for the relation's lifetime — which is what lets
    /// provenance records reference base facts by `(predicate, row)`.
    pub fn find_row(&self, tuple: &[Term]) -> Option<usize> {
        if tuple.len() != self.arity {
            return None;
        }
        let mut codes = Vec::with_capacity(self.arity);
        for term in tuple {
            codes.push(dict::lookup(*term)?);
        }
        self.seen.get(&hash_codes(&codes)).and_then(|candidates| {
            candidates
                .iter()
                .find(|&&row| self.row_eq(row, &codes))
                .map(|&row| row as usize)
        })
    }

    /// The raw code column at `pos` — the engine's vectorized sweeps read
    /// these slices directly.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range for the relation's arity.
    pub fn column(&self, pos: usize) -> &[u32] {
        &self.columns[pos]
    }

    /// The packed code row at `row`, gathered across the columns.
    pub fn codes_row(&self, row: usize) -> Option<Vec<u32>> {
        (row < self.len()).then(|| self.columns.iter().map(|col| col[row]).collect())
    }

    /// Iterates over all tuples in insertion order, decoding each row.
    pub fn iter(&self) -> impl Iterator<Item = Vec<Term>> + '_ {
        (0..self.len()).map(|row| self.decode_row(row))
    }

    /// Returns the tuple stored at `row`, decoded.
    pub fn row(&self, row: usize) -> Option<Vec<Term>> {
        (row < self.len()).then(|| self.decode_row(row))
    }

    fn decode_row(&self, row: usize) -> Vec<Term> {
        let codes: Vec<u32> = self.columns.iter().map(|col| col[row]).collect();
        dict::decode_row(&codes)
    }

    /// Iterates over the tuples appended at or after row `start`, in
    /// insertion order — the relation's **delta log** since a watermark.
    /// Relations are append-only (tuples are never removed or reordered),
    /// so `rows_from(w)` is exactly the growth since `len()` was `w`.
    /// A `start` beyond the current length yields nothing.
    pub fn rows_from(&self, start: usize) -> impl Iterator<Item = Vec<Term>> + '_ {
        (start.min(self.len())..self.len()).map(|row| self.decode_row(row))
    }

    /// Row ids of tuples whose `pos`-th component equals `term`.
    pub fn rows_with(&self, pos: usize, term: Term) -> &[u32] {
        match dict::lookup(term) {
            Some(code) => self.rows_with_code(pos, code),
            None => NO_ROWS,
        }
    }

    /// Row ids of tuples whose `pos`-th component holds `code` — the
    /// decode-free twin of [`Relation::rows_with`].
    pub fn rows_with_code(&self, pos: usize, code: u32) -> &[u32] {
        self.sidecars
            .get(pos)
            .and_then(|sidecar| sidecar.get(&code))
            .map(|rows| rows.as_slice())
            .unwrap_or(NO_ROWS)
    }

    /// Row ids matching a partial binding of codes: every `(pos, code)` pair
    /// in `bound` must hold.  Drives the scan off the sparsest bound
    /// sidecar and verifies the remaining positions against the columns;
    /// with no bindings, every row matches.  Row ids come back ascending.
    pub fn select_rows(&self, bound: &[(usize, u32)]) -> Vec<u32> {
        if bound.is_empty() {
            return (0..self.rows).collect();
        }
        let (drive_pos, drive_code) = bound
            .iter()
            .copied()
            .min_by_key(|(pos, code)| self.rows_with_code(*pos, *code).len())
            .expect("bound is non-empty");
        self.rows_with_code(drive_pos, drive_code)
            .iter()
            .copied()
            .filter(|&row| {
                bound
                    .iter()
                    .all(|(pos, code)| self.columns[*pos][row as usize] == *code)
            })
            .collect()
    }

    /// Iterates over the tuples matching a partial binding: every `(pos,
    /// term)` pair in `bound` must hold.  A bound term unknown to the
    /// dictionary matches nothing.
    pub fn select<'a>(
        &'a self,
        bound: &[(usize, Term)],
    ) -> Box<dyn Iterator<Item = Vec<Term>> + 'a> {
        let mut bound_codes = Vec::with_capacity(bound.len());
        for (pos, term) in bound {
            match dict::lookup(*term) {
                Some(code) => bound_codes.push((*pos, code)),
                None => return Box::new(std::iter::empty()),
            }
        }
        let rows = self.select_rows(&bound_codes);
        Box::new(rows.into_iter().map(|row| self.decode_row(row as usize)))
    }

    /// Number of distinct terms occurring at position `pos` — exact, read
    /// straight off the sidecar's key count.
    pub fn distinct_at(&self, pos: usize) -> usize {
        self.sidecars
            .get(pos)
            .map(|sidecar| sidecar.len())
            .unwrap_or(0)
    }

    /// Builds a hash index over the projection of the relation onto
    /// `positions`: each key is the **code** tuple at those positions,
    /// mapped to the row ids sharing it.
    ///
    /// This is the building block for multi-column (join-key) indexes.  The
    /// single-column case is already maintained incrementally
    /// ([`Relation::rows_with_code`]); multi-column indexes are built on
    /// demand by this method and cached by the caller — `sac-engine` keeps
    /// them in an epoch-validated cache so a batch of queries builds each
    /// index at most once.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range for the relation's arity.
    pub fn project_index(&self, positions: &[usize]) -> FxHashMap<Vec<u32>, Vec<u32>> {
        assert!(
            positions.iter().all(|p| *p < self.arity),
            "projection position out of range for {}/{}",
            self.predicate,
            self.arity
        );
        let mut index: FxHashMap<Vec<u32>, Vec<u32>> = FxHashMap::default();
        let cols: Vec<&[u32]> = positions
            .iter()
            .map(|p| self.columns[*p].as_slice())
            .collect();
        for row in 0..self.rows {
            let key: Vec<u32> = cols.iter().map(|col| col[row as usize]).collect();
            index.entry(key).or_default().push(row);
        }
        index
    }

    /// The shard a term belongs to when hash-partitioning into `k` shards.
    ///
    /// The assignment is a pure function of the term and `k` (a fixed-key
    /// hash), so every caller — the engine's shard cache, incremental
    /// maintenance, tests — routes a tuple to the same shard.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn shard_of(term: &Term, k: usize) -> usize {
        use std::hash::{Hash, Hasher};
        assert!(k > 0, "shard count must be positive");
        // DefaultHasher::new() uses fixed keys: deterministic within and
        // across processes, which keeps shard layouts reproducible.
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        term.hash(&mut hasher);
        (hasher.finish() % k as u64) as usize
    }

    /// [`Relation::shard_of`] for an already-encoded component: decodes the
    /// code once and hashes the term, so code- and term-level routing agree.
    pub fn shard_of_code(code: u32, k: usize) -> usize {
        Relation::shard_of(&dict::decode(code), k)
    }

    /// Hash-partitions the relation into `k` shards on column `col`: shard
    /// `i` holds exactly the tuples whose `col`-th term hashes to `i` (see
    /// [`Relation::shard_of`]).  Each shard is a full [`Relation`] — same
    /// predicate, arity and dictionary codes, its own incrementally
    /// maintained sidecar indexes and [`Relation::stats`] — so shards can
    /// be scanned, probed and summarized independently by parallel workers.
    ///
    /// Within each shard, tuples keep the parent relation's insertion order,
    /// so the decomposition is deterministic and append-only growth of the
    /// parent maps to append-only growth of the shards.  Rows are routed by
    /// code (one decode per **distinct** partition-column value, not per
    /// row).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range for the relation's arity or `k` is
    /// zero.
    pub fn partition_by(&self, col: usize, k: usize) -> Vec<Relation> {
        assert!(
            col < self.arity,
            "partition column {col} out of range for {}/{}",
            self.predicate,
            self.arity
        );
        assert!(k > 0, "shard count must be positive");
        let mut shards: Vec<Relation> = (0..k)
            .map(|_| Relation::new(self.predicate, self.arity))
            .collect();
        // One decode + hash per distinct code in the partition column.
        let routes: FxHashMap<u32, usize> = self.sidecars[col]
            .keys()
            .map(|&code| (code, Relation::shard_of_code(code, k)))
            .collect();
        let mut scratch = Vec::with_capacity(self.arity);
        for row in 0..self.len() {
            scratch.clear();
            scratch.extend(self.columns.iter().map(|c| c[row]));
            let shard = routes[&self.columns[col][row]];
            shards[shard].insert_codes(&scratch);
        }
        shards
    }

    /// Per-relation statistics: cardinality and distinct counts per column.
    pub fn stats(&self) -> RelationStats {
        RelationStats {
            predicate: self.predicate,
            arity: self.arity,
            tuples: self.len(),
            distinct_per_column: (0..self.arity).map(|p| self.distinct_at(p)).collect(),
        }
    }

    /// Estimated heap footprint: column buffers, the dedup table and the
    /// sidecar indexes (bucket overhead approximated; the global
    /// dictionary's share is reported separately by
    /// [`crate::dict::heap_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        let u32s = std::mem::size_of::<u32>();
        let columns: usize = self.columns.iter().map(|c| c.capacity() * u32s).sum();
        let map_entry = std::mem::size_of::<u64>() + std::mem::size_of::<Vec<u32>>();
        let seen: usize = self.seen.capacity() * map_entry
            + self
                .seen
                .values()
                .map(|v| v.capacity() * u32s)
                .sum::<usize>();
        let sidecars: usize = self
            .sidecars
            .iter()
            .map(|sidecar| {
                sidecar.capacity() * map_entry
                    + sidecar.values().map(|v| v.capacity() * u32s).sum::<usize>()
            })
            .sum();
        columns + seen + sidecars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::intern;

    fn rel() -> Relation {
        let mut r = Relation::new(intern("R"), 2);
        r.insert(vec![Term::constant("a"), Term::constant("b")]);
        r.insert(vec![Term::constant("a"), Term::constant("c")]);
        r.insert(vec![Term::constant("d"), Term::constant("b")]);
        r
    }

    fn code(name: &str) -> u32 {
        dict::encode(Term::constant(name))
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = rel();
        assert_eq!(r.len(), 3);
        assert!(!r.insert(vec![Term::constant("a"), Term::constant("b")]));
        assert_eq!(r.len(), 3);
        assert!(r.insert(vec![Term::constant("x"), Term::constant("y")]));
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn contains_after_insert() {
        let r = rel();
        assert!(r.contains(&[Term::constant("a"), Term::constant("c")]));
        assert!(!r.contains(&[Term::constant("c"), Term::constant("a")]));
        assert!(!r.contains(&[
            Term::constant("never_encoded_term_xyz"),
            Term::constant("a")
        ]));
        assert!(
            !r.contains(&[Term::constant("a")]),
            "arity mismatch is absent"
        );
    }

    #[test]
    fn positional_index_finds_rows() {
        let r = rel();
        assert_eq!(r.rows_with(0, Term::constant("a")).len(), 2);
        assert_eq!(r.rows_with(1, Term::constant("b")).len(), 2);
        assert_eq!(r.rows_with(1, Term::constant("zzz")).len(), 0);
        assert_eq!(r.rows_with_code(0, code("a")), &[0, 1]);
    }

    #[test]
    fn columns_hold_the_codes_in_insertion_order() {
        let r = rel();
        assert_eq!(r.column(0), &[code("a"), code("a"), code("d")]);
        assert_eq!(r.column(1), &[code("b"), code("c"), code("b")]);
        assert_eq!(r.codes_row(1), Some(vec![code("a"), code("c")]));
        assert_eq!(r.codes_row(3), None);
    }

    #[test]
    fn insert_codes_agrees_with_term_insert() {
        let mut r = Relation::new(intern("R"), 2);
        assert!(r.insert_codes(&[code("a"), code("b")]));
        assert!(!r.insert(vec![Term::constant("a"), Term::constant("b")]));
        assert!(r.contains_codes(&[code("a"), code("b")]));
        assert!(!r.contains_codes(&[code("b"), code("a")]));
        assert!(!r.contains_codes(&[code("a")]));
    }

    #[test]
    fn select_honours_all_bindings() {
        let r = rel();
        let hits: Vec<_> = r
            .select(&[(0, Term::constant("a")), (1, Term::constant("b"))])
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], vec![Term::constant("a"), Term::constant("b")]);
        let empty: Vec<_> = r
            .select(&[(0, Term::constant("d")), (1, Term::constant("c"))])
            .collect();
        assert!(empty.is_empty());
        let unknown: Vec<_> = r
            .select(&[(0, Term::constant("select_unknown_term"))])
            .collect();
        assert!(unknown.is_empty());
    }

    #[test]
    fn select_with_no_bindings_scans_everything() {
        let r = rel();
        assert_eq!(r.select(&[]).count(), 3);
        assert_eq!(r.select_rows(&[]), vec![0, 1, 2]);
    }

    #[test]
    fn distinct_counts() {
        let r = rel();
        assert_eq!(r.distinct_at(0), 2);
        assert_eq!(r.distinct_at(1), 2);
    }

    #[test]
    fn project_index_groups_rows_by_key() {
        let r = rel();
        let by_first = r.project_index(&[0]);
        assert_eq!(by_first.len(), 2);
        assert_eq!(by_first[&vec![code("a")]].len(), 2);
        let by_both = r.project_index(&[0, 1]);
        assert_eq!(by_both.len(), 3);
        // Reversed position order produces reversed keys.
        let reversed = r.project_index(&[1, 0]);
        assert!(reversed.contains_key(&vec![code("b"), code("a")]));
    }

    #[test]
    fn project_index_on_no_positions_groups_everything() {
        let r = rel();
        let all = r.project_index(&[]);
        assert_eq!(all.len(), 1);
        assert_eq!(all[&Vec::new()].len(), 3);
    }

    #[test]
    #[should_panic]
    fn project_index_rejects_out_of_range_positions() {
        rel().project_index(&[2]);
    }

    #[test]
    fn stats_report_distinct_counts_per_column() {
        let st = rel().stats();
        assert_eq!(st.tuples, 3);
        assert_eq!(st.arity, 2);
        assert_eq!(st.distinct_per_column, vec![2, 2]);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(intern("R"), 2);
        r.insert(vec![Term::constant("a")]);
    }

    #[test]
    fn zero_arity_relations_hold_at_most_one_tuple() {
        let mut r = Relation::new(intern("P"), 0);
        assert!(r.is_empty());
        assert!(r.insert(Vec::new()));
        assert!(!r.insert(Vec::new()));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![Vec::<Term>::new()]);
    }

    #[test]
    fn rows_decode_back_to_their_terms() {
        let r = rel();
        assert_eq!(
            r.row(2),
            Some(vec![Term::constant("d"), Term::constant("b")])
        );
        assert_eq!(r.row(3), None);
        let all: Vec<_> = r.iter().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], vec![Term::constant("a"), Term::constant("b")]);
    }

    #[test]
    fn partition_by_routes_every_tuple_to_its_hash_shard() {
        let r = rel();
        for k in 1..=4 {
            let shards = r.partition_by(0, k);
            assert_eq!(shards.len(), k);
            let mut total = 0;
            for (i, shard) in shards.iter().enumerate() {
                assert_eq!(shard.predicate(), r.predicate());
                assert_eq!(shard.arity(), r.arity());
                for tuple in shard.iter() {
                    assert_eq!(Relation::shard_of(&tuple[0], k), i);
                    assert!(r.contains(&tuple));
                }
                total += shard.len();
            }
            assert_eq!(total, r.len(), "shards partition the relation");
        }
    }

    #[test]
    fn partition_by_single_shard_is_the_whole_relation() {
        let r = rel();
        let shards = r.partition_by(1, 1);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].len(), r.len());
        let original: Vec<_> = r.iter().collect();
        let sharded: Vec<_> = shards[0].iter().collect();
        assert_eq!(original, sharded, "insertion order is preserved");
    }

    #[test]
    fn shard_stats_sum_to_relation_cardinality() {
        let r = rel();
        let shards = r.partition_by(0, 3);
        let tuples: usize = shards.iter().map(|s| s.stats().tuples).sum();
        assert_eq!(tuples, r.stats().tuples);
        // On the partition column, distinct terms split exactly across
        // shards (each term lives in one shard).
        let distinct: usize = shards.iter().map(|s| s.distinct_at(0)).sum();
        assert_eq!(distinct, r.distinct_at(0));
    }

    #[test]
    fn shard_indexes_serve_lookups() {
        let r = rel();
        let k = 2;
        let shards = r.partition_by(0, k);
        let a = Term::constant("a");
        let home = Relation::shard_of(&a, k);
        assert_eq!(shards[home].rows_with(0, a).len(), 2);
        for (i, shard) in shards.iter().enumerate() {
            if i != home {
                assert!(shard.rows_with(0, a).is_empty());
            }
        }
        assert_eq!(Relation::shard_of_code(code("a"), k), home);
    }

    #[test]
    #[should_panic]
    fn partition_by_rejects_out_of_range_columns() {
        rel().partition_by(2, 2);
    }

    #[test]
    #[should_panic]
    fn partition_by_rejects_zero_shards() {
        rel().partition_by(0, 0);
    }

    #[test]
    fn find_row_returns_stable_insertion_order_ids() {
        let mut r = Relation::new(intern("FR"), 2);
        let t0 = vec![Term::constant("a"), Term::constant("b")];
        let t1 = vec![Term::constant("b"), Term::constant("c")];
        assert!(r.insert(t0.clone()));
        assert!(r.insert(t1.clone()));
        assert_eq!(r.find_row(&t0), Some(0));
        assert_eq!(r.find_row(&t1), Some(1));
        // Appends never move existing rows.
        r.insert(vec![Term::constant("c"), Term::constant("d")]);
        assert_eq!(r.find_row(&t0), Some(0));
        // Absent tuples, wrong arities and never-encoded terms miss cleanly.
        assert_eq!(
            r.find_row(&[Term::constant("a"), Term::constant("z")]),
            None
        );
        assert_eq!(r.find_row(&[Term::constant("a")]), None);
        assert_eq!(
            r.find_row(&[
                Term::constant("never-encoded-anywhere"),
                Term::constant("b"),
            ]),
            None
        );
    }

    #[test]
    fn heap_bytes_grows_with_the_relation() {
        let mut r = Relation::new(intern("HB"), 2);
        let empty = r.heap_bytes();
        for i in 0..100 {
            r.insert(vec![
                Term::constant(&format!("hb{i}")),
                Term::constant(&format!("hb{}", i / 2)),
            ]);
        }
        assert!(r.heap_bytes() > empty);
        // Flat columns: at least 2 columns x 100 rows x 4 bytes of data.
        assert!(r.heap_bytes() >= 800);
    }
}
