//! A single relation: a deduplicated, insertion-ordered set of tuples with
//! per-position hash indexes.

use sac_common::{Symbol, Term};
use std::collections::{HashMap, HashSet};

/// The tuples of one predicate, with positional indexes.
///
/// Tuples are stored in insertion order (`tuples`) with a parallel hash set
/// (`seen`) for O(1) membership tests, plus one hash index per argument
/// position mapping a term to the row ids where it occurs at that position.
#[derive(Debug, Clone)]
pub struct Relation {
    predicate: Symbol,
    arity: usize,
    tuples: Vec<Vec<Term>>,
    seen: HashSet<Vec<Term>>,
    /// `indexes[pos][term]` = row ids whose `pos`-th component is `term`.
    indexes: Vec<HashMap<Term, Vec<usize>>>,
}

impl Relation {
    /// Creates an empty relation for `predicate` with the given arity.
    pub fn new(predicate: Symbol, arity: usize) -> Relation {
        Relation {
            predicate,
            arity,
            tuples: Vec::new(),
            seen: HashSet::new(),
            indexes: vec![HashMap::new(); arity],
        }
    }

    /// The predicate this relation stores tuples for.
    pub fn predicate(&self) -> Symbol {
        self.predicate
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if the tuple's length differs from the relation's arity — the
    /// higher-level [`crate::Instance`] API validates this and returns an
    /// error instead.
    pub fn insert(&mut self, tuple: Vec<Term>) -> bool {
        assert_eq!(
            tuple.len(),
            self.arity,
            "tuple arity mismatch for {}",
            self.predicate
        );
        if self.seen.contains(&tuple) {
            return false;
        }
        let row = self.tuples.len();
        for (pos, term) in tuple.iter().enumerate() {
            self.indexes[pos].entry(*term).or_default().push(row);
        }
        self.seen.insert(tuple.clone());
        self.tuples.push(tuple);
        true
    }

    /// O(1) membership test.
    pub fn contains(&self, tuple: &[Term]) -> bool {
        self.seen.contains(tuple)
    }

    /// Iterates over all tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[Term]> + '_ {
        self.tuples.iter().map(|t| t.as_slice())
    }

    /// Returns the tuple stored at `row`.
    pub fn row(&self, row: usize) -> Option<&[Term]> {
        self.tuples.get(row).map(|t| t.as_slice())
    }

    /// Row ids of tuples whose `pos`-th component equals `term`.
    pub fn rows_with(&self, pos: usize, term: Term) -> &[usize] {
        self.indexes
            .get(pos)
            .and_then(|idx| idx.get(&term))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Iterates over the tuples matching a partial binding: every `(pos,
    /// term)` pair in `bound` must hold.  Uses the sparsest positional index
    /// available and verifies the remaining positions.
    pub fn select<'a>(
        &'a self,
        bound: &[(usize, Term)],
    ) -> Box<dyn Iterator<Item = &'a [Term]> + 'a> {
        if bound.is_empty() {
            return Box::new(self.iter());
        }
        // Pick the most selective bound position to drive the scan.
        let (drive_pos, drive_term) = bound
            .iter()
            .copied()
            .min_by_key(|(pos, term)| self.rows_with(*pos, *term).len())
            .expect("bound is non-empty");
        let rows = self.rows_with(drive_pos, drive_term);
        let bound: Vec<(usize, Term)> = bound.to_vec();
        Box::new(rows.iter().filter_map(move |&r| {
            let tuple = self.tuples[r].as_slice();
            let ok = bound.iter().all(|(pos, term)| tuple[*pos] == *term);
            ok.then_some(tuple)
        }))
    }

    /// Number of distinct terms occurring at position `pos`.
    pub fn distinct_at(&self, pos: usize) -> usize {
        self.indexes.get(pos).map(|idx| idx.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::intern;

    fn rel() -> Relation {
        let mut r = Relation::new(intern("R"), 2);
        r.insert(vec![Term::constant("a"), Term::constant("b")]);
        r.insert(vec![Term::constant("a"), Term::constant("c")]);
        r.insert(vec![Term::constant("d"), Term::constant("b")]);
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = rel();
        assert_eq!(r.len(), 3);
        assert!(!r.insert(vec![Term::constant("a"), Term::constant("b")]));
        assert_eq!(r.len(), 3);
        assert!(r.insert(vec![Term::constant("x"), Term::constant("y")]));
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn contains_after_insert() {
        let r = rel();
        assert!(r.contains(&[Term::constant("a"), Term::constant("c")]));
        assert!(!r.contains(&[Term::constant("c"), Term::constant("a")]));
    }

    #[test]
    fn positional_index_finds_rows() {
        let r = rel();
        assert_eq!(r.rows_with(0, Term::constant("a")).len(), 2);
        assert_eq!(r.rows_with(1, Term::constant("b")).len(), 2);
        assert_eq!(r.rows_with(1, Term::constant("zzz")).len(), 0);
    }

    #[test]
    fn select_honours_all_bindings() {
        let r = rel();
        let hits: Vec<_> = r
            .select(&[(0, Term::constant("a")), (1, Term::constant("b"))])
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], &[Term::constant("a"), Term::constant("b")][..]);
        let empty: Vec<_> = r
            .select(&[(0, Term::constant("d")), (1, Term::constant("c"))])
            .collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn select_with_no_bindings_scans_everything() {
        let r = rel();
        assert_eq!(r.select(&[]).count(), 3);
    }

    #[test]
    fn distinct_counts() {
        let r = rel();
        assert_eq!(r.distinct_at(0), 2);
        assert_eq!(r.distinct_at(1), 2);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(intern("R"), 2);
        r.insert(vec![Term::constant("a")]);
    }
}
