//! Instances: finite collections of ground-ish atoms grouped by predicate.

use crate::relation::Relation;
use crate::stats::InstanceStats;
use sac_common::{Atom, Error, Result, Schema, Symbol, Term};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A finite instance: a set of atoms over constants and labelled nulls.
///
/// The paper distinguishes instances (possibly infinite) from databases
/// (finite).  `Instance` is the materialized, finite object; the chase
/// engine's budgets guarantee we only ever hold finite prefixes of possibly
/// infinite chase results.
///
/// Atoms containing variables are accepted as well — this is deliberate:
/// frozen queries ("canonical databases") are represented by mapping each
/// variable to a fresh constant at the query layer, but a few internal
/// constructions (notably the cover game, which plays directly on query
/// atoms) find it convenient to store variable atoms.  Use
/// [`Instance::is_ground`] when groundness matters.
#[derive(Debug, Clone, Default)]
pub struct Instance {
    relations: HashMap<Symbol, Relation>,
    /// Predicates in first-insertion order, for deterministic iteration.
    order: Vec<Symbol>,
    size: usize,
    /// Mutation counter: incremented exactly when an insert actually adds a
    /// new atom.  Derived structures (e.g. the `sac-engine` index cache) use
    /// it to detect staleness without hashing the whole instance.
    epoch: u64,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Builds an instance from an iterator of atoms.
    pub fn from_atoms(atoms: impl IntoIterator<Item = Atom>) -> Result<Instance> {
        let mut inst = Instance::new();
        for atom in atoms {
            inst.insert(atom)?;
        }
        Ok(inst)
    }

    /// Inserts an atom.  Returns `Ok(true)` if the atom was new, `Ok(false)`
    /// if it was already present, and an error if the predicate was already
    /// used with a different arity.
    pub fn insert(&mut self, atom: Atom) -> Result<bool> {
        let arity = atom.arity();
        let rel = match self.relations.get_mut(&atom.predicate) {
            Some(rel) => {
                if rel.arity() != arity {
                    return Err(Error::ArityMismatch {
                        predicate: atom.predicate.as_str(),
                        expected: rel.arity(),
                        found: arity,
                    });
                }
                rel
            }
            None => {
                self.order.push(atom.predicate);
                self.relations
                    .entry(atom.predicate)
                    .or_insert_with(|| Relation::new(atom.predicate, arity))
            }
        };
        let inserted = rel.insert(atom.args);
        if inserted {
            self.size += 1;
            self.epoch += 1;
        }
        Ok(inserted)
    }

    /// The mutation epoch: starts at 0 and increments on every insert that
    /// actually added a new atom (duplicate inserts leave it unchanged).
    ///
    /// Callers that cache per-relation derived structures can combine the
    /// epoch with [`Instance::insert`]'s return value to invalidate precisely:
    /// an unchanged epoch guarantees every cached index is still valid, and a
    /// `true` insert result pinpoints the single predicate whose indexes went
    /// stale.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Membership test.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.relations
            .get(&atom.predicate)
            .is_some_and(|rel| rel.arity() == atom.arity() && rel.contains(&atom.args))
    }

    /// Total number of atoms.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the instance holds no atoms.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The relation for `predicate`, if any tuples were inserted for it.
    pub fn relation(&self, predicate: Symbol) -> Option<&Relation> {
        self.relations.get(&predicate)
    }

    /// Predicates present in the instance, in first-insertion order.
    pub fn predicates(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.order.iter().copied()
    }

    /// Iterates over every atom of the instance (deterministic order).
    pub fn atoms(&self) -> impl Iterator<Item = Atom> + '_ {
        self.order.iter().flat_map(move |p| {
            let rel = &self.relations[p];
            rel.iter().map(move |tuple| Atom::new(*p, tuple))
        })
    }

    /// Collects every atom into a vector.
    pub fn to_atoms(&self) -> Vec<Atom> {
        self.atoms().collect()
    }

    /// The set of all terms occurring in the instance (the *active domain*).
    pub fn active_domain(&self) -> BTreeSet<Term> {
        self.atoms()
            .flat_map(|a| a.terms().into_iter().collect::<Vec<_>>())
            .collect()
    }

    /// The largest null label occurring in the instance, if any.
    pub fn max_null_label(&self) -> Option<u64> {
        self.atoms()
            .flat_map(|a| a.nulls().into_iter().collect::<Vec<_>>())
            .max()
    }

    /// Whether every atom is ground (no variables).
    pub fn is_ground(&self) -> bool {
        self.atoms().all(|a| a.is_ground())
    }

    /// The schema induced by the stored atoms.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for (p, rel) in self.order.iter().map(|p| (*p, &self.relations[p])) {
            s.add_predicate(p, rel.arity());
        }
        s
    }

    /// Summary statistics, used by the experiment reports and the
    /// `sac-engine` planner (per-column distinct counts drive atom ordering).
    pub fn stats(&self) -> InstanceStats {
        InstanceStats {
            atoms: self.len(),
            predicates: self.order.len(),
            domain_size: self.active_domain().len(),
            nulls: self.active_domain().iter().filter(|t| t.is_null()).count(),
            max_arity: self
                .relations
                .values()
                .map(|r| r.arity())
                .max()
                .unwrap_or(0),
            dict_len: crate::dict::len(),
            dict_bytes: crate::dict::heap_bytes(),
            relations: self
                .order
                .iter()
                .map(|p| self.relations[p].stats())
                .collect(),
        }
    }

    /// Estimated heap footprint of the instance's storage: the per-relation
    /// column buffers, dedup tables and sidecar indexes, plus the global
    /// term dictionary ([`crate::dict::heap_bytes`]).  The dictionary is
    /// process-wide and shared by every instance, so summing `heap_bytes`
    /// over several instances double-counts its share; the number is an
    /// estimate for capacity planning and benchmark reports, not an exact
    /// allocator measurement.
    pub fn heap_bytes(&self) -> usize {
        let relations: usize = self.relations.values().map(|r| r.heap_bytes()).sum();
        relations + crate::dict::heap_bytes()
    }

    /// Applies a term-level renaming to every atom, producing a new instance.
    /// Used by the egd chase to identify nulls.
    pub fn rename(&self, mut f: impl FnMut(Term) -> Term) -> Instance {
        let mut out = Instance::new();
        for atom in self.atoms() {
            out.insert(atom.map_args(&mut f))
                .expect("renaming preserves arities");
        }
        out
    }

    /// A [`DeltaCursor`] marking the instance's current position in its
    /// append-only growth: the mutation epoch plus one row watermark per
    /// relation.  Pair with [`Instance::delta_since`] to read exactly the
    /// facts appended after this point.
    pub fn delta_cursor(&self) -> DeltaCursor {
        DeltaCursor {
            epoch: self.epoch,
            rows: self
                .order
                .iter()
                .map(|p| (*p, self.relations[p].len()))
                .collect(),
        }
    }

    /// The per-relation delta logs since `cursor`: for every relation that
    /// grew past its watermark, a [`RelationDelta`] exposing exactly the
    /// appended tail (relations are append-only, so the tail *is* the
    /// delta).  Relations unknown to the cursor report their full contents.
    ///
    /// The cursor must come from this instance's own growth history
    /// (inserts only — [`Instance::rename`] builds a fresh instance and
    /// starts a fresh history).  A cursor from an unrelated instance maps
    /// watermarks onto rows they never described, and the "delta" is
    /// garbage.
    pub fn delta_since<'a>(&'a self, cursor: &DeltaCursor) -> Vec<RelationDelta<'a>> {
        self.order
            .iter()
            .filter_map(|p| {
                let rel = &self.relations[p];
                let from_row = cursor.rows_covered(*p);
                (from_row < rel.len()).then_some(RelationDelta {
                    predicate: *p,
                    relation: rel,
                    from_row,
                })
            })
            .collect()
    }

    /// Merges all atoms of `other` into `self`.
    pub fn extend_from(&mut self, other: &Instance) -> Result<usize> {
        let mut added = 0;
        for atom in other.atoms() {
            if self.insert(atom)? {
                added += 1;
            }
        }
        Ok(added)
    }
}

/// A position in an instance's append-only growth: the mutation
/// [`Instance::epoch`] plus a row watermark per relation.
///
/// Taken with [`Instance::delta_cursor`] and consumed by
/// [`Instance::delta_since`]; the `sac-engine` materialized views use one
/// cursor per view to turn "what changed since my last refresh?" into a
/// handful of tail reads instead of a diff.  [`DeltaCursor::default`] sits
/// before all growth: `delta_since(&DeltaCursor::default())` is the whole
/// instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaCursor {
    epoch: u64,
    rows: HashMap<Symbol, usize>,
}

impl DeltaCursor {
    /// The epoch the cursor was taken at (0 for the default cursor).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The watermark for `predicate`: how many of its rows the cursor
    /// covers (0 for relations the cursor never saw).
    pub fn rows_covered(&self, predicate: Symbol) -> usize {
        self.rows.get(&predicate).copied().unwrap_or(0)
    }
}

/// One relation's delta log: the tuples a relation gained since a
/// [`DeltaCursor`] was taken (see [`Instance::delta_since`]).
#[derive(Debug, Clone, Copy)]
pub struct RelationDelta<'a> {
    /// The grown relation's predicate.
    pub predicate: Symbol,
    /// The full relation the delta is a tail of (so callers can probe its
    /// indexes and stats as well as read the new rows).
    pub relation: &'a Relation,
    /// The first appended row: `relation.row(from_row..)` is the delta.
    pub from_row: usize,
}

impl RelationDelta<'_> {
    /// Number of appended tuples.
    pub fn len(&self) -> usize {
        self.relation.len() - self.from_row
    }

    /// Whether the delta is empty (never true for deltas returned by
    /// [`Instance::delta_since`], which skips ungrown relations).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over exactly the appended tuples, in insertion order
    /// (decoded from the relation's columns).
    pub fn rows(&self) -> impl Iterator<Item = Vec<Term>> + '_ {
        self.relation.rows_from(self.from_row)
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{")?;
        for atom in self.atoms() {
            writeln!(f, "  {atom}")?;
        }
        write!(f, "}}")
    }
}

/// Parses a database: a list of ground facts `Pred(c, …, c).` (see
/// [`sac_common::syntax`]), so `"E(a, b). E(b, c).".parse::<Instance>()`
/// works anywhere without going through `sac-parser`.
impl std::str::FromStr for Instance {
    type Err = Error;

    fn from_str(s: &str) -> Result<Instance> {
        let mut instance = Instance::new();
        for statement in sac_common::syntax::parse_statements(s)? {
            match statement {
                sac_common::RawStatement::Fact(atom) if atom.is_ground() => {
                    instance.insert(atom)?;
                }
                sac_common::RawStatement::Fact(atom) => {
                    return Err(Error::Malformed(format!(
                        "facts must be ground (constants only), found `{atom}`"
                    )))
                }
                other => {
                    return Err(Error::Malformed(format!(
                        "databases contain only facts, found a {}",
                        other.kind()
                    )))
                }
            }
        }
        Ok(instance)
    }
}

impl FromIterator<Atom> for Instance {
    /// Panics on arity conflicts; use [`Instance::from_atoms`] for the
    /// fallible variant.
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Instance {
        Instance::from_atoms(iter).expect("conflicting arities while collecting instance")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};

    fn sample() -> Instance {
        Instance::from_atoms(vec![
            atom!("R", cst "a", cst "b"),
            atom!("R", cst "b", cst "c"),
            atom!("S", cst "a"),
        ])
        .unwrap()
    }

    #[test]
    fn from_str_parses_ground_facts_only() {
        let inst: Instance = "R(a, b). R(b, c). S(a).".parse().unwrap();
        assert_eq!(inst.len(), 3);
        assert!(inst.contains(&atom!("R", cst "a", cst "b")));
        assert!("R(X).".parse::<Instance>().is_err()); // non-ground
        assert!("R(a) -> S(a).".parse::<Instance>().is_err()); // tgd
        assert!("R(a). R(a, b).".parse::<Instance>().is_err()); // arity clash
    }

    #[test]
    fn insert_and_contains() {
        let inst = sample();
        assert_eq!(inst.len(), 3);
        assert!(inst.contains(&atom!("R", cst "a", cst "b")));
        assert!(!inst.contains(&atom!("R", cst "c", cst "a")));
        assert!(!inst.contains(&atom!("T", cst "a")));
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut inst = sample();
        assert!(!inst.insert(atom!("S", cst "a")).unwrap());
        assert_eq!(inst.len(), 3);
    }

    #[test]
    fn arity_conflicts_are_rejected() {
        let mut inst = sample();
        assert!(inst.insert(atom!("R", cst "a")).is_err());
    }

    #[test]
    fn atoms_round_trip() {
        let inst = sample();
        let atoms = inst.to_atoms();
        assert_eq!(atoms.len(), 3);
        let rebuilt = Instance::from_atoms(atoms).unwrap();
        assert_eq!(rebuilt.len(), inst.len());
        for a in inst.atoms() {
            assert!(rebuilt.contains(&a));
        }
    }

    #[test]
    fn active_domain_and_nulls() {
        let mut inst = sample();
        inst.insert(atom!("S", null 7)).unwrap();
        let dom = inst.active_domain();
        assert_eq!(dom.len(), 4); // a, b, c, null 7
        assert_eq!(inst.max_null_label(), Some(7));
        assert!(inst.is_ground());
    }

    #[test]
    fn groundness_detects_variables() {
        let mut inst = sample();
        inst.insert(atom!("S", var "x")).unwrap();
        assert!(!inst.is_ground());
    }

    #[test]
    fn schema_reflects_contents() {
        let inst = sample();
        let schema = inst.schema();
        assert_eq!(schema.arity_of(intern("R")), Some(2));
        assert_eq!(schema.arity_of(intern("S")), Some(1));
    }

    #[test]
    fn rename_substitutes_terms() {
        let inst = sample();
        let renamed = inst.rename(|t| {
            if t == Term::constant("a") {
                Term::constant("z")
            } else {
                t
            }
        });
        assert!(renamed.contains(&atom!("R", cst "z", cst "b")));
        assert!(renamed.contains(&atom!("S", cst "z")));
        assert!(!renamed.contains(&atom!("S", cst "a")));
    }

    #[test]
    fn rename_can_merge_atoms() {
        // Renaming b ↦ c merges R(a,b) and R(a,c) if both existed; here it
        // merges R(b,c) into R(c,c) and the size may shrink.
        let mut inst = Instance::new();
        inst.insert(atom!("R", cst "a", cst "b")).unwrap();
        inst.insert(atom!("R", cst "a", cst "c")).unwrap();
        let renamed = inst.rename(|t| {
            if t == Term::constant("b") {
                Term::constant("c")
            } else {
                t
            }
        });
        assert_eq!(renamed.len(), 1);
    }

    #[test]
    fn extend_from_counts_new_atoms() {
        let mut inst = sample();
        let other = Instance::from_atoms(vec![atom!("S", cst "a"), atom!("S", cst "b")]).unwrap();
        let added = inst.extend_from(&other).unwrap();
        assert_eq!(added, 1);
        assert_eq!(inst.len(), 4);
    }

    #[test]
    fn stats_summarize() {
        let inst = sample();
        let st = inst.stats();
        assert_eq!(st.atoms, 3);
        assert_eq!(st.predicates, 2);
        assert_eq!(st.domain_size, 3);
        assert_eq!(st.max_arity, 2);
        assert_eq!(st.nulls, 0);
        assert_eq!(st.relations.len(), 2);
        let r = st.relation(intern("R")).unwrap();
        assert_eq!(r.tuples, 2);
        assert_eq!(r.distinct_per_column, vec![2, 2]);
    }

    #[test]
    fn delta_cursor_reads_exactly_the_appended_tail() {
        let mut inst = sample();
        let cursor = inst.delta_cursor();
        assert_eq!(cursor.epoch(), inst.epoch());
        assert_eq!(cursor.rows_covered(intern("R")), 2);
        assert!(inst.delta_since(&cursor).is_empty(), "no growth yet");

        // Duplicate inserts are not growth.
        assert!(!inst.insert(atom!("S", cst "a")).unwrap());
        assert!(inst.delta_since(&cursor).is_empty());

        // Grow R by one, S by one, and introduce a new predicate T.
        assert!(inst.insert(atom!("R", cst "c", cst "d")).unwrap());
        assert!(inst.insert(atom!("S", cst "b")).unwrap());
        assert!(inst.insert(atom!("T", cst "t")).unwrap());
        let deltas = inst.delta_since(&cursor);
        assert_eq!(deltas.len(), 3);
        let r = deltas.iter().find(|d| d.predicate == intern("R")).unwrap();
        assert_eq!((r.from_row, r.len()), (2, 1));
        assert_eq!(
            r.rows().collect::<Vec<_>>(),
            vec![vec![Term::constant("c"), Term::constant("d")]]
        );
        // The unseen predicate's delta is its whole relation.
        let t = deltas.iter().find(|d| d.predicate == intern("T")).unwrap();
        assert_eq!((t.from_row, t.len()), (0, 1));
        assert!(!t.is_empty());

        // Advancing the cursor drains the delta.
        let cursor = inst.delta_cursor();
        assert!(inst.delta_since(&cursor).is_empty());
    }

    #[test]
    fn cursor_on_an_empty_instance_sees_all_later_growth() {
        // The WAL recovery path takes its first cursor before any insert —
        // an empty instance must hand out a cursor that later reports the
        // entire contents as delta.
        let mut inst = Instance::new();
        let cursor = inst.delta_cursor();
        assert_eq!(cursor.epoch(), 0);
        assert!(inst.delta_since(&cursor).is_empty());

        assert!(inst.insert(atom!("R", cst "a", cst "b")).unwrap());
        assert!(inst.insert(atom!("S", cst "a")).unwrap());
        let deltas = inst.delta_since(&cursor);
        assert_eq!(deltas.len(), 2);
        let total: usize = deltas.iter().map(|d| d.len()).sum();
        assert_eq!(
            total,
            inst.len(),
            "everything after an empty cursor is delta"
        );
        for delta in &deltas {
            assert_eq!(delta.from_row, 0);
        }
    }

    #[test]
    fn cursor_spans_relations_created_after_it() {
        // A WAL append batch may introduce a brand-new predicate; the
        // durability hook's pre-insert cursor must report the new
        // relation's full contents, watermark 0, even across repeated
        // growth of that relation.
        let mut inst = sample();
        let cursor = inst.delta_cursor();
        assert_eq!(
            cursor.rows_covered(intern("Later")),
            0,
            "never-seen predicate"
        );

        assert!(inst.insert(atom!("Later", cst "x")).unwrap());
        assert!(inst.insert(atom!("Later", cst "y")).unwrap());
        let deltas = inst.delta_since(&cursor);
        assert_eq!(deltas.len(), 1);
        assert_eq!((deltas[0].from_row, deltas[0].len()), (0, 2));

        // A fresh cursor taken *between* the new relation's rows covers
        // only the prefix it saw.
        let mid = inst.delta_cursor();
        assert_eq!(mid.rows_covered(intern("Later")), 2);
        assert!(inst.insert(atom!("Later", cst "z")).unwrap());
        let deltas = inst.delta_since(&mid);
        assert_eq!(deltas.len(), 1);
        assert_eq!((deltas[0].from_row, deltas[0].len()), (2, 1));
    }

    #[test]
    fn delta_since_spans_checkpoint_style_boundaries() {
        // Recovery interleaves checkpoints with appends: a cursor taken
        // before a snapshot boundary keeps describing growth correctly
        // after it, because relations are append-only and a checkpoint
        // reads — never rewrites — the instance.
        let mut inst = sample();
        let before = inst.delta_cursor();
        assert!(inst.insert(atom!("R", cst "c", cst "d")).unwrap());

        // "Checkpoint": a full read pass over the instance (what snapshot
        // dumping does), which must not disturb the growth history.
        let dumped: Vec<_> = inst.atoms().collect();
        assert_eq!(dumped.len(), inst.len());

        assert!(inst.insert(atom!("R", cst "d", cst "e")).unwrap());
        let deltas = inst.delta_since(&before);
        assert_eq!(deltas.len(), 1);
        let r = &deltas[0];
        assert_eq!((r.from_row, r.len()), (2, 2), "both sides of the boundary");
        // A cursor taken at the boundary sees only the post-boundary row.
        let at_boundary_rows = r.relation.rows_from(3).collect::<Vec<_>>();
        assert_eq!(
            at_boundary_rows,
            vec![vec![Term::constant("d"), Term::constant("e")]]
        );
    }

    #[test]
    fn default_cursor_covers_the_whole_instance() {
        let inst = sample();
        let deltas = inst.delta_since(&DeltaCursor::default());
        let total: usize = deltas.iter().map(|d| d.len()).sum();
        assert_eq!(total, inst.len());
        assert_eq!(DeltaCursor::default().epoch(), 0);
        assert_eq!(DeltaCursor::default().rows_covered(intern("R")), 0);
    }

    #[test]
    fn relation_rows_from_is_the_tail() {
        let inst = sample();
        let rel = inst.relation(intern("R")).unwrap();
        assert_eq!(rel.rows_from(0).count(), 2);
        assert_eq!(rel.rows_from(1).count(), 1);
        assert_eq!(rel.rows_from(2).count(), 0);
        assert_eq!(rel.rows_from(99).count(), 0, "past-the-end is empty");
    }

    #[test]
    fn epoch_counts_only_real_insertions() {
        let mut inst = Instance::new();
        assert_eq!(inst.epoch(), 0);
        assert!(inst.insert(atom!("R", cst "a", cst "b")).unwrap());
        assert_eq!(inst.epoch(), 1);
        // Duplicate insert: reported as not-new, epoch unchanged.
        assert!(!inst.insert(atom!("R", cst "a", cst "b")).unwrap());
        assert_eq!(inst.epoch(), 1);
        assert!(inst.insert(atom!("S", cst "a")).unwrap());
        assert_eq!(inst.epoch(), 2);
        // Failed inserts (arity conflict) leave the epoch unchanged.
        assert!(inst.insert(atom!("S", cst "a", cst "b")).is_err());
        assert_eq!(inst.epoch(), 2);
    }
}
