//! Summary statistics for instances and relations.
//!
//! [`InstanceStats`] is the coarse, whole-instance summary used by the
//! experiment reports; [`RelationStats`] adds the per-relation, per-column
//! distinct counts that the `sac-engine` planner uses to order atoms by
//! estimated selectivity.

use sac_common::Symbol;
use std::fmt;

/// Per-relation statistics: cardinality plus distinct counts per column.
///
/// The ratio `tuples / distinct_per_column[i]` estimates how many rows a
/// point lookup on column `i` returns — the planner's basic selectivity
/// signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationStats {
    /// The relation's predicate.
    pub predicate: Symbol,
    /// The relation's arity.
    pub arity: usize,
    /// Number of (distinct) tuples.
    pub tuples: usize,
    /// Number of distinct terms occurring at each column.
    pub distinct_per_column: Vec<usize>,
}

impl RelationStats {
    /// Estimated number of rows matched by binding column `pos` to one value
    /// (the relation's cardinality divided by the column's distinct count).
    /// Returns the full cardinality when the column has no distinct values
    /// recorded (empty relation or out-of-range position).
    pub fn estimated_rows_per_value(&self, pos: usize) -> f64 {
        match self.distinct_per_column.get(pos) {
            Some(&d) if d > 0 => self.tuples as f64 / d as f64,
            _ => self.tuples as f64,
        }
    }

    /// Estimated cardinality after binding every column in `positions` to a
    /// point value, assuming independent columns (the textbook estimate).
    pub fn estimated_rows_with_bound(&self, positions: &[usize]) -> f64 {
        let mut est = self.tuples as f64;
        for &pos in positions {
            if let Some(&d) = self.distinct_per_column.get(pos) {
                if d > 0 {
                    est /= d as f64;
                }
            }
        }
        est
    }
}

impl fmt::Display for RelationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}: {} tuples, distinct {:?}",
            self.predicate, self.arity, self.tuples, self.distinct_per_column
        )
    }
}

/// Summary statistics of an [`crate::Instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceStats {
    /// Total number of atoms.
    pub atoms: usize,
    /// Number of distinct predicates.
    pub predicates: usize,
    /// Size of the active domain (distinct terms).
    pub domain_size: usize,
    /// Number of distinct labelled nulls in the active domain.
    pub nulls: usize,
    /// Maximum predicate arity.
    pub max_arity: usize,
    /// Distinct terms in the **process-wide** term dictionary (shared by
    /// every instance, so this is a process number, not an instance one;
    /// recovery debugging watches it to see dictionary growth).
    pub dict_len: usize,
    /// Estimated heap bytes of the process-wide term dictionary.
    pub dict_bytes: usize,
    /// Per-relation breakdown (in first-insertion predicate order).
    pub relations: Vec<RelationStats>,
}

impl InstanceStats {
    /// The per-relation statistics for `predicate`, if present.
    pub fn relation(&self, predicate: Symbol) -> Option<&RelationStats> {
        self.relations.iter().find(|r| r.predicate == predicate)
    }

    /// The relation holding the most tuples — the scan any per-shard
    /// parallelism or trace node-row report is dominated by.  `None` on an
    /// empty instance.
    pub fn largest_relation(&self) -> Option<&RelationStats> {
        self.relations.iter().max_by_key(|r| r.tuples)
    }
}

impl fmt::Display for InstanceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} atoms over {} predicates (domain {}, nulls {}, max arity {}); dict {} terms / {} bytes",
            self.atoms,
            self.predicates,
            self.domain_size,
            self.nulls,
            self.max_arity,
            self.dict_len,
            self.dict_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::intern;

    fn sample() -> InstanceStats {
        InstanceStats {
            atoms: 10,
            predicates: 3,
            domain_size: 7,
            nulls: 2,
            max_arity: 4,
            dict_len: 123,
            dict_bytes: 4096,
            relations: vec![RelationStats {
                predicate: intern("R"),
                arity: 2,
                tuples: 10,
                distinct_per_column: vec![5, 2],
            }],
        }
    }

    #[test]
    fn display_mentions_all_fields() {
        let out = format!("{}", sample());
        for needle in ["10", "3", "7", "2", "4", "123 terms", "4096 bytes"] {
            assert!(out.contains(needle), "missing {needle} in {out}");
        }
    }

    #[test]
    fn relation_lookup_by_predicate() {
        let s = sample();
        assert!(s.relation(intern("R")).is_some());
        assert!(s.relation(intern("Missing")).is_none());
    }

    #[test]
    fn largest_relation_picks_the_biggest_scan() {
        let mut s = sample();
        assert_eq!(s.largest_relation().unwrap().predicate, intern("R"));
        s.relations.push(RelationStats {
            predicate: intern("Big"),
            arity: 1,
            tuples: 99,
            distinct_per_column: vec![99],
        });
        assert_eq!(s.largest_relation().unwrap().predicate, intern("Big"));
        s.relations.clear();
        assert!(s.largest_relation().is_none());
    }

    #[test]
    fn selectivity_estimates() {
        let r = sample().relations[0].clone();
        assert_eq!(r.estimated_rows_per_value(0), 2.0);
        assert_eq!(r.estimated_rows_per_value(1), 5.0);
        // Out of range falls back to the full cardinality.
        assert_eq!(r.estimated_rows_per_value(9), 10.0);
        assert_eq!(r.estimated_rows_with_bound(&[0, 1]), 1.0);
    }
}
