//! Lightweight summary statistics for instances, used by experiment reports.

use std::fmt;

/// Summary statistics of an [`crate::Instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceStats {
    /// Total number of atoms.
    pub atoms: usize,
    /// Number of distinct predicates.
    pub predicates: usize,
    /// Size of the active domain (distinct terms).
    pub domain_size: usize,
    /// Number of distinct labelled nulls in the active domain.
    pub nulls: usize,
    /// Maximum predicate arity.
    pub max_arity: usize,
}

impl fmt::Display for InstanceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} atoms over {} predicates (domain {}, nulls {}, max arity {})",
            self.atoms, self.predicates, self.domain_size, self.nulls, self.max_arity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_all_fields() {
        let s = InstanceStats {
            atoms: 10,
            predicates: 3,
            domain_size: 7,
            nulls: 2,
            max_arity: 4,
        };
        let out = format!("{s}");
        for needle in ["10", "3", "7", "2", "4"] {
            assert!(out.contains(needle), "missing {needle} in {out}");
        }
    }
}
