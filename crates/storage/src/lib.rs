//! # sac-storage
//!
//! In-memory relational storage substrate used by the chase engine, the
//! homomorphism engine and the query evaluators.
//!
//! The paper works with *instances* (possibly infinite sets of atoms over
//! constants and nulls) and *databases* (finite instances).  Everything we
//! materialize is finite; [`Instance`] is the finite representation used for
//! canonical databases of queries, chase results, and synthetic databases
//! produced by the workload generators.
//!
//! Design goals, driven by the chase/evaluation workload:
//!
//! * **Cheap membership tests** — the chase must detect whether the head of a
//!   tgd is already satisfied; `contains` is a hash lookup.
//! * **Positional indexes** — the homomorphism engine asks "give me all
//!   `R`-tuples whose position `i` equals term `t`"; every relation keeps
//!   hash indexes per position.
//! * **Stable iteration order** — results are deterministic, which keeps
//!   tests and experiments reproducible.
//! * **Append-only growth with delta logs** — tuples are only ever added,
//!   each relation remembers its insertion order, and a [`DeltaCursor`]
//!   (epoch + per-relation row watermarks) turns "what changed since?" into
//!   a few tail reads ([`Instance::delta_since`]).  This is what the
//!   engine's incremental index maintenance and materialized views are
//!   built on.
//!
//! The substrate is deliberately simple (no paging, no concurrency): the
//! paper's experiments are laptop-scale and CPU-bound in the chase and in
//! homomorphism search, not I/O bound.

pub mod dict;
pub mod instance;
pub mod relation;
pub mod stats;

pub use instance::{DeltaCursor, Instance, RelationDelta};
pub use relation::Relation;
pub use stats::{InstanceStats, RelationStats};
