//! Property tests for the hash-partitioning invariants of
//! [`sac_storage::Relation::partition_by`] and for the incremental
//! maintenance of the storage layer's positional indexes: random insert
//! sequences must leave every derived structure identical to a from-scratch
//! rebuild.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sac_common::{intern, Term};
use sac_storage::Relation;
use std::collections::BTreeSet;

/// A deterministic tuple stream over a small term universe: dense enough to
/// produce duplicates (exercising dedup) and skew (several tuples per term).
fn random_relation(arity: usize, tuples: usize, seed: u64) -> Relation {
    let mut rel = Relation::new(intern("R"), arity);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..tuples {
        let tuple: Vec<Term> = (0..arity)
            .map(|_| Term::constant(&format!("c{}", rng.gen_range(0u64..11))))
            .collect();
        rel.insert(tuple);
    }
    rel
}

fn tuple_set(rel: &Relation) -> BTreeSet<Vec<Term>> {
    rel.iter().map(|t| t.to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shards_partition_the_relation(
        arity in 1usize..4,
        tuples in 0usize..60,
        k in 1usize..6,
        col_pick in 0usize..8,
        seed in 0u64..10_000,
    ) {
        let rel = random_relation(arity, tuples, seed);
        let col = col_pick % arity;
        let shards = rel.partition_by(col, k);
        prop_assert_eq!(shards.len(), k);

        // Union of shards == original relation, and the shard sizes sum
        // exactly (the shards are disjoint: each tuple has one hash home).
        let mut union = BTreeSet::new();
        let mut total = 0usize;
        for (i, shard) in shards.iter().enumerate() {
            prop_assert_eq!(shard.predicate(), rel.predicate());
            prop_assert_eq!(shard.arity(), rel.arity());
            for tuple in shard.iter() {
                prop_assert_eq!(Relation::shard_of(&tuple[col], k), i);
                union.insert(tuple.to_vec());
            }
            total += shard.len();
        }
        prop_assert_eq!(total, rel.len());
        prop_assert_eq!(union, tuple_set(&rel));
    }

    #[test]
    fn shard_stats_sum_to_relation_stats(
        arity in 1usize..4,
        tuples in 0usize..60,
        k in 1usize..6,
        col_pick in 0usize..8,
        seed in 0u64..10_000,
    ) {
        let rel = random_relation(arity, tuples, seed);
        let col = col_pick % arity;
        let shards = rel.partition_by(col, k);
        let stats = rel.stats();

        let shard_tuples: usize = shards.iter().map(|s| s.stats().tuples).sum();
        prop_assert_eq!(shard_tuples, stats.tuples);

        // On the partition column every distinct term lives in exactly one
        // shard, so the distinct counts sum exactly; on other columns a term
        // may appear in several shards, so the sum only bounds from above.
        for pos in 0..arity {
            let summed: usize = shards.iter().map(|s| s.distinct_at(pos)).sum();
            if pos == col {
                prop_assert_eq!(summed, rel.distinct_at(pos));
            } else {
                prop_assert!(summed >= rel.distinct_at(pos));
            }
        }
    }

    #[test]
    fn incremental_positional_indexes_match_a_from_scratch_rebuild(
        arity in 1usize..4,
        tuples in 0usize..60,
        seed in 0u64..10_000,
    ) {
        // `rel` grew tuple by tuple, maintaining its positional indexes
        // incrementally on every insert; `rebuilt` receives the same tuples
        // in one pass.  Every index lookup must agree, and both must agree
        // with the ground truth of a full scan.
        let rel = random_relation(arity, tuples, seed);
        let mut rebuilt = Relation::new(rel.predicate(), rel.arity());
        for tuple in rel.iter() {
            rebuilt.insert(tuple.to_vec());
        }
        prop_assert_eq!(rebuilt.len(), rel.len());
        for pos in 0..arity {
            prop_assert_eq!(rel.distinct_at(pos), rebuilt.distinct_at(pos));
            // project_index builds the single-column index from scratch;
            // rows_with_code serves the incrementally maintained sidecar,
            // and rows_with routes a decoded term to the same answer.
            let scratch = rel.project_index(&[pos]);
            for (key, rows) in &scratch {
                prop_assert_eq!(rel.rows_with_code(pos, key[0]), rows.as_slice());
                prop_assert_eq!(
                    rel.rows_with(pos, sac_storage::dict::decode(key[0])),
                    rows.as_slice()
                );
                let scan: Vec<u32> = rel
                    .column(pos)
                    .iter()
                    .enumerate()
                    .filter(|(_, &code)| code == key[0])
                    .map(|(i, _)| i as u32)
                    .collect();
                prop_assert_eq!(rows.as_slice(), scan.as_slice());
            }
        }
    }

    #[test]
    fn partitioning_commutes_with_growth(
        arity in 1usize..4,
        first in 0usize..30,
        second in 0usize..30,
        k in 2usize..5,
        seed in 0u64..10_000,
    ) {
        // Partitioning the grown relation == growing each shard with the
        // appended tuples routed by hash: the engine's incremental shard
        // maintenance relies on exactly this.
        let full = random_relation(arity, first + second, seed);
        let mut prefix = Relation::new(full.predicate(), full.arity());
        for tuple in full.iter().take(first.min(full.len())) {
            prefix.insert(tuple.to_vec());
        }
        let mut grown = prefix.partition_by(0, k);
        for tuple in full.iter().skip(prefix.len()) {
            grown[Relation::shard_of(&tuple[0], k)].insert(tuple.to_vec());
        }
        let scratch = full.partition_by(0, k);
        for (g, s) in grown.iter().zip(&scratch) {
            prop_assert_eq!(tuple_set(g), tuple_set(s));
        }
    }
}
