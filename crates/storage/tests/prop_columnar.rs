//! Model-based property tests for the columnar tuple core: a
//! [`sac_storage::Relation`] driven by a random operation sequence must
//! agree, observation for observation, with a trivially-correct reference
//! model (`Vec<Vec<Term>>` with linear-scan membership).  The model knows
//! nothing about dictionaries, packed-row hashing or sidecar indexes, so
//! any disagreement pins a bug in exactly those structures.
//!
//! A second block checks the dictionary itself: encode∘decode is the
//! identity, and codes are stable — re-encoding a term later (after
//! arbitrary other interning) returns the same code.

use proptest::prelude::*;
use sac_common::{intern, Term};
use sac_storage::{dict, Relation};

/// The reference model: insertion-ordered distinct tuples.
#[derive(Default)]
struct Model {
    tuples: Vec<Vec<Term>>,
}

impl Model {
    fn insert(&mut self, tuple: Vec<Term>) -> bool {
        if self.tuples.contains(&tuple) {
            false
        } else {
            self.tuples.push(tuple);
            true
        }
    }

    fn rows_with(&self, pos: usize, term: Term) -> Vec<u32> {
        self.tuples
            .iter()
            .enumerate()
            .filter(|(_, t)| t[pos] == term)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// A small constant universe: dense enough that random sequences hit
/// duplicates (exercising dedup) and repeated column values (exercising
/// the sidecars and `project_index`).
fn small_term() -> impl Strategy<Value = Term> {
    (0u8..7).prop_map(|n| Term::constant(&format!("pc{n}")))
}

fn tuples(arity: usize, len: usize) -> impl Strategy<Value = Vec<Vec<Term>>> {
    proptest::collection::vec(proptest::collection::vec(small_term(), arity), 0..len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Insert/dedup/scan: after any insert sequence the columnar relation
    /// holds exactly the model's distinct tuples, in insertion order, with
    /// matching membership answers.
    #[test]
    fn insert_and_iteration_match_the_model(
        arity in 1usize..4,
        seq in tuples(3, 50),
    ) {
        let mut rel = Relation::new(intern("P"), arity);
        let mut model = Model::default();
        for tuple in &seq {
            let tuple: Vec<Term> = tuple.iter().take(arity).cloned().collect();
            prop_assert_eq!(rel.insert(tuple.clone()), model.insert(tuple));
        }
        prop_assert_eq!(rel.len(), model.tuples.len());
        let scanned: Vec<Vec<Term>> = rel.iter().collect();
        prop_assert_eq!(&scanned, &model.tuples);
        for (i, tuple) in model.tuples.iter().enumerate() {
            prop_assert!(rel.contains(tuple));
            let row = rel.row(i);
            prop_assert_eq!(row.as_ref(), Some(tuple));
        }
        prop_assert!(rel.row(model.tuples.len()).is_none());
        // A tuple outside the inserted set is absent from both.
        let foreign = vec![Term::constant("prop_columnar_never_inserted"); arity];
        prop_assert_eq!(rel.contains(&foreign), model.tuples.contains(&foreign));
    }

    /// The sidecar lookups agree with model filtering at every position.
    #[test]
    fn sidecar_lookups_match_model_filtering(
        arity in 1usize..4,
        seq in tuples(3, 50),
    ) {
        let mut rel = Relation::new(intern("P"), arity);
        let mut model = Model::default();
        for tuple in &seq {
            let tuple: Vec<Term> = tuple.iter().take(arity).cloned().collect();
            rel.insert(tuple.clone());
            model.insert(tuple);
        }
        for pos in 0..arity {
            for n in 0u8..7 {
                let term = Term::constant(&format!("pc{n}"));
                prop_assert_eq!(
                    rel.rows_with(pos, term).to_vec(),
                    model.rows_with(pos, term)
                );
            }
            // distinct_at is exact (sidecar key count == model distinct).
            let distinct: std::collections::BTreeSet<Term> =
                model.tuples.iter().map(|t| t[pos]).collect();
            prop_assert_eq!(rel.distinct_at(pos), distinct.len());
        }
    }

    /// `project_index` groups row ids exactly like grouping the model by
    /// the projected columns (keys compared through the dictionary).
    #[test]
    fn project_index_matches_model_grouping(
        arity in 2usize..4,
        seq in tuples(3, 50),
        p0 in 0usize..4,
        p1 in 0usize..4,
    ) {
        let positions = vec![p0 % arity, p1 % arity];
        let mut rel = Relation::new(intern("P"), arity);
        let mut model = Model::default();
        for tuple in &seq {
            let tuple: Vec<Term> = tuple.iter().take(arity).cloned().collect();
            rel.insert(tuple.clone());
            model.insert(tuple);
        }
        let index = rel.project_index(&positions);
        let mut grouped: std::collections::HashMap<Vec<Term>, Vec<u32>> =
            std::collections::HashMap::new();
        for (i, tuple) in model.tuples.iter().enumerate() {
            let key: Vec<Term> = positions.iter().map(|p| tuple[*p]).collect();
            grouped.entry(key).or_default().push(i as u32);
        }
        prop_assert_eq!(index.len(), grouped.len());
        for (key, rows) in &index {
            let decoded: Vec<Term> = key.iter().map(|&c| dict::decode(c)).collect();
            prop_assert_eq!(Some(rows), grouped.get(&decoded));
        }
    }

    /// `rows_from` yields exactly the model's suffix — the append-only
    /// delta contract the incremental engine relies on.
    #[test]
    fn rows_from_yields_the_model_suffix(
        arity in 1usize..4,
        seq in tuples(3, 50),
        start_pick in 0usize..64,
    ) {
        let mut rel = Relation::new(intern("P"), arity);
        let mut model = Model::default();
        for tuple in &seq {
            let tuple: Vec<Term> = tuple.iter().take(arity).cloned().collect();
            rel.insert(tuple.clone());
            model.insert(tuple);
        }
        let start = start_pick % (model.tuples.len() + 1);
        let suffix: Vec<Vec<Term>> = rel.rows_from(start).collect();
        prop_assert_eq!(&suffix[..], &model.tuples[start..]);
    }

    /// `partition_by` is a true partition that routes by the model's
    /// hash-of-term, shard for shard.
    #[test]
    fn partition_by_matches_model_routing(
        arity in 1usize..4,
        seq in tuples(3, 50),
        col_pick in 0usize..4,
        k in 1usize..5,
    ) {
        let col = col_pick % arity;
        let mut rel = Relation::new(intern("P"), arity);
        let mut model = Model::default();
        for tuple in &seq {
            let tuple: Vec<Term> = tuple.iter().take(arity).cloned().collect();
            rel.insert(tuple.clone());
            model.insert(tuple);
        }
        let shards = rel.partition_by(col, k);
        prop_assert_eq!(shards.len(), k);
        let mut routed: Vec<Vec<Vec<Term>>> = vec![Vec::new(); k];
        for tuple in &model.tuples {
            routed[Relation::shard_of(&tuple[col], k)].push(tuple.clone());
        }
        for (shard, expected) in shards.iter().zip(&routed) {
            let got: Vec<Vec<Term>> = shard.iter().collect();
            prop_assert_eq!(&got, expected);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode∘decode is the identity, and a term's code never changes —
    /// re-encoding after arbitrary other interning returns the first code.
    #[test]
    fn dictionary_roundtrip_and_code_stability(
        terms in proptest::collection::vec(small_term(), 1..40),
        noise in proptest::collection::vec(0u32..1000, 0..40),
    ) {
        let first: Vec<u32> = terms.iter().map(|t| dict::encode(*t)).collect();
        for (term, &code) in terms.iter().zip(&first) {
            prop_assert_eq!(dict::decode(code), *term);
            prop_assert_eq!(dict::lookup(*term), Some(code));
        }
        // Intern unrelated terms in between…
        for n in &noise {
            dict::encode(Term::constant(&format!("dict_noise_{n}")));
        }
        // …and the original codes must be unchanged (append-only dict).
        let again: Vec<u32> = terms.iter().map(|t| dict::encode(*t)).collect();
        prop_assert_eq!(first, again);
        // decode_row decodes a packed row element-wise.
        let codes: Vec<u32> = terms.iter().map(|t| dict::encode(*t)).collect();
        prop_assert_eq!(dict::decode_row(&codes), terms);
    }
}
