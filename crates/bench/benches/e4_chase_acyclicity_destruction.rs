//! E4 — Example 2: chase size and acyclicity destruction under the
//! non-recursive/sticky tgd P(x), P(y) → R(x,y).  Prediction: n² derived
//! atoms and an n-clique in the Gaifman graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sac::prelude::*;

fn bench(c: &mut Criterion) {
    let tgd = sac::gen::example2_tgd();
    let mut group = c.benchmark_group("e4_chase_acyclicity_destruction");
    for n in [4usize, 8, 16] {
        let q = sac::gen::example2_query(n);
        group.bench_with_input(BenchmarkId::new("chase_and_probe", n), &q, |b, q| {
            b.iter(|| {
                let probe =
                    chase_preserves_acyclicity(q, std::slice::from_ref(&tgd), ChaseBudget::large());
                assert!(!probe.output_acyclic);
                probe.clique_lower_bound
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = sac_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
