//! E14 — materialized-view maintenance: incremental refresh vs full
//! recompute on an append-heavy acyclic workload.
//!
//! For each database size, a base random graph is loaded, an acyclic
//! standing query is registered with `Database::materialize_with`
//! (`auto_refresh: false` — the batch-ingestion shape), and a reproducible
//! stream of edge batches is ingested.  After every batch the experiment
//! times (a) the view's incremental refresh — the delta pushed through the
//! cached join tree — and (b) a from-scratch `Database::run` of the same
//! query, i.e. what serving the standing query without a view would cost.
//!
//! **Differential gate:** after every single batch the maintained
//! `ResultSet` is asserted identical to the recomputed one (columns, rows,
//! order) before anything is reported — a perf experiment must not quietly
//! measure wrong answers.
//!
//! The experiment always writes `BENCH_e14.json` at the workspace root and
//! prints the same table; `--json` additionally echoes the JSON to stdout.
//! The headline number is `speedup` at the largest size: total recompute
//! seconds over total incremental-refresh seconds across the stream.

use sac::prelude::*;
use sac_bench::{json_document, json_object, write_workspace_file};
use std::time::Instant;

/// (label, nodes, base edges) — degree stays ~12 so the answer sets scale
/// with the database and the batch keeps its size across the sweep.
const SIZES: [(&str, usize, usize); 3] = [
    ("small", 150, 1_800),
    ("medium", 300, 3_600),
    ("large", 600, 7_200),
];
const BATCHES: usize = 10;
const BATCH_EDGES: usize = 100;

struct ViewCase {
    label: &'static str,
    query: ConjunctiveQuery,
}

fn cases() -> Vec<ViewCase> {
    vec![
        // The headline append-heavy acyclic workload: a large maintained
        // answer set that a recompute re-derives in full every batch.
        ViewCase {
            label: "2path-endpoints",
            query: "q(X, Z) :- E(X, Y), E(Y, Z).".parse().expect("valid query"),
        },
        // Contrast case: a tiny answer set whose delta fan-out is a large
        // fraction of the database — the worst shape for maintenance; its
        // speedup grows with size but stays modest.
        ViewCase {
            label: "hub-3rays",
            query: "q(C) :- E(C, L0), E(C, L1), E(C, L2)."
                .parse()
                .expect("valid query"),
        },
    ]
}

fn main() {
    println!(
        "e14 — view maintenance vs recompute ({BATCHES} batches x {BATCH_EDGES} edges per size):"
    );
    println!(
        "{:>8} {:>18} {:>9} {:>12} {:>14} {:>12} {:>9}",
        "size", "view", "answers", "refresh s", "recompute s", "modes", "speedup"
    );
    let mut rows = Vec::new();
    let mut headline_speedup = 0.0f64;
    for (size_label, nodes, base_edges) in SIZES {
        for case in cases() {
            let (base, stream) =
                sac::gen::streaming_graph_workload(nodes, base_edges, BATCHES, BATCH_EDGES, 77);
            let db = Database::from_instance(base);
            let view = db
                .materialize_with(
                    &case.query,
                    ViewOptions {
                        auto_refresh: false,
                        ..ViewOptions::default()
                    },
                )
                .expect("generated query is valid");
            assert_eq!(
                view.strategy(),
                PlanStrategy::YannakakisDirect,
                "the workload is meant to exercise the incremental rung"
            );
            // Warm the recompute path's plan cache so the comparison is
            // maintenance vs execution, not maintenance vs planning.
            let _ = db.run(&case.query);

            let mut refresh_secs = 0.0f64;
            let mut recompute_secs = 0.0f64;
            let mut incremental = 0usize;
            let mut full = 0usize;
            for batch in &stream {
                for atom in batch {
                    db.insert(atom.clone()).expect("consistent append");
                }
                let start = Instant::now();
                let report = view.refresh();
                refresh_secs += start.elapsed().as_secs_f64();
                match report.mode {
                    RefreshMode::Incremental => incremental += 1,
                    RefreshMode::Full => full += 1,
                    RefreshMode::Fresh => {}
                }
                let start = Instant::now();
                let recomputed = db.run(&case.query);
                recompute_secs += start.elapsed().as_secs_f64();
                // The differential gate: maintained == recomputed, cell for
                // cell, after every batch.
                assert_eq!(
                    view.snapshot(),
                    recomputed,
                    "maintained view drifted from recomputation ({} at {size_label})",
                    case.label
                );
            }
            let speedup = recompute_secs / refresh_secs.max(f64::EPSILON);
            if size_label == "large" && case.label == "2path-endpoints" {
                headline_speedup = speedup;
            }
            println!(
                "{size_label:>8} {:>18} {:>9} {refresh_secs:>12.4} {recompute_secs:>14.4} {:>12} {speedup:>8.1}x",
                case.label,
                view.len(),
                format!("{incremental}i/{full}f"),
            );
            rows.push(json_object(&[
                ("size", format!("\"{size_label}\"")),
                ("view", format!("\"{}\"", case.label)),
                ("nodes", nodes.to_string()),
                ("base_edges", base_edges.to_string()),
                ("batches", BATCHES.to_string()),
                ("batch_edges", BATCH_EDGES.to_string()),
                ("final_answers", view.len().to_string()),
                ("heap_bytes", db.heap_bytes().to_string()),
                ("incremental_refreshes", incremental.to_string()),
                ("full_refreshes", full.to_string()),
                ("refresh_total_secs", format!("{refresh_secs:.6}")),
                ("recompute_total_secs", format!("{recompute_secs:.6}")),
                ("speedup_incremental_vs_recompute", format!("{speedup:.2}")),
            ]));
        }
    }
    let doc = json_document(
        "e14_view_maintenance",
        &[
            ("batches", BATCHES.to_string()),
            ("batch_edges", BATCH_EDGES.to_string()),
            (
                "headline_speedup_large_acyclic",
                format!("{headline_speedup:.2}"),
            ),
            (
                "gate",
                "\"maintained ResultSet asserted identical to recompute after every batch\""
                    .to_owned(),
            ),
        ],
        &rows,
    );
    let path = write_workspace_file("BENCH_e14.json", &doc);
    println!(
        "\nheadline: incremental refresh {headline_speedup:.1}x over full recompute \
         (large acyclic workload)"
    );
    println!("wrote {}", path.display());
    if sac_bench::json_flag() {
        print!("{doc}");
    }
}
