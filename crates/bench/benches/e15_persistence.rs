//! E15 — durability costs: WAL append overhead and recovery time.
//!
//! Two questions, answered with self-timed medians over the same
//! reproducible graph workloads as E14:
//!
//! 1. **What does the append path pay for durability?**  The same edge
//!    stream is inserted into a non-durable `Database`, a durable one with
//!    `SyncMode::Never` (WAL framing + buffered write, no fsync), and a
//!    durable one with `SyncMode::Always` (the default: fsync before every
//!    acknowledge).  Reported as appends/sec and per-append overhead.
//! 2. **What does recovery cost as the log grows?**  A durable database is
//!    killed with N batches in the WAL tail and reopened; `Database::open`
//!    wall time (replay + the end-of-open compacting checkpoint) is
//!    reported per N, plus the post-checkpoint row where the WAL is empty
//!    and recovery is a snapshot load.
//!
//! **Differential gate:** every recovered database is asserted to hold
//! exactly as many atoms as the never-killed writer, before anything is
//! reported.  The experiment always writes `BENCH_e15.json` at the
//! workspace root; `--json` additionally echoes the JSON to stdout.

use sac::prelude::*;
use sac_bench::{json_document, json_object, write_workspace_file};
use std::path::PathBuf;
use std::time::Instant;

const APPEND_EDGES: usize = 600;
const RECOVERY_BATCH_EDGES: usize = 50;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sac-bench-e15-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One reproducible single-edge append stream.
fn append_stream() -> Vec<Atom> {
    let (_, stream) = sac::gen::streaming_graph_workload(120, 200, APPEND_EDGES, 1, 55);
    stream.into_iter().flatten().collect()
}

fn append_overhead(rows: &mut Vec<String>) -> f64 {
    println!(
        "{:>12} {:>12} {:>14} {:>12} {:>11}",
        "append path", "appends", "total s", "appends/s", "µs/append"
    );
    let mut baseline_secs = 0.0f64;
    let mut fsync_per_append = 0.0f64;
    for (label, durable, sync) in [
        ("none", false, SyncMode::Never),
        ("wal-nosync", true, SyncMode::Never),
        ("wal-fsync", true, SyncMode::Always),
    ] {
        let stream = append_stream();
        let dir = scratch_dir(label);
        let db = if durable {
            Database::open_with(
                &dir,
                DurabilityOptions {
                    sync_mode: sync,
                    snapshot_every: 0,
                },
            )
            .expect("create durable database")
        } else {
            Database::from_instance(Instance::new())
        };
        let start = Instant::now();
        for atom in &stream {
            db.insert(atom.clone()).expect("consistent append");
        }
        let secs = start.elapsed().as_secs_f64();
        let per_append_us = secs / stream.len() as f64 * 1e6;
        if label == "none" {
            baseline_secs = secs;
        }
        if label == "wal-fsync" {
            fsync_per_append = per_append_us;
        }
        let metrics = db.metrics();
        println!(
            "{label:>12} {:>12} {secs:>14.4} {:>12.0} {per_append_us:>11.1}",
            stream.len(),
            stream.len() as f64 / secs.max(1e-9),
        );
        rows.push(json_object(&[
            ("experiment", "\"append_overhead\"".to_owned()),
            ("path", format!("\"{label}\"")),
            ("appends", stream.len().to_string()),
            ("total_secs", format!("{secs:.6}")),
            ("per_append_micros", format!("{per_append_us:.2}")),
            (
                "overhead_vs_none",
                format!("{:.2}", secs / baseline_secs.max(1e-9)),
            ),
            ("wal_appends", metrics.wal_appends.to_string()),
            ("wal_bytes", metrics.wal_bytes.to_string()),
        ]));
        std::fs::remove_dir_all(&dir).ok();
    }
    fsync_per_append
}

fn recovery_time(rows: &mut Vec<String>) -> f64 {
    println!(
        "\n{:>16} {:>9} {:>9} {:>12} {:>10}",
        "wal tail", "batches", "atoms", "recover s", "replayed"
    );
    let mut longest_recover = 0.0f64;
    for batches in [8usize, 32, 128] {
        let dir = scratch_dir(&format!("recover-{batches}"));
        let (base, stream) =
            sac::gen::streaming_graph_workload(200, 800, batches, RECOVERY_BATCH_EDGES, 91);
        let expected = {
            let db = Database::open_with(
                &dir,
                DurabilityOptions {
                    sync_mode: SyncMode::Never,
                    snapshot_every: 0,
                },
            )
            .expect("create durable database");
            db.extend_from(&base).expect("load base");
            db.checkpoint().expect("baseline snapshot");
            for batch in &stream {
                let mut delta = Instance::new();
                for atom in batch {
                    let _ = delta.insert(atom.clone());
                }
                // One extend_from = one WAL frame, so `batches` frames sit
                // in the tail when the process "dies".
                db.extend_from(&delta).expect("durable append");
            }
            db.len()
        };

        let start = Instant::now();
        let db = Database::open(&dir).expect("recover");
        let secs = start.elapsed().as_secs_f64();
        longest_recover = longest_recover.max(secs);
        let report = db.recovery_report().expect("opened from disk").clone();
        // The differential gate: recovery restored every acknowledged atom.
        assert_eq!(db.len(), expected, "recovery lost or invented atoms");
        println!(
            "{:>16} {batches:>9} {:>9} {secs:>12.4} {:>10}",
            format!("{} frames", report.replayed_batches),
            db.len(),
            report.replayed_batches,
        );
        rows.push(json_object(&[
            ("experiment", "\"recovery_time\"".to_owned()),
            ("wal_batches", batches.to_string()),
            ("batch_edges", RECOVERY_BATCH_EDGES.to_string()),
            ("atoms", db.len().to_string()),
            ("replayed_batches", report.replayed_batches.to_string()),
            ("replayed_rows", report.replayed_rows.to_string()),
            ("snapshot_atoms", report.snapshot_atoms.to_string()),
            ("recover_secs", format!("{secs:.6}")),
        ]));

        // The post-checkpoint contrast: the reopen above already compacted
        // the WAL, so a second reopen replays nothing.
        drop(db);
        let start = Instant::now();
        let db = Database::open(&dir).expect("recover from snapshot");
        let secs = start.elapsed().as_secs_f64();
        let report = db.recovery_report().expect("opened from disk").clone();
        assert_eq!(db.len(), expected, "snapshot-only recovery drifted");
        assert_eq!(report.replayed_batches, 0, "reopen left WAL frames behind");
        println!(
            "{:>16} {batches:>9} {:>9} {secs:>12.4} {:>10}",
            "post-checkpoint",
            db.len(),
            report.replayed_batches,
        );
        rows.push(json_object(&[
            ("experiment", "\"recovery_time\"".to_owned()),
            ("wal_batches", "0".to_owned()),
            ("batch_edges", RECOVERY_BATCH_EDGES.to_string()),
            ("atoms", db.len().to_string()),
            ("replayed_batches", "0".to_owned()),
            ("replayed_rows", "0".to_owned()),
            ("snapshot_atoms", report.snapshot_atoms.to_string()),
            ("recover_secs", format!("{secs:.6}")),
        ]));
        std::fs::remove_dir_all(&dir).ok();
    }
    longest_recover
}

fn main() {
    println!("e15 — durability: WAL append overhead and recovery time\n");
    let mut rows = Vec::new();
    let fsync_us = append_overhead(&mut rows);
    let longest = recovery_time(&mut rows);
    let doc = json_document(
        "e15_persistence",
        &[
            ("append_edges", APPEND_EDGES.to_string()),
            ("fsync_per_append_micros", format!("{fsync_us:.2}")),
            ("longest_recover_secs", format!("{longest:.6}")),
            (
                "gate",
                "\"every recovered database asserted atom-identical to the writer\"".to_owned(),
            ),
        ],
        &rows,
    );
    let path = write_workspace_file("BENCH_e15.json", &doc);
    println!(
        "\nheadline: fsync'd append {fsync_us:.0} µs; longest recovery {longest:.3} s \
         (128-frame WAL tail)"
    );
    println!("wrote {}", path.display());
    if sac_bench::json_flag() {
        print!("{doc}");
    }
}
