//! E9 — Section 8.2: computing acyclic approximations of cyclic queries and
//! evaluating them ("quick answers") vs exact evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sac::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_acyclic_approximation");
    for n in [3usize, 4, 5] {
        let q = sac::gen::cycle_query(n);
        group.bench_with_input(BenchmarkId::new("compute_approximation", n), &q, |b, q| {
            b.iter(|| {
                acyclic_approximations(q, &[], ChaseBudget::small())
                    .maximal
                    .len()
            })
        });
    }
    let q = sac::gen::cycle_query(3);
    let report = acyclic_approximations(&q, &[], ChaseBudget::small());
    let db = sac::gen::random_graph_database(150, 700, 3);
    group.bench_function("exact_triangle_eval", |b| {
        b.iter(|| evaluate_boolean(&q, &db))
    });
    group.bench_function("quick_approx_eval", |b| {
        b.iter(|| report.maximal.iter().any(|a| evaluate_boolean(a, &db)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = sac_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
