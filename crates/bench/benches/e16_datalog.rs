//! E16 — recursive queries: semi-naive vs naive fixpoints, and what the
//! replayable provenance costs.
//!
//! Three questions, answered with self-timed medians over the reproducible
//! recursive workloads of `sac_gen::datalog`:
//!
//! 1. **What does semi-naive evaluation buy?**  Each workload runs through
//!    the engine's delta-driven evaluator (`Database::run_datalog`) and
//!    through the independent naive bottom-up reference
//!    (`sac_datalog::naive::naive_fixpoint`), which re-joins the full
//!    instance every round.  Reported as a speedup per workload and size.
//! 2. **What does provenance cost at derivation time?**  Every engine run
//!    is timed twice, with certificates on (the default) and off.
//! 3. **What does checking cost?**  The engine-independent replay
//!    (`sac_datalog::check::check_certificate`) is timed against the same
//!    certificate, giving µs/derived-fact for the fail-closed audit.
//!
//! **Differential gate:** before anything is reported, every engine run is
//! asserted to derive exactly the naive reference's fact set, and every
//! certificate must replay green.  The experiment writes `BENCH_e16.json`
//! at the workspace root; `--json` additionally echoes the JSON to stdout.
//! With `--smoke` (the CI mode) only the smallest size per family runs and
//! the document goes to a temp-dir file, so the tree stays clean.

use sac::prelude::*;
use sac_bench::{json_document, json_object, write_workspace_file};
use std::collections::BTreeSet;

/// One recursive workload: a program and the base instance to saturate.
fn workloads(smoke: bool) -> Vec<(String, DatalogProgram, Instance)> {
    let mut out = Vec::new();
    let reach_sizes: &[usize] = if smoke { &[30] } else { &[30, 90, 180] };
    for &nodes in reach_sizes {
        out.push((
            format!("reachability-n{nodes}"),
            sac::gen::reachability_program(),
            sac::gen::random_graph_database(nodes, nodes * 2, 11),
        ));
    }
    let sg_gens: &[usize] = if smoke { &[4] } else { &[4, 6] };
    for &generations in sg_gens {
        out.push((
            format!("same-generation-g{generations}"),
            sac::gen::same_generation_program(),
            sac::gen::parent_tree_database(generations, 2),
        ));
    }
    let onto_sizes: &[usize] = if smoke { &[20] } else { &[20, 60] };
    for &classes in onto_sizes {
        out.push((
            format!("ontology-c{classes}"),
            sac::gen::ontology_closure_program(),
            sac::gen::ontology_database(classes, classes * 3, 5),
        ));
    }
    out
}

fn main() {
    let smoke = sac_bench::flag("--smoke");
    println!("e16 — recursive queries: semi-naive vs naive, provenance costs\n");
    println!(
        "{:>22} {:>8} {:>8} {:>11} {:>11} {:>9} {:>11} {:>11}",
        "workload", "base", "derived", "naive s", "semi s", "speedup", "cert ovhd", "µs/check"
    );

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for (name, program, base) in workloads(smoke) {
        // The naive reference: full re-join every round, and the oracle the
        // engine must reproduce exactly.
        let (fixpoint, reference_cert) =
            sac::datalog::naive::naive_fixpoint(&program, &base).unwrap();
        let reference: BTreeSet<Atom> = fixpoint.atoms().filter(|a| !base.contains(a)).collect();
        let naive_secs = sac_bench::median_secs(3, || {
            std::hint::black_box(
                sac::datalog::naive::naive_fixpoint(&program, &base)
                    .unwrap()
                    .0
                    .len(),
            );
        });

        let db = Database::from_instance(base.clone());
        let run = db.run_datalog(&program).unwrap();
        let derived: BTreeSet<Atom> = run.derived.iter().cloned().collect();
        // The differential gate: no row is reported unless the engine's
        // fixpoint is byte-identical to the reference and both certificates
        // replay green.
        assert_eq!(
            derived, reference,
            "{name}: semi-naive disagrees with naive"
        );
        let certificate = run.certificate.as_ref().unwrap();
        sac::datalog::check::check_certificate(&program, &base, certificate).unwrap();
        sac::datalog::check::check_certificate(&program, &base, &reference_cert).unwrap();

        let semi_secs = sac_bench::median_secs(3, || {
            std::hint::black_box(db.run_datalog(&program).unwrap().derived.len());
        });
        let nocert_secs = sac_bench::median_secs(3, || {
            let run = db
                .run_datalog_with(
                    &program,
                    DatalogOptions {
                        certificate: false,
                        ..DatalogOptions::default()
                    },
                )
                .unwrap();
            std::hint::black_box(run.derived.len());
        });
        let check_secs = sac_bench::median_secs(3, || {
            sac::datalog::check::check_certificate(&program, &base, certificate).unwrap();
        });

        let speedup = naive_secs / semi_secs.max(1e-9);
        let cert_overhead = semi_secs / nocert_secs.max(1e-9);
        let check_us_per_fact = if run.derived.is_empty() {
            0.0
        } else {
            check_secs / run.derived.len() as f64 * 1e6
        };
        speedups.push(speedup);
        println!(
            "{name:>22} {:>8} {:>8} {naive_secs:>11.5} {semi_secs:>11.5} {speedup:>9.2} \
             {cert_overhead:>11.2} {check_us_per_fact:>11.2}",
            base.len(),
            run.derived.len(),
        );
        rows.push(json_object(&[
            ("workload", format!("\"{name}\"")),
            ("base_atoms", base.len().to_string()),
            ("derived_facts", run.derived.len().to_string()),
            ("iterations", run.stats.iterations.to_string()),
            ("strata", run.stats.strata.to_string()),
            ("naive_secs", format!("{naive_secs:.6}")),
            ("semi_naive_secs", format!("{semi_secs:.6}")),
            ("semi_naive_no_cert_secs", format!("{nocert_secs:.6}")),
            ("certificate_steps", certificate.len().to_string()),
            ("check_secs", format!("{check_secs:.6}")),
            ("speedup_vs_naive", format!("{speedup:.3}")),
            ("certificate_overhead", format!("{cert_overhead:.3}")),
            ("check_micros_per_fact", format!("{check_us_per_fact:.3}")),
        ]));
    }

    let best = speedups.iter().cloned().fold(0.0f64, f64::max);
    let doc = json_document(
        "e16_datalog",
        &[
            ("smoke", smoke.to_string()),
            ("best_speedup_vs_naive", format!("{best:.3}")),
            (
                "gate",
                "\"every run asserted fact-identical to the naive reference; every \
                 certificate replayed through the engine-independent checker\""
                    .to_owned(),
            ),
        ],
        &rows,
    );
    let path = if smoke {
        let path = std::env::temp_dir().join("BENCH_e16_smoke.json");
        std::fs::write(&path, &doc).expect("write smoke report");
        eprintln!("bench smoke ok: all workloads agree with the naive reference");
        path
    } else {
        write_workspace_file("BENCH_e16.json", &doc)
    };
    println!("\nheadline: best semi-naive speedup over naive {best:.2}x");
    println!("wrote {}", path.display());
    if sac_bench::json_flag() {
        print!("{doc}");
    }
}
