//! E2 — Figure 1: cost and outcome of the sticky marking procedure on the
//! paper's sets and on growing random inclusion-dependency sets (always
//! sticky).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sac::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_sticky_marking");
    let sticky = sac::gen::figure1_sticky();
    let non_sticky = sac::gen::figure1_non_sticky();
    assert!(is_sticky(&sticky) && !is_sticky(&non_sticky));

    group.bench_function("figure1_sticky_set", |b| b.iter(|| is_sticky(&sticky)));
    group.bench_function("figure1_non_sticky_set", |b| {
        b.iter(|| is_sticky(&non_sticky))
    });
    for n in [10usize, 40, 160] {
        let tgds = sac::gen::random_inclusion_dependencies(n, 5, 7);
        group.bench_with_input(
            BenchmarkId::new("random_linear_set", n),
            &tgds,
            |b, tgds| b.iter(|| classify_tgds(tgds)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = sac_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
