//! E5 — Example 3: the UCQ rewriting height under the sticky family grows as
//! 2^n with the arity parameter n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sac::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_sticky_rewriting_height");
    for n in [2usize, 3, 4] {
        let (tgds, q) = sac::gen::example3_sticky_family(n);
        group.bench_with_input(BenchmarkId::new("rewrite", n), &n, |b, _| {
            b.iter(|| {
                let rw = rewrite(&q, &tgds, RewriteBudget::large());
                assert!(rw.height() >= 1 << n);
                rw.height()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = sac_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
