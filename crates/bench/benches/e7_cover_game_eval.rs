//! E7 — Theorem 25: Boolean evaluation of the semantically acyclic Example 1
//! query via the existential 1-cover game vs naive evaluation vs
//! rewrite-then-Yannakakis, as the database grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sac::prelude::*;

fn bench(c: &mut Criterion) {
    let q = ConjunctiveQuery::boolean(sac::gen::example1_triangle().body).unwrap();
    let tgds = vec![sac::gen::collector_tgd()];
    let witness = semantic_acyclicity_under_tgds(&q, &tgds, SemAcConfig::default())
        .witness()
        .expect("witness")
        .clone();

    let mut group = c.benchmark_group("e7_cover_game_eval");
    for customers in [10usize, 30, 90] {
        let db = sac::gen::music_database(customers, customers, 10);
        group.bench_with_input(BenchmarkId::new("cover_game", customers), &db, |b, db| {
            b.iter(|| cover_game_evaluate(&q, db).len())
        });
        group.bench_with_input(BenchmarkId::new("naive", customers), &db, |b, db| {
            b.iter(|| evaluate_boolean(&q, db))
        });
        group.bench_with_input(
            BenchmarkId::new("yannakakis_witness", customers),
            &db,
            |b, db| b.iter(|| yannakakis_boolean(&witness, db).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = sac_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
