//! E1 — Example 1: evaluating the cyclic triangle query naively vs the
//! acyclic reformulation found by the decider (Yannakakis), as the database
//! grows.  Paper prediction: the reformulation scales linearly in |D|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sac::prelude::*;

fn bench(c: &mut Criterion) {
    let q = sac::gen::example1_triangle();
    let tgds = vec![sac::gen::collector_tgd()];
    let witness = semantic_acyclicity_under_tgds(&q, &tgds, SemAcConfig::default())
        .witness()
        .expect("Example 1 witness")
        .clone();

    let mut group = c.benchmark_group("e1_example1_reformulation");
    for customers in [50usize, 200, 800] {
        let db = sac::gen::music_database(customers, customers * 2, 20);
        group.bench_with_input(BenchmarkId::new("naive_cyclic", customers), &db, |b, db| {
            b.iter(|| evaluate(&q, db).len())
        });
        group.bench_with_input(
            BenchmarkId::new("yannakakis_witness", customers),
            &db,
            |b, db| b.iter(|| yannakakis_evaluate(&witness, db).unwrap().len()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = sac_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
