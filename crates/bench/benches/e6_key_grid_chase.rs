//! E6 — Examples 4/5 (Figure 4): keys over ≥3-ary predicates destroy
//! acyclicity; the egd chase of the key-ring family closes a ring of growing
//! size, while binary keys (Proposition 22) preserve acyclicity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sac::prelude::*;

fn bench(c: &mut Criterion) {
    let key = FunctionalDependency::key("R", 2, [1]).unwrap().to_egds();
    let binary_key = FunctionalDependency::key("E", 2, [1]).unwrap().to_egds();
    let mut group = c.benchmark_group("e6_key_grid_chase");
    for n in [4usize, 8, 16] {
        let ring = sac::gen::key_ring_query(n);
        group.bench_with_input(BenchmarkId::new("ring_key_chase", n), &ring, |b, q| {
            b.iter(|| {
                let probe = sac::chase::probe::egd_chase_preserves_acyclicity(q, &key);
                assert!(!probe.output_acyclic);
                probe.output_atoms
            })
        });
        let star = sac::gen::star_query(n);
        group.bench_with_input(
            BenchmarkId::new("star_binary_key_chase", n),
            &star,
            |b, q| {
                b.iter(|| {
                    let probe = sac::chase::probe::egd_chase_preserves_acyclicity(q, &binary_key);
                    assert!(probe.preserved());
                    probe.output_atoms
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = sac_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
