//! E10 — Theorem 7 (PCP reduction construction + chase verification) and the
//! UCQ-rewriting-based deciders for non-recursive/sticky sets (Theorems 18
//! and 20).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sac::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_pcp_and_ucq_deciders");

    let instance = PcpInstance::new(vec!["a", "ab"], vec!["aa", "b"])
        .unwrap()
        .normalize_even();
    let solution = instance.find_solution(3).unwrap();
    group.bench_function("pcp_build_and_verify_solution", |b| {
        b.iter(|| {
            let (q, tgds) = sac::core::build_pcp_reduction(&instance);
            let path = solution_path_query(&instance, &solution).unwrap();
            equivalent_under_tgds(&q, &path, &tgds, ChaseBudget::new(5_000, 100_000)).holds()
        })
    });

    // Non-recursive / sticky deciders on the HR ontology with growing query
    // chains.
    let tgds = vec![
        parse_tgd("Employee(X, D) -> Dept(D).").unwrap(),
        parse_tgd("Dept(D) -> Manages(M, D).").unwrap(),
        parse_tgd("Manages(M, D), Dept(D) -> WorksWith(M, D).").unwrap(),
    ];
    for n in [2usize, 4, 6] {
        let body: Vec<String> = (0..n)
            .map(|i| format!("Employee(E{i}, D{i}), Dept(D{i})"))
            .collect();
        let q = parse_query(&format!("q() :- {}.", body.join(", "))).unwrap();
        group.bench_with_input(BenchmarkId::new("semac_nonrecursive", n), &q, |b, q| {
            b.iter(|| semantic_acyclicity_under_tgds(q, &tgds, SemAcConfig::default()).is_acyclic())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = sac_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
