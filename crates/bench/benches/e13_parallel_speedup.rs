//! E13 — parallel partitioned execution: queries/sec per worker-pool width.
//!
//! One mixed workload (acyclic star and path → sharded Yannakakis match
//! sets, a cyclic clique → sharded fallback search, the Example 1 triangle
//! under its tgd → witness Yannakakis) runs through `Database::run_batch`
//! with `parallelism` ∈ {1, 2, 4, 8}.  Results are asserted identical to
//! the serial batch before anything is timed — a perf experiment must not
//! quietly measure wrong answers.
//!
//! The experiment always writes `BENCH_e13.json` at the workspace root
//! (queries/sec per pool width, plus the morsel/steal/queue-wait metrics
//! of the persistent pool) and prints the same table; `--json` additionally
//! echoes the JSON to stdout.
//!
//! Every row records `available_cores` so a reader can tell a genuine
//! scaling regression from a 1-core container where speedup *cannot* show.
//! `--smoke` (the CI merge gate) runs a reduced sweep to a temp-dir report
//! and exits non-zero on a violated gate:
//!
//! - **always**: every parallelism level must return the serial answers —
//!   correctness does not depend on the core count;
//! - **only when `available_cores >= 2`**: batch `speedup_vs_serial >= 1.0`
//!   at parallelism 2 and 4 — on a 1-core host the pool can only add
//!   scheduling overhead, and gating wall clock there normalizes a red
//!   benchmark nobody can act on.

use sac::prelude::*;
use sac_bench::{json_document, json_object, median_secs, write_workspace_file};

const PARALLELISM_LEVELS: [usize; 4] = [1, 2, 4, 8];

/// Sweep sizes: `(batch repeat, timing samples, data scale)`.  Smoke keeps
/// the same query shapes but shrinks the data and sampling so the gate
/// runs in seconds.
fn sweep(smoke: bool) -> (usize, usize, usize) {
    if smoke {
        (4, 3, 100)
    } else {
        (12, 5, 300)
    }
}

fn build_data(scale: usize) -> Instance {
    // At full scale the scanned relations clear the default
    // `min_parallel_rows` morsel granule (512): the benchmark measures the
    // production configuration, not a forced-parallel small-data regime.
    let mut data = sac::gen::music_database(scale, scale * 2, 10);
    data.extend_from(&sac::gen::random_graph_database(scale, scale * 7, 7))
        .expect("disjoint schemas merge cleanly");
    data
}

fn workload(batch_repeat: usize) -> Vec<ConjunctiveQuery> {
    let shapes = [
        sac::gen::star_query(3),
        sac::gen::path_query(3),
        sac::gen::clique_query(3),
        sac::gen::example1_triangle(),
    ];
    (0..batch_repeat).flat_map(|_| shapes.clone()).collect()
}

fn main() {
    let smoke = sac_bench::flag("--smoke");
    let (batch_repeat, samples, scale) = sweep(smoke);
    let data = build_data(scale);
    let tgds = vec![sac::gen::collector_tgd()];
    let queries = workload(batch_repeat);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Correctness gate: every parallelism level returns the serial batch.
    let serial = Database::from_instance(data.clone()).with_tgds(tgds.clone());
    let expected = serial.run_batch(&queries);

    // Axis 1: batch fan-out — one morsel per query on the persistent pool,
    // inner runs serial (the thread budget is spent once, see
    // `Database::run_batch`).
    println!(
        "e13 axis 1 — batch fan-out ({} queries/batch, {cores} core(s) available):",
        queries.len()
    );
    println!(
        "{:>12} {:>14} {:>10} {:>8} {:>9} {:>8} {:>12}",
        "parallelism", "queries/sec", "speedup", "pool", "morsels", "stolen", "queue-wait"
    );
    let mut rows = Vec::new();
    let mut batch_speedups: Vec<(usize, f64)> = Vec::new();
    let mut single = 0.0f64;
    for parallelism in PARALLELISM_LEVELS {
        let db = Database::from_instance(data.clone())
            .with_tgds(tgds.clone())
            .with_parallelism(parallelism);
        assert_eq!(
            expected,
            db.run_batch(&queries),
            "parallelism {parallelism} drifted from the serial answers"
        );
        let secs = median_secs(samples, || {
            std::hint::black_box(db.run_batch(&queries).len());
        });
        let rate = queries.len() as f64 / secs;
        if parallelism == 1 {
            single = rate;
        }
        let speedup = rate / single;
        batch_speedups.push((parallelism, speedup));
        // Metrics for exactly one batch (median_secs accumulates warm-up +
        // samples, which would inflate the per-batch counters 6x).
        db.reset_metrics();
        std::hint::black_box(db.run_batch(&queries).len());
        let m = db.metrics();
        println!(
            "{parallelism:>12} {rate:>14.0} {:>9.2}x {:>8} {:>9} {:>8} {:>10}us",
            speedup,
            m.threads_spawned,
            m.morsels_dispatched,
            m.morsel_steals,
            m.pool_queue_wait_ns / 1_000,
        );
        rows.push(json_object(&[
            ("axis", "\"batch\"".to_owned()),
            ("parallelism", parallelism.to_string()),
            ("available_cores", cores.to_string()),
            ("queries", queries.len().to_string()),
            ("median_batch_secs", format!("{secs:.6}")),
            ("queries_per_sec", format!("{rate:.1}")),
            ("speedup_vs_serial", format!("{speedup:.3}")),
            ("threads_spawned", m.threads_spawned.to_string()),
            ("morsels_dispatched", m.morsels_dispatched.to_string()),
            ("morsel_steals", m.morsel_steals.to_string()),
            (
                "pool_queue_wait_micros",
                (m.pool_queue_wait_ns / 1_000).to_string(),
            ),
        ]));
    }

    // Axis 2: morsel-driven parallelism inside single runs — match sets,
    // semijoin chunks and fallback roots split across cached hash shards,
    // one morsel per shard.
    let singles = [sac::gen::star_query(3), sac::gen::clique_query(3)];
    println!("\ne13 axis 2 — sharded single runs:");
    println!(
        "{:>24} {:>12} {:>12} {:>10} {:>12} {:>9} {:>8}",
        "query", "parallelism", "runs/sec", "speedup", "shard_tasks", "morsels", "stolen"
    );
    for query in &singles {
        let reference = serial.run(query);
        let mut single = 0.0f64;
        for parallelism in PARALLELISM_LEVELS {
            let db = Database::from_instance(data.clone())
                .with_tgds(tgds.clone())
                .with_parallelism(parallelism);
            assert_eq!(
                reference,
                db.run(query),
                "parallelism {parallelism} drifted from the serial answers on {query}"
            );
            // Shard decompositions are built once, during the warm-up run
            // above; capture the count before the resets below.
            let shard_sets_built = db.metrics().shard_sets_built;
            let secs = median_secs(samples, || {
                std::hint::black_box(db.run(query).len());
            });
            let rate = 1.0 / secs;
            if parallelism == 1 {
                single = rate;
            }
            // Metrics for exactly one run (see the batch axis above), plus a
            // traced run: the per-phase timers say *where* the time goes at
            // each pool width, and the pool's queue-wait figure separates
            // "morsels waited for a worker" from "the work itself was slow"
            // — the diagnosis for any scaling plateau.
            db.reset_metrics();
            std::hint::black_box(db.run(query).len());
            let m = db.metrics();
            let (_, trace) = db.run_traced(query);
            let (dominant, dominant_ns) = trace.phases.dominant().unwrap_or((Phase::Plan, 0));
            let phase_fields: Vec<(&str, String)> = Phase::ALL
                .iter()
                .map(|p| (p.as_str(), (trace.phases.get(*p) / 1_000).to_string()))
                .collect();
            let label = format!("{}-atom body", query.size());
            println!(
                "{label:>24} {parallelism:>12} {rate:>12.0} {:>9.2}x {:>12} {:>9} {:>8}  dominant: {dominant} ({}%), queue-wait {}us",
                rate / single,
                m.shard_tasks,
                m.morsels_dispatched,
                m.morsel_steals,
                100 * dominant_ns / trace.total_ns.max(1),
                m.pool_queue_wait_ns / 1_000,
            );
            let mut fields: Vec<(&str, String)> = vec![
                ("axis", "\"single\"".to_owned()),
                ("query_atoms", query.size().to_string()),
                ("parallelism", parallelism.to_string()),
                ("available_cores", cores.to_string()),
                ("median_run_secs", format!("{secs:.6}")),
                ("runs_per_sec", format!("{rate:.1}")),
                ("speedup_vs_serial", format!("{:.3}", rate / single)),
                ("shard_sets_built", shard_sets_built.to_string()),
                ("shard_tasks", m.shard_tasks.to_string()),
                ("threads_spawned", m.threads_spawned.to_string()),
                ("morsels_dispatched", m.morsels_dispatched.to_string()),
                ("morsel_steals", m.morsel_steals.to_string()),
                ("dominant_phase", format!("\"{dominant}\"")),
                (
                    "pool_queue_wait_micros",
                    (m.pool_queue_wait_ns / 1_000).to_string(),
                ),
            ];
            for (phase, micros) in &phase_fields {
                fields.push((phase, micros.to_string()));
            }
            rows.push(json_object(&fields));
        }
    }

    let doc = json_document(
        "e13_parallel_speedup",
        &[
            ("available_cores", cores.to_string()),
            ("batch_queries", queries.len().to_string()),
            ("samples", samples.to_string()),
            ("smoke", smoke.to_string()),
        ],
        &rows,
    );
    let path = if smoke {
        // Smoke runs are a pass/fail gate; their report is a scratch
        // artifact and must not dirty the workspace tree.
        let path = std::env::temp_dir().join("BENCH_e13_smoke.json");
        std::fs::write(&path, &doc)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        path
    } else {
        write_workspace_file("BENCH_e13.json", &doc)
    };
    println!("\nwrote {}", path.display());
    if sac_bench::json_flag() {
        print!("{doc}");
    }

    if smoke {
        // Correctness was already gated above (the assert_eq on every
        // level runs unconditionally).  Wall-clock speedup is only a
        // meaningful gate when the host can actually run morsels
        // concurrently.
        if cores >= 2 {
            let mut violations = Vec::new();
            for &(parallelism, speedup) in &batch_speedups {
                if (parallelism == 2 || parallelism == 4) && speedup < 1.0 {
                    violations.push(format!(
                        "parallelism {parallelism}: speedup_vs_serial {speedup:.2} < 1.0"
                    ));
                }
            }
            if !violations.is_empty() {
                eprintln!(
                    "bench smoke FAILED on a {cores}-core host: {}",
                    violations.join("; ")
                );
                std::process::exit(1);
            }
            eprintln!("bench smoke ok: batch speedups {batch_speedups:?} on {cores} core(s)");
        } else {
            eprintln!(
                "bench smoke ok (correctness only): 1 core available, wall-clock speedup \
                 gates skipped — parallel answers matched serial at every level"
            );
        }
    } else if cores == 1 {
        println!(
            "(1-core host: validate the fan-out via morsels_dispatched/threads_spawned, not wall clock)"
        );
    }
}
