//! E13 — parallel partitioned execution: queries/sec per worker-pool width.
//!
//! One mixed workload (acyclic star and path → sharded Yannakakis match
//! sets, a cyclic clique → sharded fallback search, the Example 1 triangle
//! under its tgd → witness Yannakakis) runs through `Database::run_batch`
//! with `parallelism` ∈ {1, 2, 4, 8}.  Results are asserted identical to
//! the serial batch before anything is timed — a perf experiment must not
//! quietly measure wrong answers.
//!
//! The experiment always writes `BENCH_e13.json` at the workspace root
//! (queries/sec per thread count, plus the shard/thread metrics) and prints
//! the same table; `--json` additionally echoes the JSON to stdout.
//!
//! On the 1-core CI container wall-clock speedup cannot show — scaling is
//! validated there by the recorded `shard_tasks` / `threads_spawned`
//! counts (the fan-out happened) rather than by elapsed time.

use sac::prelude::*;
use sac_bench::{json_document, json_object, median_secs, write_workspace_file};

const PARALLELISM_LEVELS: [usize; 4] = [1, 2, 4, 8];
const BATCH_REPEAT: usize = 12;
const SAMPLES: usize = 5;

fn build_data() -> Instance {
    // Sized so the scanned relations clear the default `min_parallel_rows`
    // gate (512): the benchmark measures the production configuration, not
    // a forced-parallel small-data regime.
    let mut data = sac::gen::music_database(300, 600, 10);
    data.extend_from(&sac::gen::random_graph_database(300, 2000, 7))
        .expect("disjoint schemas merge cleanly");
    data
}

fn workload() -> Vec<ConjunctiveQuery> {
    let shapes = [
        sac::gen::star_query(3),
        sac::gen::path_query(3),
        sac::gen::clique_query(3),
        sac::gen::example1_triangle(),
    ];
    (0..BATCH_REPEAT).flat_map(|_| shapes.clone()).collect()
}

fn main() {
    let data = build_data();
    let tgds = vec![sac::gen::collector_tgd()];
    let queries = workload();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Correctness gate: every parallelism level returns the serial batch.
    let serial = Database::from_instance(data.clone()).with_tgds(tgds.clone());
    let expected = serial.run_batch(&queries);

    // Axis 1: batch fan-out — one worker per query, inner runs serial (the
    // thread budget is spent once, see `Database::run_batch`).
    println!(
        "e13 axis 1 — batch fan-out ({} queries/batch, {cores} core(s) available):",
        queries.len()
    );
    println!(
        "{:>12} {:>14} {:>10} {:>12}",
        "parallelism", "queries/sec", "speedup", "threads"
    );
    let mut rows = Vec::new();
    let mut single = 0.0f64;
    for parallelism in PARALLELISM_LEVELS {
        let db = Database::from_instance(data.clone())
            .with_tgds(tgds.clone())
            .with_parallelism(parallelism);
        assert_eq!(
            expected,
            db.run_batch(&queries),
            "parallelism {parallelism} drifted from the serial answers"
        );
        let secs = median_secs(SAMPLES, || {
            std::hint::black_box(db.run_batch(&queries).len());
        });
        let rate = queries.len() as f64 / secs;
        if parallelism == 1 {
            single = rate;
        }
        // Metrics for exactly one batch (median_secs accumulates warm-up +
        // samples, which would inflate the per-batch counters 6x).
        db.reset_metrics();
        std::hint::black_box(db.run_batch(&queries).len());
        let m = db.metrics();
        println!(
            "{parallelism:>12} {rate:>14.0} {:>9.2}x {:>12}",
            rate / single,
            m.threads_spawned,
        );
        rows.push(json_object(&[
            ("axis", "\"batch\"".to_owned()),
            ("parallelism", parallelism.to_string()),
            ("queries", queries.len().to_string()),
            ("median_batch_secs", format!("{secs:.6}")),
            ("queries_per_sec", format!("{rate:.1}")),
            ("speedup_vs_serial", format!("{:.3}", rate / single)),
            ("threads_spawned", m.threads_spawned.to_string()),
        ]));
    }

    // Axis 2: per-shard parallelism inside single runs — match sets,
    // semijoin chunks and fallback roots split across cached hash shards.
    let singles = [sac::gen::star_query(3), sac::gen::clique_query(3)];
    println!("\ne13 axis 2 — sharded single runs:");
    println!(
        "{:>24} {:>12} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "query", "parallelism", "runs/sec", "speedup", "shard_sets", "shard_tasks", "threads"
    );
    for query in &singles {
        let reference = serial.run(query);
        let mut single = 0.0f64;
        for parallelism in PARALLELISM_LEVELS {
            let db = Database::from_instance(data.clone())
                .with_tgds(tgds.clone())
                .with_parallelism(parallelism);
            assert_eq!(
                reference,
                db.run(query),
                "parallelism {parallelism} drifted from the serial answers on {query}"
            );
            // Shard decompositions are built once, during the warm-up run
            // above; capture the count before the resets below.
            let shard_sets_built = db.metrics().shard_sets_built;
            let secs = median_secs(SAMPLES, || {
                std::hint::black_box(db.run(query).len());
            });
            let rate = 1.0 / secs;
            if parallelism == 1 {
                single = rate;
            }
            // Metrics for exactly one run (see the batch axis above), plus a
            // traced run: the per-phase timers say *where* the time goes at
            // each pool width — the diagnosis for any scaling plateau.
            db.reset_metrics();
            std::hint::black_box(db.run(query).len());
            let m = db.metrics();
            let (_, trace) = db.run_traced(query);
            let (dominant, dominant_ns) = trace.phases.dominant().unwrap_or((Phase::Plan, 0));
            let phase_fields: Vec<(&str, String)> = Phase::ALL
                .iter()
                .map(|p| (p.as_str(), (trace.phases.get(*p) / 1_000).to_string()))
                .collect();
            let label = format!("{}-atom body", query.size());
            println!(
                "{label:>24} {parallelism:>12} {rate:>12.0} {:>9.2}x {shard_sets_built:>12} {:>12} {:>12}  dominant: {dominant} ({}%)",
                rate / single,
                m.shard_tasks,
                m.threads_spawned,
                100 * dominant_ns / trace.total_ns.max(1),
            );
            let mut fields: Vec<(&str, String)> = vec![
                ("axis", "\"single\"".to_owned()),
                ("query_atoms", query.size().to_string()),
                ("parallelism", parallelism.to_string()),
                ("median_run_secs", format!("{secs:.6}")),
                ("runs_per_sec", format!("{rate:.1}")),
                ("speedup_vs_serial", format!("{:.3}", rate / single)),
                ("shard_sets_built", shard_sets_built.to_string()),
                ("shard_tasks", m.shard_tasks.to_string()),
                ("threads_spawned", m.threads_spawned.to_string()),
                ("dominant_phase", format!("\"{dominant}\"")),
            ];
            for (phase, micros) in &phase_fields {
                fields.push((phase, micros.to_string()));
            }
            rows.push(json_object(&fields));
        }
    }

    let doc = json_document(
        "e13_parallel_speedup",
        &[
            ("available_cores", cores.to_string()),
            ("batch_queries", queries.len().to_string()),
            ("samples", SAMPLES.to_string()),
        ],
        &rows,
    );
    let path = write_workspace_file("BENCH_e13.json", &doc);
    println!("\nwrote {}", path.display());
    if sac_bench::json_flag() {
        print!("{doc}");
    }
    if cores == 1 {
        println!(
            "(1-core host: validate the fan-out via shard_tasks/threads_spawned, not wall clock)"
        );
    }
}
