//! E3 — Theorem 11 (fixed schema ⇒ NP): wall-clock of the semantic
//! acyclicity decision under a fixed guarded/linear set as the query grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sac::prelude::*;

fn bench(c: &mut Criterion) {
    // A fixed small guarded Σ: symmetric edges.
    let tgds = vec![parse_tgd("E(X, Y) -> E(Y, X).").unwrap()];
    assert!(classify_tgds(&tgds).guarded);

    let mut group = c.benchmark_group("e3_semac_guarded_scaling");
    for n in [2usize, 4, 6, 8] {
        // A cycle of length n with its reverse edges implied by Σ.
        let q = sac::gen::cycle_query(n);
        group.bench_with_input(BenchmarkId::new("decide_cycle", n), &q, |b, q| {
            b.iter(|| semantic_acyclicity_under_tgds(q, &tgds, SemAcConfig::default()).is_acyclic())
        });
        let p = sac::gen::path_query(n);
        group.bench_with_input(BenchmarkId::new("decide_path", n), &p, |b, p| {
            b.iter(|| semantic_acyclicity_under_tgds(p, &tgds, SemAcConfig::default()).is_acyclic())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = sac_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
