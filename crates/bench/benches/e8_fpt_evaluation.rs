//! E8 — Proposition 24: fixed-parameter tractable evaluation.  With q and Σ
//! fixed, the cost of the full pipeline (decide + Yannakakis) grows linearly
//! in |D|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sac::prelude::*;

fn bench(c: &mut Criterion) {
    let q = sac::gen::example1_triangle();
    let tgds = vec![sac::gen::collector_tgd()];

    let mut group = c.benchmark_group("e8_fpt_evaluation");
    for customers in [100usize, 400, 1600] {
        let db = sac::gen::music_database(customers, customers, 25);
        group.throughput(Throughput::Elements(db.len() as u64));
        group.bench_with_input(BenchmarkId::new("fpt_pipeline", db.len()), &db, |b, db| {
            b.iter(|| {
                evaluate_semantically_acyclic(
                    &q,
                    &tgds,
                    db,
                    EvaluationStrategy::RewriteThenYannakakis,
                    SemAcConfig::default(),
                )
                .len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = sac_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
