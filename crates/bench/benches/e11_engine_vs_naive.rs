//! E11 — the execution engine against its baselines.  Three evaluators on
//! the same query/database pairs at growing database sizes:
//!
//! * `naive` — homomorphism enumeration (`sac_query::evaluate`);
//! * `yannakakis_scan` — the scan-based Yannakakis of `sac-acyclic`
//!   (re-derives the join tree and re-scans relations every call);
//! * `engine` — `sac-engine` serving from its plan and index caches, the way
//!   repeated traffic hits it.
//!
//! Section A: an acyclic star query over random graphs.  Section B: the
//! semantically acyclic Example 1 triangle under the collector tgd, where the
//! engine's cached witness plan amortizes the reformulation the baselines
//! cannot use at all (naive pays the cyclic-join cost every call).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use sac::prelude::*;

fn bench_acyclic(c: &mut Criterion) {
    let q = sac::gen::star_query(3);
    let mut group = c.benchmark_group("e11_acyclic_star");
    for nodes in [50usize, 200, 800] {
        let db = sac::gen::random_graph_database(nodes, nodes * 4, 11);
        group.throughput(Throughput::Elements(db.len() as u64));
        group.bench_with_input(BenchmarkId::new("naive", db.len()), &db, |b, db| {
            b.iter(|| evaluate(&q, db).len())
        });
        group.bench_with_input(
            BenchmarkId::new("yannakakis_scan", db.len()),
            &db,
            |b, db| b.iter(|| yannakakis_evaluate(&q, db).expect("star is acyclic").len()),
        );
        let engine = Database::from_instance(db.clone());
        engine.run(&q); // warm the plan and index caches
        group.bench_with_input(BenchmarkId::new("engine", db.len()), &db, |b, _| {
            b.iter(|| engine.run(&q).len())
        });
    }
    group.finish();
}

fn bench_semantically_acyclic(c: &mut Criterion) {
    let q = sac::gen::example1_triangle();
    let tgds = vec![sac::gen::collector_tgd()];
    // The acyclic witness the engine plans through, precomputed once so the
    // scan-based baseline can run Yannakakis on it too.
    let witness = semantic_acyclicity_under_tgds(&q, &tgds, SemAcConfig::default())
        .witness()
        .expect("Example 1 is semantically acyclic under the collector tgd")
        .clone();
    let mut group = c.benchmark_group("e11_semac_triangle");
    for customers in [50usize, 200, 800] {
        let db = sac::gen::music_database(customers, customers * 2, 10);
        group.throughput(Throughput::Elements(db.len() as u64));
        group.bench_with_input(BenchmarkId::new("naive", db.len()), &db, |b, db| {
            b.iter(|| evaluate(&q, db).len())
        });
        group.bench_with_input(
            BenchmarkId::new("yannakakis_scan_witness", db.len()),
            &db,
            |b, db| {
                b.iter(|| {
                    yannakakis_evaluate(&witness, db)
                        .expect("witness is acyclic")
                        .len()
                })
            },
        );
        let engine = Database::from_instance(db.clone()).with_tgds(tgds.clone());
        engine.run(&q); // pay the witness search once, outside the timing
        group.bench_with_input(BenchmarkId::new("engine", db.len()), &db, |b, _| {
            b.iter(|| engine.run(&q).len())
        });
    }
    group.finish();
}

/// One JSON row: self-timed median plus the speedup over the naive
/// evaluator on the same database (naive rows carry `1.00`) and the
/// database's columnar heap footprint.
fn json_row(
    rows: &mut Vec<String>,
    section: &str,
    evaluator: &str,
    db_atoms: usize,
    heap_bytes: usize,
    secs: f64,
    naive_secs: f64,
) {
    rows.push(sac_bench::json_object(&[
        ("section", format!("\"{section}\"")),
        ("evaluator", format!("\"{evaluator}\"")),
        ("db_atoms", db_atoms.to_string()),
        ("heap_bytes", heap_bytes.to_string()),
        ("median_secs", format!("{secs:.6}")),
        ("runs_per_sec", format!("{:.1}", 1.0 / secs.max(1e-9))),
        (
            "speedup_vs_naive",
            format!("{:.2}", naive_secs / secs.max(1e-9)),
        ),
    ]));
}

/// The `--json` sweep: self-timed medians for the same three evaluators,
/// written to `BENCH_e11.json` at the workspace root.
///
/// With `smoke` set (the CI `--smoke` mode) only the smallest acyclic-star
/// size runs, the document goes to a temp-dir `BENCH_e11_smoke.json` (the
/// workspace tree stays clean), and the process exits non-zero unless the
/// cached engine beats the naive evaluator — a cheap merge gate against
/// engine-path regressions.
fn json_report(smoke: bool) {
    let mut rows = Vec::new();
    let mut star_engine_speedups = Vec::new();

    let q = sac::gen::star_query(3);
    let sizes: &[usize] = if smoke { &[50] } else { &[50, 200, 800] };
    for &nodes in sizes {
        let db = sac::gen::random_graph_database(nodes, nodes * 4, 11);
        let atoms = db.len();
        let heap = db.heap_bytes();
        let naive_secs = sac_bench::median_secs(5, || {
            std::hint::black_box(evaluate(&q, &db).len());
        });
        json_row(
            &mut rows,
            "acyclic_star",
            "naive",
            atoms,
            heap,
            naive_secs,
            naive_secs,
        );
        let scan_secs = sac_bench::median_secs(5, || {
            std::hint::black_box(yannakakis_evaluate(&q, &db).expect("star is acyclic").len());
        });
        json_row(
            &mut rows,
            "acyclic_star",
            "yannakakis_scan",
            atoms,
            heap,
            scan_secs,
            naive_secs,
        );
        let engine = Database::from_instance(db.clone());
        engine.run(&q);
        let engine_secs = sac_bench::median_secs(5, || {
            std::hint::black_box(engine.run(&q).len());
        });
        json_row(
            &mut rows,
            "acyclic_star",
            "engine",
            atoms,
            heap,
            engine_secs,
            naive_secs,
        );
        star_engine_speedups.push(naive_secs / engine_secs.max(1e-9));
    }

    if !smoke {
        let q = sac::gen::example1_triangle();
        let tgds = vec![sac::gen::collector_tgd()];
        let witness = semantic_acyclicity_under_tgds(&q, &tgds, SemAcConfig::default())
            .witness()
            .expect("Example 1 is semantically acyclic under the collector tgd")
            .clone();
        for customers in [50usize, 200, 800] {
            let db = sac::gen::music_database(customers, customers * 2, 10);
            let atoms = db.len();
            let heap = db.heap_bytes();
            let naive_secs = sac_bench::median_secs(5, || {
                std::hint::black_box(evaluate(&q, &db).len());
            });
            json_row(
                &mut rows,
                "semac_triangle",
                "naive",
                atoms,
                heap,
                naive_secs,
                naive_secs,
            );
            let scan_secs = sac_bench::median_secs(5, || {
                std::hint::black_box(
                    yannakakis_evaluate(&witness, &db)
                        .expect("witness is acyclic")
                        .len(),
                );
            });
            json_row(
                &mut rows,
                "semac_triangle",
                "yannakakis_scan_witness",
                atoms,
                heap,
                scan_secs,
                naive_secs,
            );
            let engine = Database::from_instance(db.clone()).with_tgds(tgds.clone());
            engine.run(&q);
            let engine_secs = sac_bench::median_secs(5, || {
                std::hint::black_box(engine.run(&q).len());
            });
            json_row(
                &mut rows,
                "semac_triangle",
                "engine",
                atoms,
                heap,
                engine_secs,
                naive_secs,
            );
        }
    }

    let doc = sac_bench::json_document("e11_engine_vs_naive", &[], &rows);
    let path = if smoke {
        // Smoke runs are a pass/fail gate; their report is a scratch
        // artifact and must not dirty the workspace tree.
        let path = std::env::temp_dir().join("BENCH_e11_smoke.json");
        std::fs::write(&path, &doc)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        path
    } else {
        sac_bench::write_workspace_file("BENCH_e11.json", &doc)
    };
    print!("{doc}");
    eprintln!("wrote {}", path.display());

    if smoke {
        let worst = star_engine_speedups
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        if worst < 1.0 {
            eprintln!(
                "bench smoke FAILED: engine speedup_vs_naive {worst:.2} < 1.0 on acyclic_star"
            );
            std::process::exit(1);
        }
        eprintln!("bench smoke ok: engine speedup_vs_naive {worst:.2} on acyclic_star");
    }
}

criterion_group! {
    name = benches;
    config = sac_bench::quick_criterion();
    targets = bench_acyclic, bench_semantically_acyclic
}

fn main() {
    if sac_bench::flag("--smoke") {
        json_report(true);
    } else if sac_bench::json_flag() {
        json_report(false);
    } else {
        benches();
    }
}
