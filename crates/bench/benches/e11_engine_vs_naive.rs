//! E11 — the execution engine against its baselines.  Three evaluators on
//! the same query/database pairs at growing database sizes:
//!
//! * `naive` — homomorphism enumeration (`sac_query::evaluate`);
//! * `yannakakis_scan` — the scan-based Yannakakis of `sac-acyclic`
//!   (re-derives the join tree and re-scans relations every call);
//! * `engine` — `sac-engine` serving from its plan and index caches, the way
//!   repeated traffic hits it.
//!
//! Section A: an acyclic star query over random graphs.  Section B: the
//! semantically acyclic Example 1 triangle under the collector tgd, where the
//! engine's cached witness plan amortizes the reformulation the baselines
//! cannot use at all (naive pays the cyclic-join cost every call).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use sac::prelude::*;

fn bench_acyclic(c: &mut Criterion) {
    let q = sac::gen::star_query(3);
    let mut group = c.benchmark_group("e11_acyclic_star");
    for nodes in [50usize, 200, 800] {
        let db = sac::gen::random_graph_database(nodes, nodes * 4, 11);
        group.throughput(Throughput::Elements(db.len() as u64));
        group.bench_with_input(BenchmarkId::new("naive", db.len()), &db, |b, db| {
            b.iter(|| evaluate(&q, db).len())
        });
        group.bench_with_input(
            BenchmarkId::new("yannakakis_scan", db.len()),
            &db,
            |b, db| b.iter(|| yannakakis_evaluate(&q, db).expect("star is acyclic").len()),
        );
        let engine = Database::from_instance(db.clone());
        engine.run(&q); // warm the plan and index caches
        group.bench_with_input(BenchmarkId::new("engine", db.len()), &db, |b, _| {
            b.iter(|| engine.run(&q).len())
        });
    }
    group.finish();
}

fn bench_semantically_acyclic(c: &mut Criterion) {
    let q = sac::gen::example1_triangle();
    let tgds = vec![sac::gen::collector_tgd()];
    // The acyclic witness the engine plans through, precomputed once so the
    // scan-based baseline can run Yannakakis on it too.
    let witness = semantic_acyclicity_under_tgds(&q, &tgds, SemAcConfig::default())
        .witness()
        .expect("Example 1 is semantically acyclic under the collector tgd")
        .clone();
    let mut group = c.benchmark_group("e11_semac_triangle");
    for customers in [50usize, 200, 800] {
        let db = sac::gen::music_database(customers, customers * 2, 10);
        group.throughput(Throughput::Elements(db.len() as u64));
        group.bench_with_input(BenchmarkId::new("naive", db.len()), &db, |b, db| {
            b.iter(|| evaluate(&q, db).len())
        });
        group.bench_with_input(
            BenchmarkId::new("yannakakis_scan_witness", db.len()),
            &db,
            |b, db| {
                b.iter(|| {
                    yannakakis_evaluate(&witness, db)
                        .expect("witness is acyclic")
                        .len()
                })
            },
        );
        let engine = Database::from_instance(db.clone()).with_tgds(tgds.clone());
        engine.run(&q); // pay the witness search once, outside the timing
        group.bench_with_input(BenchmarkId::new("engine", db.len()), &db, |b, _| {
            b.iter(|| engine.run(&q).len())
        });
    }
    group.finish();
}

/// The `--json` sweep: self-timed medians for the same three evaluators,
/// written to `BENCH_e11.json` at the workspace root.
fn json_report() {
    let mut rows = Vec::new();
    let mut row = |section: &str, evaluator: &str, db_atoms: usize, secs: f64| {
        rows.push(sac_bench::json_object(&[
            ("section", format!("\"{section}\"")),
            ("evaluator", format!("\"{evaluator}\"")),
            ("db_atoms", db_atoms.to_string()),
            ("median_secs", format!("{secs:.6}")),
            ("runs_per_sec", format!("{:.1}", 1.0 / secs.max(1e-9))),
        ]));
    };

    let q = sac::gen::star_query(3);
    for nodes in [50usize, 200, 800] {
        let db = sac::gen::random_graph_database(nodes, nodes * 4, 11);
        let atoms = db.len();
        row(
            "acyclic_star",
            "naive",
            atoms,
            sac_bench::median_secs(5, || {
                std::hint::black_box(evaluate(&q, &db).len());
            }),
        );
        row(
            "acyclic_star",
            "yannakakis_scan",
            atoms,
            sac_bench::median_secs(5, || {
                std::hint::black_box(yannakakis_evaluate(&q, &db).expect("star is acyclic").len());
            }),
        );
        let engine = Database::from_instance(db.clone());
        engine.run(&q);
        row(
            "acyclic_star",
            "engine",
            atoms,
            sac_bench::median_secs(5, || {
                std::hint::black_box(engine.run(&q).len());
            }),
        );
    }

    let q = sac::gen::example1_triangle();
    let tgds = vec![sac::gen::collector_tgd()];
    let witness = semantic_acyclicity_under_tgds(&q, &tgds, SemAcConfig::default())
        .witness()
        .expect("Example 1 is semantically acyclic under the collector tgd")
        .clone();
    for customers in [50usize, 200, 800] {
        let db = sac::gen::music_database(customers, customers * 2, 10);
        let atoms = db.len();
        row(
            "semac_triangle",
            "naive",
            atoms,
            sac_bench::median_secs(5, || {
                std::hint::black_box(evaluate(&q, &db).len());
            }),
        );
        row(
            "semac_triangle",
            "yannakakis_scan_witness",
            atoms,
            sac_bench::median_secs(5, || {
                std::hint::black_box(
                    yannakakis_evaluate(&witness, &db)
                        .expect("witness is acyclic")
                        .len(),
                );
            }),
        );
        let engine = Database::from_instance(db.clone()).with_tgds(tgds.clone());
        engine.run(&q);
        row(
            "semac_triangle",
            "engine",
            atoms,
            sac_bench::median_secs(5, || {
                std::hint::black_box(engine.run(&q).len());
            }),
        );
    }

    let doc = sac_bench::json_document("e11_engine_vs_naive", &[], &rows);
    let path = sac_bench::write_workspace_file("BENCH_e11.json", &doc);
    print!("{doc}");
    eprintln!("wrote {}", path.display());
}

criterion_group! {
    name = benches;
    config = sac_bench::quick_criterion();
    targets = bench_acyclic, bench_semantically_acyclic
}

fn main() {
    if sac_bench::json_flag() {
        json_report();
    } else {
        benches();
    }
}
