//! E12 — concurrent throughput of the `sac::Database` façade.
//!
//! One shared database, a cached-plan workload (plans and indexes warmed
//! before timing), driven from N scoped threads through `&self`.  Two
//! complementary reads on the same experiment:
//!
//! * the criterion rows time one *fixed-size* workload (512 queries) as the
//!   thread count grows — wall-clock should **drop** from 1 → 4 threads;
//! * the `queries/sec` summary printed afterwards reruns each configuration
//!   for a fixed wall-clock window and reports aggregate throughput — it
//!   should **rise** from 1 → 4 threads.
//!
//! The workload mixes the acyclic star (direct Yannakakis), a cyclic clique
//! (indexed fallback) and the semantically acyclic Example 1 triangle
//! (witness Yannakakis), so every strategy rung is exercised concurrently.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use sac::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WORKLOAD: usize = 512;

fn build_database() -> Database {
    let mut seed = sac::gen::music_database(120, 240, 8);
    seed.extend_from(&sac::gen::random_graph_database(50, 300, 7))
        .expect("disjoint schemas merge cleanly");
    Database::from_instance(seed).with_tgds(vec![sac::gen::collector_tgd()])
}

fn shapes() -> Vec<ConjunctiveQuery> {
    vec![
        sac::gen::star_query(3),
        sac::gen::path_query(3),
        sac::gen::clique_query(3),
        sac::gen::example1_triangle(),
    ]
}

/// Executes `total` queries spread over `threads` threads, all against the
/// shared prepared handles.
fn drive(prepared: &[PreparedQuery<'_>], threads: usize, total: usize) {
    thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                for i in 0..total / threads {
                    std::hint::black_box(prepared[(t + i) % prepared.len()].execute().len());
                }
            });
        }
    });
}

fn bench_fixed_workload(c: &mut Criterion) {
    let db = build_database();
    let prepared: Vec<_> = shapes()
        .iter()
        .map(|q| db.prepare(q).expect("generated queries are valid"))
        .collect();
    drive(&prepared, 2, 64); // warm plans and indexes outside the timing

    let mut group = c.benchmark_group("e12_fixed_workload");
    group.throughput(Throughput::Elements(WORKLOAD as u64));
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| b.iter(|| drive(&prepared, threads, WORKLOAD)),
        );
    }
    group.finish();
}

/// The queries/sec view: fixed wall-clock window per thread count.
fn report_throughput_scaling(_c: &mut Criterion) {
    let db = build_database();
    let prepared: Vec<_> = shapes()
        .iter()
        .map(|q| db.prepare(q).expect("generated queries are valid"))
        .collect();
    drive(&prepared, 2, 64);

    let window = Duration::from_millis(250);
    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    println!("\ne12 aggregate throughput (window {window:?}, {cores} core(s) available):");
    if cores == 1 {
        println!("  (single-core host: expect flat scaling; the interesting number is how");
        println!("   little aggregate throughput drops under contention)");
    }
    println!(
        "{:>8} {:>12} {:>14} {:>10}",
        "threads", "queries", "queries/sec", "speedup"
    );
    let mut single = 0.0f64;
    for threads in THREAD_COUNTS {
        let done = AtomicUsize::new(0);
        let start = Instant::now();
        thread::scope(|scope| {
            for t in 0..threads {
                let prepared = &prepared;
                let done = &done;
                scope.spawn(move || {
                    let mut i = t;
                    while start.elapsed() < window {
                        std::hint::black_box(prepared[i % prepared.len()].execute().len());
                        done.fetch_add(1, Ordering::Relaxed);
                        i += 1;
                    }
                });
            }
        });
        let rate = done.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64();
        if threads == 1 {
            single = rate;
        }
        println!(
            "{threads:>8} {:>12} {rate:>14.0} {:>9.2}x",
            done.load(Ordering::Relaxed),
            rate / single
        );
    }
    let m = db.metrics();
    println!("metrics: {m}\n");
}

/// The `--json` sweep: aggregate queries/sec per thread count over a fixed
/// wall-clock window, written to `BENCH_e12.json` at the workspace root.
fn json_report() {
    let db = build_database();
    let prepared: Vec<_> = shapes()
        .iter()
        .map(|q| db.prepare(q).expect("generated queries are valid"))
        .collect();
    drive(&prepared, 2, 64); // warm plans and indexes

    let window = Duration::from_millis(250);
    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    for threads in THREAD_COUNTS {
        // Fresh histogram window per thread count: the percentiles below
        // describe this configuration only, not the accumulated session.
        db.reset_metrics();
        let done = AtomicUsize::new(0);
        let start = Instant::now();
        thread::scope(|scope| {
            for t in 0..threads {
                let prepared = &prepared;
                let done = &done;
                scope.spawn(move || {
                    let mut i = t;
                    while start.elapsed() < window {
                        std::hint::black_box(prepared[i % prepared.len()].execute().len());
                        done.fetch_add(1, Ordering::Relaxed);
                        i += 1;
                    }
                });
            }
        });
        let queries = done.load(Ordering::Relaxed);
        let rate = queries as f64 / start.elapsed().as_secs_f64();
        let latency = db.metrics().run_latency;
        rows.push(sac_bench::json_object(&[
            ("threads", threads.to_string()),
            ("queries", queries.to_string()),
            ("queries_per_sec", format!("{rate:.1}")),
            ("latency_samples", latency.count.to_string()),
            ("p50_latency_ns", latency.p50().to_string()),
            ("p90_latency_ns", latency.p90().to_string()),
            ("p99_latency_ns", latency.p99().to_string()),
            ("max_latency_ns", latency.max_ns.to_string()),
        ]));
    }
    let doc = sac_bench::json_document(
        "e12_concurrent_throughput",
        &[
            ("available_cores", cores.to_string()),
            ("window_ms", window.as_millis().to_string()),
        ],
        &rows,
    );
    let path = sac_bench::write_workspace_file("BENCH_e12.json", &doc);
    print!("{doc}");
    eprintln!("wrote {}", path.display());
}

criterion_group! {
    name = benches;
    config = sac_bench::quick_criterion();
    targets = bench_fixed_workload, report_throughput_scaling
}

fn main() {
    if sac_bench::json_flag() {
        json_report();
    } else {
        benches();
    }
}
