//! # sac-bench
//!
//! Criterion benchmark harness reproducing every figure/example experiment of
//! the paper (see DESIGN.md §4 for the experiment index E1–E11 and
//! EXPERIMENTS.md for recorded results).  Shared helpers live here; each
//! `benches/eN_*.rs` target regenerates one experiment, and the
//! `complexity_table` / `experiment_report` binaries print the summary tables.

use criterion::Criterion;

/// A Criterion configuration small enough that the full suite completes in a
/// few minutes while still producing stable medians (the experiments compare
/// growth shapes, not nanosecond-level effects).
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}
