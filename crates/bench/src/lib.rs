//! # sac-bench
//!
//! Criterion benchmark harness reproducing every figure/example experiment of
//! the paper (see DESIGN.md §4 for the experiment index E1–E14 and
//! EXPERIMENTS.md for recorded results).  Shared helpers live here; each
//! `benches/eN_*.rs` target regenerates one experiment, and the
//! `complexity_table` / `experiment_report` binaries print the summary tables.
//!
//! ## Machine-readable results
//!
//! The engine-facing benches (`e11`–`e14`) support a `--json` flag
//! (`cargo bench --bench e11_engine_vs_naive -- --json`): instead of the
//! criterion rows they run a compact self-timed sweep and write a
//! `BENCH_eNN.json` file at the workspace root (and echo it to stdout), so
//! the bench trajectory can be recorded and diffed across commits.
//! `e13_parallel_speedup` and `e14_view_maintenance` always write their
//! JSON — they *are* the machine-readable experiments; `e14`'s numbers are
//! gated by a per-batch differential check (maintained view == recompute).

use criterion::Criterion;
use std::path::PathBuf;
use std::time::Instant;

/// A Criterion configuration small enough that the full suite completes in a
/// few minutes while still producing stable medians (the experiments compare
/// growth shapes, not nanosecond-level effects).
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

/// Whether the bench binary was invoked with the given flag
/// (`cargo bench --bench <name> -- <flag>`).
pub fn flag(name: &str) -> bool {
    std::env::args().any(|arg| arg == name)
}

/// Whether the bench binary was invoked with `--json`
/// (`cargo bench --bench <name> -- --json`).
pub fn json_flag() -> bool {
    flag("--json")
}

/// A path at the workspace root (where `BENCH_*.json` files live).
pub fn workspace_path(file_name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file_name)
}

/// Writes `contents` to `file_name` at the workspace root and returns the
/// path written.
pub fn write_workspace_file(file_name: &str, contents: &str) -> PathBuf {
    let path = workspace_path(file_name);
    std::fs::write(&path, contents)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    path
}

/// Median wall-clock seconds of `samples` runs of `routine` (one warm-up
/// run first).  The self-timed twin of the criterion rows, for `--json`
/// sweeps.
pub fn median_secs<F: FnMut()>(samples: usize, mut routine: F) -> f64 {
    assert!(samples > 0, "need at least one sample");
    routine(); // warm-up
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            routine();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    times[times.len() / 2]
}

/// Renders `rows` (already-serialized JSON objects) as a JSON document with
/// a `bench` name, flat metadata fields and a `results` array.  The
/// workspace vendors no serde, so the writers hand-assemble their rows with
/// [`json_object`].
pub fn json_document(bench: &str, metadata: &[(&str, String)], rows: &[String]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    for (key, value) in metadata {
        out.push_str(&format!("  \"{key}\": {value},\n"));
    }
    out.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!("    {row}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders one flat JSON object from `(key, already-serialized value)`
/// pairs.
pub fn json_object(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(key, value)| format!("\"{key}\": {value}"))
        .collect();
    format!("{{{}}}", body.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_is_well_formed() {
        let rows = vec![
            json_object(&[("a", "1".into()), ("b", "2.5".into())]),
            json_object(&[("a", "2".into())]),
        ];
        let doc = json_document("e99_test", &[("cores", "1".into())], &rows);
        assert!(doc.contains("\"bench\": \"e99_test\""));
        assert!(doc.contains("\"cores\": 1,"));
        assert!(doc.contains("{\"a\": 1, \"b\": 2.5},"));
        assert!(doc.ends_with("  ]\n}\n"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn median_is_taken_over_the_samples() {
        let mut calls = 0;
        let secs = median_secs(5, || calls += 1);
        assert_eq!(calls, 6, "five samples plus one warm-up");
        assert!(secs >= 0.0);
    }

    #[test]
    fn workspace_path_points_at_the_repo_root() {
        let path = workspace_path("Cargo.lock");
        assert!(path.exists(), "{} should exist", path.display());
    }
}
