//! Prints the qualitative outcome of every experiment E1–E10 as a compact
//! table (the quantitative timing series come from `cargo bench`).  This is
//! the binary whose output EXPERIMENTS.md records.
//!
//! Run with `cargo run --release -p sac-bench --bin experiment_report`.

use sac::prelude::*;
use std::time::Instant;

fn main() {
    println!("{:<6} {:<52} outcome", "exp", "artifact");
    println!("{}", "-".repeat(110));

    // E1 — Example 1.
    {
        let q = sac::gen::example1_triangle();
        let tgds = vec![sac::gen::collector_tgd()];
        let witness = semantic_acyclicity_under_tgds(&q, &tgds, SemAcConfig::default())
            .witness()
            .cloned();
        let db = sac::gen::music_database(400, 800, 20);
        let outcome = match witness {
            Some(w) => {
                let t0 = Instant::now();
                let slow = evaluate(&q, &db).len();
                let t_naive = t0.elapsed();
                let t1 = Instant::now();
                let fast = yannakakis_evaluate(&w, &db).unwrap().len();
                let t_fast = t1.elapsed();
                format!(
                    "witness of size {} found; answers {}={} ; naive {:?} vs yannakakis {:?}",
                    w.size(),
                    slow,
                    fast,
                    t_naive,
                    t_fast
                )
            }
            None => "NO WITNESS (unexpected)".to_string(),
        };
        println!("{:<6} {:<52} {}", "E1", "Example 1 reformulation", outcome);
    }

    // E2 — Figure 1.
    println!(
        "{:<6} {:<52} sticky set -> {}, non-sticky variant -> {}",
        "E2",
        "Figure 1 stickiness marking",
        is_sticky(&sac::gen::figure1_sticky()),
        is_sticky(&sac::gen::figure1_non_sticky())
    );

    // E3 — guarded decision scaling.
    {
        let tgds = vec![parse_tgd("E(X, Y) -> E(Y, X).").unwrap()];
        let mut cells = Vec::new();
        for n in [2usize, 4, 6, 8] {
            let q = sac::gen::cycle_query(n);
            let t = Instant::now();
            let res = semantic_acyclicity_under_tgds(&q, &tgds, SemAcConfig::default());
            cells.push(format!("n={n}:{}/{:?}", res.is_acyclic(), t.elapsed()));
        }
        println!(
            "{:<6} {:<52} {}",
            "E3",
            "SemAc(G) scaling on cycles",
            cells.join("  ")
        );
    }

    // E4 — Example 2.
    {
        let mut cells = Vec::new();
        for n in [4usize, 8, 16] {
            let probe = chase_preserves_acyclicity(
                &sac::gen::example2_query(n),
                &[sac::gen::example2_tgd()],
                ChaseBudget::large(),
            );
            cells.push(format!(
                "n={n}: atoms={}, clique≥{}, acyclic={}",
                probe.output_atoms, probe.clique_lower_bound, probe.output_acyclic
            ));
        }
        println!(
            "{:<6} {:<52} {}",
            "E4",
            "Example 2 clique growth",
            cells.join("  ")
        );
    }

    // E5 — Example 3.
    {
        let mut cells = Vec::new();
        for n in [2usize, 3, 4] {
            let (tgds, q) = sac::gen::example3_sticky_family(n);
            let rw = rewrite(&q, &tgds, RewriteBudget::large());
            cells.push(format!("n={n}: height={} (2^n={})", rw.height(), 1 << n));
        }
        println!(
            "{:<6} {:<52} {}",
            "E5",
            "Example 3 rewriting height",
            cells.join("  ")
        );
    }

    // E6 — Examples 4/5.
    {
        let key = FunctionalDependency::key("R", 2, [1]).unwrap().to_egds();
        let mut cells = Vec::new();
        for n in [4usize, 8, 16] {
            let probe = sac::chase::probe::egd_chase_preserves_acyclicity(
                &sac::gen::key_ring_query(n),
                &key,
            );
            cells.push(format!("n={n}: acyclic={}", probe.output_acyclic));
        }
        println!(
            "{:<6} {:<52} {}",
            "E6",
            "Example 4/5 key chase (ring family)",
            cells.join("  ")
        );
    }

    // E7 — cover game.
    {
        let q = ConjunctiveQuery::boolean(sac::gen::example1_triangle().body).unwrap();
        let db = sac::gen::music_database(80, 80, 10);
        let t0 = Instant::now();
        let game = cover_game_evaluate(&q, &db).len();
        let t_game = t0.elapsed();
        let t1 = Instant::now();
        let exact = usize::from(evaluate_boolean(&q, &db));
        let t_naive = t1.elapsed();
        println!(
            "{:<6} {:<52} game={game} exact={exact} agree={} ; game {:?} vs naive {:?}",
            "E7",
            "Theorem 25 cover-game evaluation",
            game == exact,
            t_game,
            t_naive
        );
    }

    // E8 — FPT evaluation scaling.
    {
        let q = sac::gen::example1_triangle();
        let tgds = vec![sac::gen::collector_tgd()];
        let mut cells = Vec::new();
        for customers in [100usize, 400, 1600] {
            let db = sac::gen::music_database(customers, customers, 25);
            let t = Instant::now();
            let n = evaluate_semantically_acyclic(
                &q,
                &tgds,
                &db,
                EvaluationStrategy::RewriteThenYannakakis,
                SemAcConfig::default(),
            )
            .len();
            cells.push(format!(
                "|D|={}: {} answers in {:?}",
                db.len(),
                n,
                t.elapsed()
            ));
        }
        println!(
            "{:<6} {:<52} {}",
            "E8",
            "Prop 24 FPT evaluation scaling",
            cells.join("  ")
        );
    }

    // E9 — approximations.
    {
        let q = sac::gen::cycle_query(3);
        let report = acyclic_approximations(&q, &[], ChaseBudget::small());
        println!(
            "{:<6} {:<52} {} maximal approximation(s), exact={}",
            "E9",
            "Section 8.2 acyclic approximations (triangle)",
            report.maximal.len(),
            report.exact
        );
    }

    // E10 — PCP reduction.
    {
        let inst = PcpInstance::new(vec!["a", "ab"], vec!["aa", "b"])
            .unwrap()
            .normalize_even();
        let sol = inst.find_solution(3).unwrap();
        let (q, tgds) = sac::core::build_pcp_reduction(&inst);
        let path = solution_path_query(&inst, &sol).unwrap();
        let ok = equivalent_under_tgds(&q, &path, &tgds, ChaseBudget::new(5_000, 100_000)).holds();
        let bad_inst = PcpInstance::new(vec!["a"], vec!["b"])
            .unwrap()
            .normalize_even();
        let (q2, tgds2) = sac::core::build_pcp_reduction(&bad_inst);
        let bad_path = solution_path_query(&bad_inst, &[0]).unwrap();
        let bad =
            equivalent_under_tgds(&q2, &bad_path, &tgds2, ChaseBudget::new(5_000, 100_000)).holds();
        println!(
            "{:<6} {:<52} solvable instance equivalent={ok}, unsolvable instance equivalent={bad}",
            "E10", "Theorem 7 PCP reduction"
        );
    }
}
