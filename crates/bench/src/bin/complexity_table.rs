//! Prints the paper's complexity landscape (the summary of Propositions 2–4
//! and Theorems 7, 11, 14, 18, 20, 23) side by side with this library's
//! measured decision times on a fixed query suite — experiment E11.
//!
//! Run with `cargo run --release -p sac-bench --bin complexity_table`.

use sac::prelude::*;
use std::time::Instant;

struct Row {
    class: &'static str,
    containment: &'static str,
    semac: &'static str,
    tgds: Vec<Tgd>,
    egds: Vec<Egd>,
}

fn main() {
    let rows = vec![
        Row {
            class: "full (F)",
            containment: "decidable",
            semac: "UNDECIDABLE (Thm 7)",
            tgds: vec![sac::gen::collector_tgd()],
            egds: vec![],
        },
        Row {
            class: "guarded (G)",
            containment: "2EXPTIME-c",
            semac: "2EXPTIME-c (Thm 11)",
            tgds: vec![
                parse_tgd("E(X, Y) -> E(Y, X).").unwrap(),
                parse_tgd("G(X, Y, Z) -> E(X, Y).").unwrap(),
            ],
            egds: vec![],
        },
        Row {
            class: "linear / ID (L, ID)",
            containment: "PSPACE-c",
            semac: "PSPACE-c (Thm 14)",
            tgds: vec![
                parse_tgd("Employee(X, D) -> Dept(D).").unwrap(),
                parse_tgd("Dept(D) -> Org(D).").unwrap(),
            ],
            egds: vec![],
        },
        Row {
            class: "non-recursive (NR)",
            containment: "NEXPTIME-c",
            semac: "NEXPTIME-c (Thm 18)",
            tgds: vec![
                parse_tgd("Employee(X, D) -> Dept(D).").unwrap(),
                parse_tgd("Dept(D) -> Manages(M, D).").unwrap(),
            ],
            egds: vec![],
        },
        Row {
            class: "sticky (S)",
            containment: "EXPTIME-c",
            semac: "NEXPTIME / EXPTIME-hard (Thm 20)",
            tgds: sac::gen::figure1_sticky(),
            egds: vec![],
        },
        Row {
            class: "keys, unary/binary (K2)",
            containment: "NP-c",
            semac: "NP-c (Thm 23)",
            tgds: vec![],
            egds: FunctionalDependency::key("E", 2, [1]).unwrap().to_egds(),
        },
    ];

    // A fixed suite of queries exercised against every row.
    let suite = vec![
        ("triangle", sac::gen::cycle_query(3)),
        ("path4", sac::gen::path_query(4)),
        (
            "example1",
            ConjunctiveQuery::boolean(sac::gen::example1_triangle().body).unwrap(),
        ),
    ];

    println!(
        "{:<24} {:<14} {:<34} {:<22} {:>12}",
        "class",
        "containment",
        "semantic acyclicity (paper)",
        "classification (ours)",
        "decide (ms)"
    );
    println!("{}", "-".repeat(110));
    for row in rows {
        let classification = if row.tgds.is_empty() {
            "egds/keys".to_string()
        } else {
            format!("{}", classify_tgds(&row.tgds))
        };
        let start = Instant::now();
        let mut decided = 0usize;
        for (_, q) in &suite {
            let acyclic = if row.tgds.is_empty() {
                semantic_acyclicity_under_egds(q, &row.egds, SemAcConfig::default()).is_acyclic()
            } else {
                semantic_acyclicity_under_tgds(q, &row.tgds, SemAcConfig::default()).is_acyclic()
            };
            decided += usize::from(acyclic);
        }
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<24} {:<14} {:<34} {:<22} {:>12.2}",
            row.class, row.containment, row.semac, classification, elapsed
        );
        let _ = decided;
    }
    println!(
        "\nSuite: {} queries ({}).  Times are end-to-end decision wall-clock for the whole suite.",
        suite.len(),
        suite.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
    );
}
