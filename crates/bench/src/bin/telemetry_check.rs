//! Schema-checks the telemetry emitted by the bench JSON reports — the CI
//! gate behind the latency histograms.
//!
//! Reads `BENCH_e12.json` at the workspace root (produced by
//! `cargo bench -p sac-bench --bench e12_concurrent_throughput -- --json`)
//! and validates, without any JSON dependency, that every result row
//! carries the latency fields and that the percentiles are ordered
//! (`p50 <= p90 <= p99 <= max`).  It then re-derives a live histogram from
//! a traced workload and applies the same invariants, so the gate holds
//! even if the bench file format drifts.
//!
//! Exits non-zero (with a message) on any violation.
//!
//! Run with `cargo run --release -p sac-bench --bin telemetry_check`.

use sac::prelude::*;
use std::process::ExitCode;

/// Extracts `"key": <unsigned integer>` from a JSON object line blob.
/// Hand-rolled on purpose: the workspace has no JSON parser dependency and
/// the bench reports are flat objects the workspace itself wrote.
fn field_u64(object: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = &object[object.find(&needle)? + needle.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn check_e12_report(doc: &str) -> Result<usize, String> {
    // Split on "{" and keep the chunks that look like result rows.
    let rows: Vec<&str> = doc
        .split('{')
        .filter(|chunk| chunk.contains("\"threads\""))
        .collect();
    if rows.is_empty() {
        return Err("BENCH_e12.json holds no result rows".to_owned());
    }
    for row in &rows {
        let threads =
            field_u64(row, "threads").ok_or_else(|| format!("row missing \"threads\": {row}"))?;
        for key in [
            "queries",
            "latency_samples",
            "p50_latency_ns",
            "p90_latency_ns",
            "p99_latency_ns",
            "max_latency_ns",
        ] {
            if field_u64(row, key).is_none() {
                return Err(format!("row for threads={threads} missing \"{key}\""));
            }
        }
        let samples = field_u64(row, "latency_samples").unwrap();
        let queries = field_u64(row, "queries").unwrap();
        if samples != queries {
            return Err(format!(
                "threads={threads}: {samples} histogram samples for {queries} queries \
                 (lost or phantom increments)"
            ));
        }
        let p50 = field_u64(row, "p50_latency_ns").unwrap();
        let p90 = field_u64(row, "p90_latency_ns").unwrap();
        let p99 = field_u64(row, "p99_latency_ns").unwrap();
        let max = field_u64(row, "max_latency_ns").unwrap();
        if !(p50 <= p90 && p90 <= p99 && p99 <= max) {
            return Err(format!(
                "threads={threads}: percentiles out of order \
                 (p50 {p50} / p90 {p90} / p99 {p99} / max {max})"
            ));
        }
        if queries > 0 && p50 == 0 {
            return Err(format!("threads={threads}: ran queries but p50 is 0"));
        }
    }
    Ok(rows.len())
}

/// The same invariants against a live session, independent of any file.
fn check_live_session() -> Result<(), String> {
    let db = Database::from_instance(sac::gen::random_graph_database(12, 60, 5));
    let queries = [sac::gen::path_query(2), sac::gen::cycle_query(3)];
    for q in &queries {
        let (result, trace) = db.run_traced(q);
        if trace.phases.total_ns() != trace.total_ns {
            return Err(format!(
                "trace phases for {q} sum to {} but total is {}",
                trace.phases.total_ns(),
                trace.total_ns
            ));
        }
        if trace.answers != result.len() {
            return Err(format!("trace answer count drifted on {q}"));
        }
    }
    let m = db.metrics();
    let lat = &m.run_latency;
    if lat.count != queries.len() as u64 {
        return Err(format!(
            "live histogram holds {} samples for {} runs",
            lat.count,
            queries.len()
        ));
    }
    if !(lat.p50() <= lat.p90() && lat.p90() <= lat.p99() && lat.p99() <= lat.max_ns) {
        return Err("live percentiles out of order".to_owned());
    }
    Ok(())
}

fn main() -> ExitCode {
    // The bench file lives at the workspace root, like the benches write it.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_e12.json");
    match std::fs::read_to_string(&path) {
        Ok(doc) => match check_e12_report(&doc) {
            Ok(rows) => println!("telemetry check: BENCH_e12.json ok ({rows} rows)"),
            Err(err) => {
                eprintln!("telemetry check FAILED: {err}");
                return ExitCode::FAILURE;
            }
        },
        Err(err) => {
            eprintln!(
                "telemetry check FAILED: cannot read {}: {err}",
                path.display()
            );
            eprintln!("(run `cargo bench -p sac-bench --bench e12_concurrent_throughput -- --json` first)");
            return ExitCode::FAILURE;
        }
    }
    match check_live_session() {
        Ok(()) => println!("telemetry check: live-session invariants ok"),
        Err(err) => {
            eprintln!("telemetry check FAILED: {err}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_rows_pass() {
        let doc = r#"{"bench": "e12", "results": [
            {"threads": 1, "queries": 10, "latency_samples": 10,
             "p50_latency_ns": 5, "p90_latency_ns": 9,
             "p99_latency_ns": 9, "max_latency_ns": 12}
        ]}"#;
        assert_eq!(check_e12_report(doc), Ok(1));
    }

    #[test]
    fn out_of_order_percentiles_fail() {
        let doc = r#"{"results": [
            {"threads": 2, "queries": 10, "latency_samples": 10,
             "p50_latency_ns": 9, "p90_latency_ns": 5,
             "p99_latency_ns": 9, "max_latency_ns": 12}
        ]}"#;
        assert!(check_e12_report(doc).unwrap_err().contains("out of order"));
    }

    #[test]
    fn missing_keys_and_lost_samples_fail() {
        let missing = r#"{"results": [{"threads": 1, "queries": 3}]}"#;
        assert!(check_e12_report(missing)
            .unwrap_err()
            .contains("latency_samples"));
        let lost = r#"{"results": [
            {"threads": 1, "queries": 10, "latency_samples": 9,
             "p50_latency_ns": 5, "p90_latency_ns": 9,
             "p99_latency_ns": 9, "max_latency_ns": 12}
        ]}"#;
        assert!(check_e12_report(lost).unwrap_err().contains("lost"));
    }

    #[test]
    fn live_session_invariants_hold() {
        assert_eq!(check_live_session(), Ok(()));
    }
}
