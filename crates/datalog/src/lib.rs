//! Stratified Datalog programs with replayable provenance.
//!
//! This crate defines the *language* and *audit* layers of the recursive
//! query subsystem:
//!
//! - [`Rule`] / [`DatalogProgram`]: safe Datalog rules with stratified
//!   negation, parsed from the shared surface syntax (`sac-common::syntax`)
//!   or built programmatically.  Construction validates safety (every head
//!   and negated variable must occur in a positive body atom) and rejects
//!   programs whose negation is not stratifiable.
//! - [`Certificate`]: a topologically ordered derivation log.  Each
//!   [`DerivationStep`] names the rule that fired, the derived fact, and the
//!   premises it consumed — base facts by stable row id, earlier derived
//!   facts by step index.
//! - [`check`]: a standalone, engine-independent checker that replays a
//!   certificate against the base facts and rejects fail-closed on any
//!   mismatch.  Trusting an engine answer reduces to trusting this small
//!   module plus the base instance.
//! - [`naive`]: a deliberately simple stratified bottom-up fixpoint used as
//!   a differential-testing reference for the engine's semi-naive evaluator
//!   (which lives in `sac-engine`, where the execution machinery is).
//!
//! The split mirrors the chase/acyclicity layering elsewhere in the
//! workspace: semantics and proofs here, performance machinery in the
//! engine.
//!
//! # Example
//!
//! ```
//! use sac_datalog::{check, naive, DatalogProgram};
//! use sac_storage::Instance;
//!
//! let program: DatalogProgram = "T(X, Y) :- E(X, Y).\n\
//!                                T(X, Z) :- E(X, Y), T(Y, Z)."
//!     .parse()
//!     .unwrap();
//! let base = Instance::from_atoms(
//!     sac_common::syntax::parse_statements("E(a, b). E(b, c).")
//!         .unwrap()
//!         .into_iter()
//!         .map(|s| match s {
//!             sac_common::RawStatement::Fact(atom) => atom,
//!             _ => unreachable!(),
//!         }),
//! )
//! .unwrap();
//!
//! let (fixpoint, certificate) = naive::naive_fixpoint(&program, &base).unwrap();
//! assert_eq!(fixpoint.len(), 5); // 2 base edges + 3 reachable pairs
//! check::check_certificate(&program, &base, &certificate).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certificate;
pub mod check;
pub mod naive;
pub mod program;
mod stratify;

pub use certificate::{Certificate, DerivationStep, Premise};
pub use check::CheckError;
pub use program::{DatalogProgram, Rule};
