//! Stratification of Datalog programs with negation.
//!
//! Assigns each intensional predicate a stratum such that a rule's head sits
//! no lower than any positively used predicate and strictly above any
//! negated one.  Programs where negation cycles through recursion admit no
//! such assignment and are rejected.

use crate::program::Rule;
use sac_common::{resolve, Error, Result, Symbol};
use std::collections::{BTreeMap, BTreeSet};

/// Groups rule indices by stratum, lowest first.
///
/// The computation is a Bellman-Ford-style relaxation over the predicate
/// dependency graph: start every intensional predicate at stratum 0 and
/// repeatedly raise rule heads to satisfy `stratum(head) ≥ stratum(p)` for
/// positive body predicates and `stratum(head) ≥ stratum(q) + 1` for negated
/// ones (extensional predicates stay at stratum 0).  Any predicate pushed
/// above the number of intensional predicates lies on a negation cycle.
pub(crate) fn stratify(rules: &[Rule], idb: &BTreeSet<Symbol>) -> Result<Vec<Vec<usize>>> {
    let mut stratum: BTreeMap<Symbol, usize> = idb.iter().map(|&p| (p, 0)).collect();
    let bound = idb.len();
    loop {
        let mut changed = false;
        for rule in rules {
            let mut floor = 0;
            for atom in &rule.body {
                if let Some(&s) = stratum.get(&atom.predicate) {
                    floor = floor.max(s);
                }
            }
            for literal in &rule.negated {
                let s = stratum.get(&literal.predicate).copied().unwrap_or(0);
                floor = floor.max(s + 1);
            }
            let head = stratum
                .get_mut(&rule.head.predicate)
                .expect("head predicates are intensional by construction");
            if floor > *head {
                if floor > bound {
                    return Err(Error::Malformed(format!(
                        "program is not stratifiable: negation cycles through \
                         predicate {}",
                        resolve(rule.head.predicate)
                    )));
                }
                *head = floor;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Group rules by their head's stratum, compressing away empty levels so
    // callers can iterate strata densely.
    let mut levels: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (index, rule) in rules.iter().enumerate() {
        levels
            .entry(stratum[&rule.head.predicate])
            .or_default()
            .push(index);
    }
    Ok(levels.into_values().collect())
}

#[cfg(test)]
mod tests {
    use crate::DatalogProgram;

    #[test]
    fn doubly_negated_chains_stack_strata() {
        let p: DatalogProgram = "A(X) :- R(X).\n\
                                 B(X) :- R(X), not A(X).\n\
                                 C(X) :- R(X), not B(X)."
            .parse()
            .unwrap();
        assert_eq!(p.strata(), &[vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn negating_an_edb_predicate_still_stratifies() {
        let p: DatalogProgram = "Orphan(X) :- N(X), not E(X, X).".parse().unwrap();
        assert_eq!(p.strata().len(), 1);
    }

    #[test]
    fn positive_recursion_through_negation_target_is_rejected() {
        // T is recursive and Sep negates it while T reads Sep back: the
        // negation sits inside a dependency cycle.
        let err = "T(X, Y) :- E(X, Y).\n\
                   T(X, Z) :- Sep(X, Y), T(Y, Z).\n\
                   Sep(X, Y) :- E(X, Y), not T(X, Y)."
            .parse::<DatalogProgram>()
            .unwrap_err();
        assert!(err.to_string().contains("not stratifiable"), "got: {err}");
    }
}
