//! A deliberately simple stratified bottom-up reference evaluator.
//!
//! Recomputes every rule body against the whole instance each round (the
//! textbook *naive* fixpoint), one stratum at a time, applying a round's
//! consequences only after the round completes.  The engine's semi-naive
//! evaluator (`sac-engine`) must agree with this module byte-for-byte — the
//! integration suite enforces it differentially — so clarity wins over
//! speed here.

use crate::certificate::{Certificate, DerivationStep, Premise};
use crate::program::DatalogProgram;
use sac_common::{Atom, Result};
use sac_query::HomomorphismSearch;
use sac_storage::Instance;
use std::collections::BTreeMap;

/// Computes the stratified fixpoint of `program` over `base`, returning the
/// saturated instance together with a replayable [`Certificate`] recording
/// one derivation per new fact (first derivation wins).
pub fn naive_fixpoint(
    program: &DatalogProgram,
    base: &Instance,
) -> Result<(Instance, Certificate)> {
    let mut work = base.clone();
    let mut certificate = Certificate::default();
    let mut step_of: BTreeMap<Atom, usize> = BTreeMap::new();

    for stratum in program.strata() {
        loop {
            // Collect this round's consequences against the round-start
            // state, then apply them all at once (Jacobi iteration): the
            // derivation order — rule order, then match order — is then
            // independent of evaluation strategy.
            let mut candidates: Vec<(usize, Atom, Vec<Atom>, Vec<Atom>)> = Vec::new();
            for &rule_index in stratum {
                let rule = &program.rules()[rule_index];
                for substitution in HomomorphismSearch::new(&rule.body, &work).all() {
                    let negated: Vec<Atom> = rule
                        .negated
                        .iter()
                        .map(|literal| substitution.apply_atom(literal))
                        .collect();
                    // Negated predicates live in strictly lower strata (or
                    // the EDB), so `work` is already complete for them.
                    if negated.iter().any(|literal| work.contains(literal)) {
                        continue;
                    }
                    let fact = substitution.apply_atom(&rule.head);
                    if work.contains(&fact) {
                        continue;
                    }
                    let premises = rule
                        .body
                        .iter()
                        .map(|atom| substitution.apply_atom(atom))
                        .collect();
                    candidates.push((rule_index, fact, premises, negated));
                }
            }

            let mut changed = false;
            for (rule, fact, premise_facts, negated) in candidates {
                if !work.insert(fact.clone())? {
                    continue; // an earlier candidate this round already derived it
                }
                changed = true;
                let premises = premise_facts
                    .iter()
                    .map(|premise| resolve_premise(base, &step_of, premise))
                    .collect();
                step_of.insert(fact.clone(), certificate.len());
                certificate.steps.push(DerivationStep {
                    rule,
                    fact,
                    premises,
                    negated,
                });
            }
            if !changed {
                break;
            }
        }
    }
    Ok((work, certificate))
}

/// Names a ground premise fact: by stable base row id when the base holds
/// it, otherwise by the certificate step that derived it.
fn resolve_premise(base: &Instance, step_of: &BTreeMap<Atom, usize>, fact: &Atom) -> Premise {
    if base.contains(fact) {
        let row = base
            .relation(fact.predicate)
            .and_then(|relation| relation.find_row(&fact.args))
            .expect("base.contains implies a locatable row");
        Premise::Base {
            predicate: fact.predicate,
            row,
        }
    } else {
        Premise::Derived(
            *step_of
                .get(fact)
                .expect("premises matched against `work` are base or already derived"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::Term;

    fn edge(from: &str, to: &str) -> Atom {
        Atom::from_parts("E", vec![Term::constant(from), Term::constant(to)])
    }

    #[test]
    fn transitive_closure_saturates_a_cycle() {
        let program: DatalogProgram = "T(X, Y) :- E(X, Y).\n\
                                       T(X, Z) :- E(X, Y), T(Y, Z)."
            .parse()
            .unwrap();
        let base = Instance::from_atoms([edge("a", "b"), edge("b", "c"), edge("c", "a")]).unwrap();
        let (fixpoint, certificate) = naive_fixpoint(&program, &base).unwrap();
        // 3 edges + full 3x3 closure.
        assert_eq!(fixpoint.len(), 3 + 9);
        assert_eq!(certificate.len(), 9);
        // Every certificate fact is in the fixpoint, in derivation order.
        for fact in certificate.facts() {
            assert!(fixpoint.contains(fact));
        }
    }

    #[test]
    fn stratified_negation_evaluates_lower_strata_first() {
        let program: DatalogProgram = "T(X, Y) :- E(X, Y).\n\
                                       T(X, Z) :- E(X, Y), T(Y, Z).\n\
                                       Un(X, Y) :- N(X), N(Y), not T(X, Y)."
            .parse()
            .unwrap();
        let base = Instance::from_atoms([
            edge("a", "b"),
            Atom::from_parts("N", vec![Term::constant("a")]),
            Atom::from_parts("N", vec![Term::constant("b")]),
        ])
        .unwrap();
        let (fixpoint, _) = naive_fixpoint(&program, &base).unwrap();
        let un =
            |x: &str, y: &str| Atom::from_parts("Un", vec![Term::constant(x), Term::constant(y)]);
        assert!(!fixpoint.contains(&un("a", "b"))); // T(a, b) holds
        assert!(fixpoint.contains(&un("b", "a")));
        assert!(fixpoint.contains(&un("a", "a")));
        assert!(fixpoint.contains(&un("b", "b")));
    }

    #[test]
    fn fixpoint_is_deterministic_across_runs() {
        let program: DatalogProgram = "T(X, Z) :- E(X, Y), T(Y, Z).\n\
                                       T(X, Y) :- E(X, Y)."
            .parse()
            .unwrap();
        let base = Instance::from_atoms([edge("a", "b"), edge("b", "c"), edge("b", "d")]).unwrap();
        let (first, cert_a) = naive_fixpoint(&program, &base).unwrap();
        let (second, cert_b) = naive_fixpoint(&program, &base).unwrap();
        assert_eq!(first.to_atoms(), second.to_atoms());
        assert_eq!(cert_a, cert_b);
    }
}
