//! Datalog rules and stratified programs.

use crate::stratify::stratify;
use sac_common::syntax::{parse_statements, RawStatement};
use sac_common::{Atom, Error, Result, Symbol};
use sac_deps::Tgd;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::str::FromStr;

/// A single Datalog rule `head :- body, not negated`.
///
/// Rules are *safe*: every variable in the head and in negated literals must
/// occur in at least one positive body atom, and every rule has at least one
/// positive body atom.  Constants are allowed anywhere; labelled nulls are
/// not (they belong to chase instances, not programs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The derived atom.
    pub head: Atom,
    /// The positive body conjunction (never empty).
    pub body: Vec<Atom>,
    /// The negated body atoms, in source order.
    pub negated: Vec<Atom>,
}

impl Rule {
    /// Creates a rule with negated literals, validating safety.
    pub fn new(head: Atom, body: Vec<Atom>, negated: Vec<Atom>) -> Result<Rule> {
        let rule = Rule {
            head,
            body,
            negated,
        };
        rule.validate()?;
        Ok(rule)
    }

    /// Creates a purely positive rule, validating safety.
    pub fn positive(head: Atom, body: Vec<Atom>) -> Result<Rule> {
        Rule::new(head, body, Vec::new())
    }

    fn validate(&self) -> Result<()> {
        if self.body.is_empty() {
            return Err(Error::Malformed(format!(
                "rule for {} needs at least one positive body atom",
                self.head
            )));
        }
        for atom in self.atoms() {
            if atom.args.iter().any(|t| t.is_null()) {
                return Err(Error::Malformed(format!(
                    "rule atom {atom} contains a labelled null; rules range over \
                     constants and variables only"
                )));
            }
        }
        let positive: BTreeSet<Symbol> = self
            .body
            .iter()
            .flat_map(|atom| atom.variables_iter())
            .collect();
        for var in self.head.variables_iter() {
            if !positive.contains(&var) {
                return Err(Error::Malformed(format!(
                    "unsafe rule: head variable {} of {} does not occur in a \
                     positive body atom",
                    sac_common::resolve(var),
                    self.head
                )));
            }
        }
        for literal in &self.negated {
            for var in literal.variables_iter() {
                if !positive.contains(&var) {
                    return Err(Error::Malformed(format!(
                        "unsafe rule: variable {} of negated literal {} does not \
                         occur in a positive body atom",
                        sac_common::resolve(var),
                        literal
                    )));
                }
            }
        }
        Ok(())
    }

    /// All atoms of the rule: head, positive body, then negated literals.
    pub fn atoms(&self) -> impl Iterator<Item = &Atom> {
        std::iter::once(&self.head)
            .chain(self.body.iter())
            .chain(self.negated.iter())
    }

    /// Whether the rule has no negated literals.
    pub fn is_positive(&self) -> bool {
        self.negated.is_empty()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, atom) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{atom}")?;
        }
        for literal in &self.negated {
            write!(f, ", not {literal}")?;
        }
        write!(f, ".")
    }
}

impl TryFrom<RawStatement> for Rule {
    type Error = Error;

    fn try_from(statement: RawStatement) -> Result<Rule> {
        match statement {
            RawStatement::Rule {
                head,
                body,
                negated,
            } => Rule::new(head, body, negated),
            other => Err(Error::Malformed(format!(
                "expected a Datalog rule, found a {}",
                other.kind()
            ))),
        }
    }
}

impl FromStr for Rule {
    type Err = Error;

    fn from_str(input: &str) -> Result<Rule> {
        Rule::try_from(sac_common::syntax::parse_statement(input)?)
    }
}

/// A stratified Datalog program.
///
/// Construction validates every rule, checks that each predicate is used
/// with a consistent arity, and computes a stratification; programs whose
/// negation cycles through recursion are rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogProgram {
    rules: Vec<Rule>,
    /// Rule indices grouped by stratum, lowest first.  Within a stratum the
    /// original program order is preserved.
    strata: Vec<Vec<usize>>,
    /// Predicates that occur in some rule head (the intensional database).
    idb: BTreeSet<Symbol>,
}

impl DatalogProgram {
    /// Builds a program from rules, validating safety, arity consistency and
    /// stratifiability.
    pub fn new(rules: Vec<Rule>) -> Result<DatalogProgram> {
        if rules.is_empty() {
            return Err(Error::Malformed(
                "a Datalog program needs at least one rule".into(),
            ));
        }
        for rule in &rules {
            rule.validate()?;
        }
        let mut arities: BTreeMap<Symbol, usize> = BTreeMap::new();
        for atom in rules.iter().flat_map(Rule::atoms) {
            match arities.get(&atom.predicate) {
                Some(&seen) if seen != atom.arity() => {
                    return Err(Error::Malformed(format!(
                        "predicate {} used with arities {} and {}",
                        sac_common::resolve(atom.predicate),
                        seen,
                        atom.arity()
                    )));
                }
                Some(_) => {}
                None => {
                    arities.insert(atom.predicate, atom.arity());
                }
            }
        }
        let idb: BTreeSet<Symbol> = rules.iter().map(|rule| rule.head.predicate).collect();
        let strata = stratify(&rules, &idb)?;
        Ok(DatalogProgram { rules, strata, idb })
    }

    /// The program's rules in source order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Rule indices grouped by stratum, lowest stratum first.
    pub fn strata(&self) -> &[Vec<usize>] {
        &self.strata
    }

    /// The intensional predicates: those occurring in some rule head.
    pub fn idb_predicates(&self) -> &BTreeSet<Symbol> {
        &self.idb
    }

    /// The extensional predicates: body predicates never derived by a rule.
    pub fn edb_predicates(&self) -> BTreeSet<Symbol> {
        self.rules
            .iter()
            .flat_map(|rule| rule.body.iter().chain(rule.negated.iter()))
            .map(|atom| atom.predicate)
            .filter(|predicate| !self.idb.contains(predicate))
            .collect()
    }

    /// Whether the program uses no negation.
    pub fn is_positive(&self) -> bool {
        self.rules.iter().all(Rule::is_positive)
    }

    /// Builds a program from full tgds (one rule per head atom).
    ///
    /// Tgds with existential variables have no Datalog counterpart and are
    /// rejected.
    pub fn from_tgds(tgds: &[Tgd]) -> Result<DatalogProgram> {
        let mut rules = Vec::new();
        for tgd in tgds {
            if !tgd.is_full() {
                return Err(Error::Malformed(format!(
                    "tgd {tgd} has existential head variables; only full tgds \
                     translate to Datalog rules"
                )));
            }
            for head in &tgd.head {
                rules.push(Rule::positive(head.clone(), tgd.body.clone())?);
            }
        }
        DatalogProgram::new(rules)
    }

    /// Converts a positive program back to full tgds, one per rule.
    ///
    /// Returns `None` when the program uses negation, which tgds cannot
    /// express.
    pub fn to_tgds(&self) -> Option<Vec<Tgd>> {
        if !self.is_positive() {
            return None;
        }
        let tgds = self
            .rules
            .iter()
            .map(|rule| Tgd::new(rule.body.clone(), vec![rule.head.clone()]))
            .collect::<Result<Vec<Tgd>>>()
            .expect("safe positive rules are valid full tgds");
        Some(tgds)
    }
}

impl fmt::Display for DatalogProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{rule}")?;
        }
        Ok(())
    }
}

impl FromStr for DatalogProgram {
    type Err = Error;

    fn from_str(input: &str) -> Result<DatalogProgram> {
        let mut rules = Vec::new();
        for statement in parse_statements(input)? {
            match statement {
                rule @ RawStatement::Rule { .. } => rules.push(Rule::try_from(rule)?),
                other => {
                    return Err(Error::Malformed(format!(
                        "Datalog programs contain only rules; found a {} \
                         (facts belong to the database — see \
                         `sac_parser::parse_datalog_program` for mixed input)",
                        other.kind()
                    )));
                }
            }
        }
        DatalogProgram::new(rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::Term;

    fn program(input: &str) -> Result<DatalogProgram> {
        input.parse()
    }

    #[test]
    fn reachability_parses_and_stratifies_into_one_stratum() {
        let p = program("T(X, Y) :- E(X, Y).\nT(X, Z) :- E(X, Y), T(Y, Z).").unwrap();
        assert_eq!(p.rule_count(), 2);
        assert_eq!(p.strata(), &[vec![0, 1]]);
        assert!(p.is_positive());
        assert_eq!(p.idb_predicates().len(), 1);
        assert_eq!(p.edb_predicates().len(), 1);
    }

    #[test]
    fn negation_pushes_dependents_to_a_later_stratum() {
        let p = program(
            "T(X, Y) :- E(X, Y).\n\
             T(X, Z) :- E(X, Y), T(Y, Z).\n\
             Sep(X, Y) :- N(X), N(Y), not T(X, Y).",
        )
        .unwrap();
        assert_eq!(p.strata().len(), 2);
        assert_eq!(p.strata()[0], vec![0, 1]);
        assert_eq!(p.strata()[1], vec![2]);
        assert!(!p.is_positive());
    }

    #[test]
    fn negation_cycles_are_rejected() {
        let err = program("P(X) :- R(X), not Q(X).\nQ(X) :- R(X), not P(X).").unwrap_err();
        assert!(err.to_string().contains("negation"), "got: {err}");
    }

    #[test]
    fn unsafe_head_variable_is_rejected() {
        let err = program("P(X, Y) :- R(X).").unwrap_err();
        assert!(err.to_string().contains("unsafe"), "got: {err}");
    }

    #[test]
    fn unsafe_negated_variable_is_rejected() {
        let err = program("P(X) :- R(X), not S(X, Y).").unwrap_err();
        assert!(err.to_string().contains("unsafe"), "got: {err}");
    }

    #[test]
    fn rules_need_a_positive_body_atom() {
        let head = Atom::from_parts("P", vec![Term::constant("a")]);
        let err = Rule::positive(head, Vec::new()).unwrap_err();
        assert!(err.to_string().contains("positive body"), "got: {err}");
    }

    #[test]
    fn arity_mismatches_are_rejected() {
        let err = program("P(X) :- R(X).\nP(X, Y) :- R(X), R(Y).").unwrap_err();
        assert!(err.to_string().contains("arities"), "got: {err}");
    }

    #[test]
    fn facts_and_tgds_are_rejected_in_programs() {
        assert!(program("T(X, Y) :- E(X, Y).\nE(a, b).").is_err());
        assert!(program("E(X, Y) -> T(X, Y).").is_err());
    }

    #[test]
    fn tgd_round_trip_preserves_rules() {
        let p = program("T(X, Y) :- E(X, Y).\nT(X, Z) :- E(X, Y), T(Y, Z).").unwrap();
        let tgds = p.to_tgds().unwrap();
        assert_eq!(tgds.len(), 2);
        let back = DatalogProgram::from_tgds(&tgds).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn existential_tgds_do_not_translate() {
        let tgd =
            Tgd::try_from(sac_common::syntax::parse_statement("E(X, Y) -> E(Y, Z).").unwrap())
                .unwrap();
        assert!(DatalogProgram::from_tgds(&[tgd]).is_err());
    }

    #[test]
    fn display_follows_the_workspace_atom_notation() {
        let p = program(
            "T(X, Y) :- E(X, Y).\n\
             Sep(X, Y) :- N(X), N(Y), not T(X, Y).",
        )
        .unwrap();
        assert_eq!(
            p.to_string(),
            "T(?X, ?Y) :- E(?X, ?Y).\n\
             Sep(?X, ?Y) :- N(?X), N(?Y), not T(?X, ?Y)."
        );
    }
}
