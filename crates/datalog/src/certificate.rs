//! Derivation certificates: replayable provenance for Datalog answers.

use sac_common::{resolve, Atom, Symbol};
use std::fmt;

/// One premise of a derivation step.
///
/// Base facts are referenced by their stable, append-only row id inside the
/// base instance; derived facts by the index of the earlier step that
/// produced them.  Both references are compact and independent of the
/// engine that produced the certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Premise {
    /// A fact from the base instance: `predicate` relation, row `row`.
    Base {
        /// The predicate whose relation holds the fact.
        predicate: Symbol,
        /// The stable insertion-order row id within that relation.
        row: usize,
    },
    /// The fact derived by an earlier step of the same certificate.
    Derived(usize),
}

impl fmt::Display for Premise {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Premise::Base { predicate, row } => write!(f, "{}#{row}", resolve(*predicate)),
            Premise::Derived(step) => write!(f, "step {step}"),
        }
    }
}

/// One rule application: which rule fired, what it derived, and from what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivationStep {
    /// Index of the applied rule within the program.
    pub rule: usize,
    /// The derived ground fact.
    pub fact: Atom,
    /// One premise per positive body atom, in body order.
    pub premises: Vec<Premise>,
    /// The instantiated (ground) negated literals the rule relied on being
    /// absent, in rule order.  Empty for positive rules.
    pub negated: Vec<Atom>,
}

impl fmt::Display for DerivationStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule {} => {} <= [", self.rule, self.fact)?;
        for (i, premise) in self.premises.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{premise}")?;
        }
        write!(f, "]")?;
        for literal in &self.negated {
            write!(f, "; not {literal}")?;
        }
        Ok(())
    }
}

/// A topologically ordered derivation log.
///
/// Every step's `Derived` premises point strictly backwards, so replaying
/// the steps in order reconstructs exactly the facts the producer claims to
/// have derived.  The [`crate::check`] module performs that replay without
/// any engine machinery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Certificate {
    /// The derivation steps, in derivation order.
    pub steps: Vec<DerivationStep>,
}

impl Certificate {
    /// The number of derivation steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the certificate derives nothing.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The derived facts, in derivation order.
    pub fn facts(&self) -> impl Iterator<Item = &Atom> {
        self.steps.iter().map(|step| &step.fact)
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "#{i}: {step}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{intern, Term};

    #[test]
    fn display_is_compact_and_stable() {
        let step = DerivationStep {
            rule: 1,
            fact: Atom::from_parts("T", vec![Term::constant("a"), Term::constant("c")]),
            premises: vec![
                Premise::Base {
                    predicate: intern("E"),
                    row: 0,
                },
                Premise::Derived(0),
            ],
            negated: vec![Atom::from_parts("Blocked", vec![Term::constant("a")])],
        };
        let cert = Certificate { steps: vec![step] };
        assert_eq!(
            cert.to_string(),
            "#0: rule 1 => T(a, c) <= [E#0, step 0]; not Blocked(a)"
        );
    }
}
