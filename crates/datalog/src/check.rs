//! The standalone certificate checker.
//!
//! Replays a [`Certificate`] against a program and a base instance with no
//! engine machinery at all — just premise lookup and first-order matching.
//! Every deviation from a valid derivation is rejected fail-closed with a
//! specific [`CheckError`], so a verified certificate is a proof that each
//! recorded fact really follows from the base facts under the program.
//!
//! The negation check is two-phase: during replay each step's recorded
//! negated literals are checked to be the ground instantiation the rule
//! demands, and after replay each is checked to be absent from the final
//! model (base facts plus every derived fact).  For stratified programs the
//! final model is the perfect model, so absence at the end implies absence
//! at the step's stratum.

use crate::certificate::{Certificate, Premise};
use crate::program::DatalogProgram;
use sac_common::{Atom, Substitution};
use sac_storage::Instance;
use std::collections::BTreeSet;
use std::fmt;

/// Why a certificate was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A step names a rule index outside the program.
    UnknownRule {
        /// Offending step index.
        step: usize,
        /// The out-of-range rule index.
        rule: usize,
    },
    /// A step's derived fact contains variables or nulls.
    NotGround {
        /// Offending step index.
        step: usize,
    },
    /// A step records a different number of premises than its rule has
    /// positive body atoms.
    PremiseCount {
        /// Offending step index.
        step: usize,
        /// Positive body atoms of the named rule.
        expected: usize,
        /// Premises actually recorded.
        found: usize,
    },
    /// A `Derived` premise points at this step or a later one.
    ForwardReference {
        /// Offending step index.
        step: usize,
        /// The referenced step index.
        reference: usize,
    },
    /// A `Base` premise names a predicate or row the base instance lacks.
    MissingBaseFact {
        /// Offending step index.
        step: usize,
        /// The dangling premise.
        premise: Premise,
    },
    /// A premise fact does not match its rule's body atom under the
    /// substitution accumulated so far.
    PremiseMismatch {
        /// Offending step index.
        step: usize,
        /// Position of the premise within the step.
        position: usize,
    },
    /// Instantiating the rule head does not yield the recorded fact.
    HeadMismatch {
        /// Offending step index.
        step: usize,
    },
    /// A step's recorded negated literals disagree with its rule.
    NegatedMismatch {
        /// Offending step index.
        step: usize,
    },
    /// A recorded negated literal is actually present in the final model.
    NegatedFactPresent {
        /// Offending step index.
        step: usize,
        /// The present fact the step claimed was absent.
        fact: Atom,
    },
    /// The answer handed to [`verify_answer`] is not in the replayed model.
    AnswerNotDerived {
        /// The unsupported answer.
        fact: Atom,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::UnknownRule { step, rule } => {
                write!(f, "step {step}: rule index {rule} is outside the program")
            }
            CheckError::NotGround { step } => {
                write!(f, "step {step}: derived fact is not ground")
            }
            CheckError::PremiseCount {
                step,
                expected,
                found,
            } => write!(
                f,
                "step {step}: rule has {expected} positive body atoms but \
                 {found} premises were recorded"
            ),
            CheckError::ForwardReference { step, reference } => write!(
                f,
                "step {step}: premise references step {reference}, which is \
                 not strictly earlier"
            ),
            CheckError::MissingBaseFact { step, premise } => write!(
                f,
                "step {step}: base premise {premise} is not in the base instance"
            ),
            CheckError::PremiseMismatch { step, position } => write!(
                f,
                "step {step}: premise {position} does not match the rule's \
                 body atom under the accumulated substitution"
            ),
            CheckError::HeadMismatch { step } => write!(
                f,
                "step {step}: instantiated rule head differs from the recorded fact"
            ),
            CheckError::NegatedMismatch { step } => write!(
                f,
                "step {step}: recorded negated literals disagree with the rule"
            ),
            CheckError::NegatedFactPresent { step, fact } => write!(
                f,
                "step {step}: negated literal {fact} is present in the final model"
            ),
            CheckError::AnswerNotDerived { fact } => {
                write!(f, "answer {fact} is not derived by the certificate")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Replays `certificate` against `program` and `base`, returning the set of
/// derived facts on success.
///
/// The replay is fail-closed: any dangling premise, unification failure,
/// head mismatch, out-of-order reference or violated negated literal aborts
/// with the first [`CheckError`] encountered.
pub fn replay(
    program: &DatalogProgram,
    base: &Instance,
    certificate: &Certificate,
) -> Result<BTreeSet<Atom>, CheckError> {
    let rules = program.rules();
    let mut derived: Vec<Atom> = Vec::with_capacity(certificate.len());

    for (index, step) in certificate.steps.iter().enumerate() {
        let rule = rules.get(step.rule).ok_or(CheckError::UnknownRule {
            step: index,
            rule: step.rule,
        })?;
        if !step.fact.is_ground() {
            return Err(CheckError::NotGround { step: index });
        }
        if step.premises.len() != rule.body.len() {
            return Err(CheckError::PremiseCount {
                step: index,
                expected: rule.body.len(),
                found: step.premises.len(),
            });
        }
        let mut substitution = Substitution::new();
        for (position, (premise, pattern)) in step.premises.iter().zip(rule.body.iter()).enumerate()
        {
            let fact = match premise {
                Premise::Base { predicate, row } => {
                    let missing = CheckError::MissingBaseFact {
                        step: index,
                        premise: *premise,
                    };
                    let relation = base.relation(*predicate).ok_or(missing.clone())?;
                    let args = relation.row(*row).ok_or(missing)?;
                    Atom::new(*predicate, args)
                }
                Premise::Derived(reference) => {
                    if *reference >= index {
                        return Err(CheckError::ForwardReference {
                            step: index,
                            reference: *reference,
                        });
                    }
                    derived[*reference].clone()
                }
            };
            if !substitution.match_atom(pattern, &fact) {
                return Err(CheckError::PremiseMismatch {
                    step: index,
                    position,
                });
            }
        }
        if substitution.apply_atom(&rule.head) != step.fact {
            return Err(CheckError::HeadMismatch { step: index });
        }
        if step.negated.len() != rule.negated.len() {
            return Err(CheckError::NegatedMismatch { step: index });
        }
        for (recorded, literal) in step.negated.iter().zip(rule.negated.iter()) {
            if !recorded.is_ground() || substitution.apply_atom(literal) != *recorded {
                return Err(CheckError::NegatedMismatch { step: index });
            }
        }
        derived.push(step.fact.clone());
    }

    let model: BTreeSet<Atom> = derived.iter().cloned().collect();
    for (index, step) in certificate.steps.iter().enumerate() {
        for literal in &step.negated {
            if base.contains(literal) || model.contains(literal) {
                return Err(CheckError::NegatedFactPresent {
                    step: index,
                    fact: literal.clone(),
                });
            }
        }
    }
    Ok(model)
}

/// Checks a certificate, discarding the replayed model.
pub fn check_certificate(
    program: &DatalogProgram,
    base: &Instance,
    certificate: &Certificate,
) -> Result<(), CheckError> {
    replay(program, base, certificate).map(|_| ())
}

/// Checks that `certificate` is valid *and* supports the ground `answer`:
/// the answer must be a base fact or one of the replayed derivations.
pub fn verify_answer(
    program: &DatalogProgram,
    base: &Instance,
    certificate: &Certificate,
    answer: &Atom,
) -> Result<(), CheckError> {
    let model = replay(program, base, certificate)?;
    if base.contains(answer) || model.contains(answer) {
        Ok(())
    } else {
        Err(CheckError::AnswerNotDerived {
            fact: answer.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::DerivationStep;
    use crate::naive::naive_fixpoint;
    use sac_common::{intern, Term};

    fn reachability() -> (DatalogProgram, Instance) {
        let program: DatalogProgram = "T(X, Y) :- E(X, Y).\n\
                                       T(X, Z) :- E(X, Y), T(Y, Z)."
            .parse()
            .unwrap();
        let base = Instance::from_atoms([
            Atom::from_parts("E", vec![Term::constant("a"), Term::constant("b")]),
            Atom::from_parts("E", vec![Term::constant("b"), Term::constant("c")]),
        ])
        .unwrap();
        (program, base)
    }

    #[test]
    fn honest_certificates_replay_green() {
        let (program, base) = reachability();
        let (fixpoint, certificate) = naive_fixpoint(&program, &base).unwrap();
        let model = replay(&program, &base, &certificate).unwrap();
        assert_eq!(model.len() + 2, fixpoint.len());
        for fact in certificate.facts() {
            verify_answer(&program, &base, &certificate, fact).unwrap();
        }
    }

    #[test]
    fn dropped_premises_are_rejected() {
        let (program, base) = reachability();
        let (_, mut certificate) = naive_fixpoint(&program, &base).unwrap();
        certificate.steps[0].premises.clear();
        assert!(matches!(
            check_certificate(&program, &base, &certificate),
            Err(CheckError::PremiseCount { .. })
        ));
    }

    #[test]
    fn swapped_rule_ids_are_rejected() {
        let (program, base) = reachability();
        let (_, mut certificate) = naive_fixpoint(&program, &base).unwrap();
        // Step 0 fires the single-premise base rule; pointing it at the
        // two-premise recursive rule breaks the premise count.
        assert_eq!(certificate.steps[0].rule, 0);
        certificate.steps[0].rule = 1;
        assert!(check_certificate(&program, &base, &certificate).is_err());
    }

    #[test]
    fn forged_facts_are_rejected() {
        let (program, base) = reachability();
        let (_, mut certificate) = naive_fixpoint(&program, &base).unwrap();
        certificate.steps[0].fact =
            Atom::from_parts("T", vec![Term::constant("z"), Term::constant("z")]);
        assert!(matches!(
            check_certificate(&program, &base, &certificate),
            Err(CheckError::HeadMismatch { .. })
        ));
    }

    #[test]
    fn dangling_base_rows_are_rejected() {
        let (program, base) = reachability();
        let (_, mut certificate) = naive_fixpoint(&program, &base).unwrap();
        certificate.steps[0].premises[0] = Premise::Base {
            predicate: intern("E"),
            row: 99,
        };
        assert!(matches!(
            check_certificate(&program, &base, &certificate),
            Err(CheckError::MissingBaseFact { .. })
        ));
    }

    #[test]
    fn forward_references_are_rejected() {
        let (program, base) = reachability();
        let (_, mut certificate) = naive_fixpoint(&program, &base).unwrap();
        let last = certificate.len() - 1;
        for premise in &mut certificate.steps[0].premises {
            *premise = Premise::Derived(last);
        }
        assert!(matches!(
            check_certificate(&program, &base, &certificate),
            Err(CheckError::ForwardReference { .. })
        ));
    }

    #[test]
    fn violated_negated_literals_are_rejected() {
        let program: DatalogProgram = "Lonely(X) :- N(X), not E(X, X).".parse().unwrap();
        let base =
            Instance::from_atoms([Atom::from_parts("N", vec![Term::constant("a")])]).unwrap();
        let (_, certificate) = naive_fixpoint(&program, &base).unwrap();
        assert_eq!(certificate.len(), 1);
        check_certificate(&program, &base, &certificate).unwrap();

        // The same steps against a base where E(a, a) holds must fail the
        // absence check.
        let dirty = Instance::from_atoms([
            Atom::from_parts("N", vec![Term::constant("a")]),
            Atom::from_parts("E", vec![Term::constant("a"), Term::constant("a")]),
        ])
        .unwrap();
        assert!(matches!(
            check_certificate(&program, &dirty, &certificate),
            Err(CheckError::NegatedFactPresent { .. })
        ));
    }

    #[test]
    fn unsupported_answers_are_rejected() {
        let (program, base) = reachability();
        let (_, certificate) = naive_fixpoint(&program, &base).unwrap();
        let bogus = Atom::from_parts("T", vec![Term::constant("c"), Term::constant("a")]);
        assert!(matches!(
            verify_answer(&program, &base, &certificate, &bogus),
            Err(CheckError::AnswerNotDerived { .. })
        ));
    }

    #[test]
    fn tampered_derivation_steps_are_rejected_not_ignored() {
        let (program, base) = reachability();
        let (_, mut certificate) = naive_fixpoint(&program, &base).unwrap();
        let step = DerivationStep {
            rule: 0,
            fact: Atom::from_parts("T", vec![Term::variable("X"), Term::constant("b")]),
            premises: vec![Premise::Base {
                predicate: intern("E"),
                row: 0,
            }],
            negated: Vec::new(),
        };
        certificate.steps.push(step);
        assert!(matches!(
            check_certificate(&program, &base, &certificate),
            Err(CheckError::NotGround { .. })
        ));
    }
}
