//! # sac-parser
//!
//! A small Datalog-style text syntax for queries, dependencies and databases,
//! used by the examples and the experiment binaries.
//!
//! Conventions (Prolog/Datalog style):
//! * identifiers starting with an **uppercase** letter or `_` are variables,
//! * identifiers starting with a lowercase letter or a digit are constants,
//! * predicates are identifiers (any case) applied to a parenthesised,
//!   comma-separated argument list.
//!
//! Grammar summary:
//! ```text
//! query  :=  name(V1, …, Vk) :- atom, …, atom .        (k may be 0: `name() :- …`)
//! tgd    :=  atom, …, atom -> atom, …, atom .
//! egd    :=  atom, …, atom -> V = W .
//! fact   :=  atom .                                     (all-constant atom)
//! ```
//!
//! The tokenizer and raw statement grammar live in [`sac_common::syntax`],
//! which also powers the `FromStr` impls on [`ConjunctiveQuery`],
//! [`Tgd`], [`Egd`] and [`Instance`] — single statements parse with plain
//! `str::parse`, while this crate assembles whole programs:
//!
//! ```
//! use sac_query::ConjunctiveQuery;
//! let q: ConjunctiveQuery = "q(X) :- R(X, Y).".parse().unwrap();
//! assert_eq!(q.size(), 1);
//! ```
//!
//! [`ConjunctiveQuery`]: sac_query::ConjunctiveQuery
//! [`Tgd`]: sac_deps::Tgd
//! [`Egd`]: sac_deps::Egd
//! [`Instance`]: sac_storage::Instance
//!
//! ```
//! use sac_parser::{parse_query, parse_tgd, parse_database};
//! let q = parse_query("q(X, Y) :- Interest(X, Z), Class(Y, Z), Owns(X, Y).").unwrap();
//! assert_eq!(q.size(), 3);
//! let tgd = parse_tgd("Interest(X, Z), Class(Y, Z) -> Owns(X, Y).").unwrap();
//! assert!(tgd.is_full());
//! let db = parse_database("Interest(alice, jazz). Class(kind_of_blue, jazz).").unwrap();
//! assert_eq!(db.len(), 2);
//! ```

mod parse;

pub use parse::{
    parse_database, parse_datalog_program, parse_egd, parse_program, parse_query, parse_tgd,
    Program,
};
