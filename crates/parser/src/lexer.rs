//! Tokenizer for the Datalog-style syntax.

use sac_common::{Error, Result};

/// A token with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier (predicate, variable or constant name).
    Ident(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-`
    ColonDash,
    /// `->`
    Arrow,
    /// `=`
    Equals,
}

/// Tokenizes the input; `%`-to-end-of-line comments are skipped.
pub fn tokenize(input: &str) -> Result<Vec<(Token, usize)>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push((Token::LParen, i));
                i += 1;
            }
            ')' => {
                tokens.push((Token::RParen, i));
                i += 1;
            }
            ',' => {
                tokens.push((Token::Comma, i));
                i += 1;
            }
            '.' => {
                tokens.push((Token::Dot, i));
                i += 1;
            }
            '=' => {
                tokens.push((Token::Equals, i));
                i += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    tokens.push((Token::ColonDash, i));
                    i += 2;
                } else {
                    return Err(Error::Parse {
                        message: "expected `:-`".into(),
                        offset: i,
                    });
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push((Token::Arrow, i));
                    i += 2;
                } else {
                    return Err(Error::Parse {
                        message: "expected `->`".into(),
                        offset: i,
                    });
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_alphanumeric() || c == '_' || c == '*' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push((Token::Ident(input[start..i].to_owned()), start));
            }
            other => {
                return Err(Error::Parse {
                    message: format!("unexpected character `{other}`"),
                    offset: i,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_rule() {
        let tokens = tokenize("R(X, y) -> S(X).").unwrap();
        assert_eq!(tokens.len(), 12);
        assert_eq!(tokens[0].0, Token::Ident("R".into()));
        assert!(tokens.iter().any(|(t, _)| *t == Token::Arrow));
        assert_eq!(tokens.last().unwrap().0, Token::Dot);
    }

    #[test]
    fn comments_are_skipped() {
        let tokens = tokenize("% a comment\nR(a).").unwrap();
        assert_eq!(tokens[0].0, Token::Ident("R".into()));
    }

    #[test]
    fn colon_dash_and_equals() {
        let tokens = tokenize("q() :- R(X, Y), X = Y.").unwrap();
        assert!(tokens.iter().any(|(t, _)| *t == Token::ColonDash));
        assert!(tokens.iter().any(|(t, _)| *t == Token::Equals));
    }

    #[test]
    fn bad_characters_are_reported_with_offsets() {
        let err = tokenize("R(a) & S(b)").unwrap_err();
        match err {
            Error::Parse { offset, .. } => assert_eq!(offset, 5),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn lone_dash_is_an_error() {
        assert!(tokenize("R(a) - S(b)").is_err());
        assert!(tokenize("R(a) : S(b)").is_err());
    }
}
