//! Semantic assembly of parsed programs.
//!
//! The tokenizer and the raw statement grammar live in
//! [`sac_common::syntax`]; this module applies the semantic rules of each
//! statement kind (variables-only query heads, ground facts, dependency
//! well-formedness) and collects the results into a [`Program`].

use sac_common::syntax::{parse_statements_located, RawStatement};
use sac_common::{Error, Result};
use sac_datalog::{DatalogProgram, Rule};
use sac_deps::{Egd, Tgd};
use sac_query::ConjunctiveQuery;
use sac_storage::Instance;

/// A parsed program: any mix of queries, tgds, egds and facts.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Named queries, in order of appearance.
    pub queries: Vec<ConjunctiveQuery>,
    /// Tgds, in order of appearance.
    pub tgds: Vec<Tgd>,
    /// Egds, in order of appearance.
    pub egds: Vec<Egd>,
    /// Ground facts, collected into an instance.
    pub database: Instance,
}

impl Program {
    /// Adds one raw statement, delegating the semantic validation to the
    /// same `TryFrom<RawStatement>` conversions that power the `FromStr`
    /// impls — the program parser and `str::parse` can never diverge.
    fn push(&mut self, statement: RawStatement) -> Result<()> {
        match statement {
            rule @ RawStatement::Rule { .. } => {
                self.queries.push(ConjunctiveQuery::try_from(rule)?);
            }
            tgd @ RawStatement::Tgd { .. } => {
                self.tgds.push(Tgd::try_from(tgd)?);
            }
            egd @ RawStatement::Egd { .. } => {
                self.egds.push(Egd::try_from(egd)?);
            }
            RawStatement::Fact(atom) => {
                if !atom.is_ground() {
                    return Err(Error::Malformed(format!(
                        "facts must be ground (constants only), found `{atom}`"
                    )));
                }
                self.database
                    .insert(atom)
                    .map_err(|e| Error::Malformed(format!("invalid fact: {e}")))?;
            }
        }
        Ok(())
    }
}

/// Parses a whole program (queries, dependencies and facts in any order).
/// Semantic failures (constant query heads, non-ground facts, malformed
/// dependencies) are reported as positioned parse errors at the offending
/// statement.
pub fn parse_program(input: &str) -> Result<Program> {
    let mut program = Program::default();
    for (statement, offset) in parse_statements_located(input)? {
        program
            .push(statement)
            .map_err(|e| Error::parse_at(e.to_string(), input, offset))?;
    }
    Ok(program)
}

/// Parses a Datalog program together with its base facts.
///
/// Rule statements (`head :- body.`, optionally with `not` literals) become
/// the [`DatalogProgram`]; ground facts become the base [`Instance`].  Unlike
/// [`parse_program`], dependencies are rejected — a Datalog source is rules
/// and facts only — and the rule set must be safe and stratifiable, which is
/// validated here so the caller never holds an unevaluable program.
///
/// ```
/// use sac_parser::parse_datalog_program;
/// let (program, base) = parse_datalog_program(
///     "E(a, b). E(b, c).
///      T(X, Y) :- E(X, Y).
///      T(X, Z) :- E(X, Y), T(Y, Z).",
/// )
/// .unwrap();
/// assert_eq!(program.rule_count(), 2);
/// assert_eq!(base.len(), 2);
/// ```
pub fn parse_datalog_program(input: &str) -> Result<(DatalogProgram, Instance)> {
    let mut rules = Vec::new();
    let mut base = Instance::default();
    for (statement, offset) in parse_statements_located(input)? {
        match statement {
            rule @ RawStatement::Rule { .. } => {
                let rule = Rule::try_from(rule)
                    .map_err(|e| Error::parse_at(e.to_string(), input, offset))?;
                rules.push(rule);
            }
            RawStatement::Fact(atom) => {
                if !atom.is_ground() {
                    return Err(Error::parse_at(
                        format!("facts must be ground (constants only), found `{atom}`"),
                        input,
                        offset,
                    ));
                }
                base.insert(atom)
                    .map_err(|e| Error::parse_at(format!("invalid fact: {e}"), input, offset))?;
            }
            RawStatement::Tgd { .. } | RawStatement::Egd { .. } => {
                return Err(Error::parse_at(
                    "datalog programs contain only rules and facts, found a dependency",
                    input,
                    offset,
                ));
            }
        }
    }
    let program =
        DatalogProgram::new(rules).map_err(|e| Error::parse_at(e.to_string(), input, 0))?;
    Ok((program, base))
}

/// Parses a single conjunctive query.  Equivalent to
/// `input.parse::<ConjunctiveQuery>()` when the input holds exactly one
/// statement.
pub fn parse_query(input: &str) -> Result<ConjunctiveQuery> {
    let program = parse_program(input)?;
    program
        .queries
        .into_iter()
        .next()
        .ok_or_else(|| Error::parse_at("expected a query", input, 0))
}

/// Parses a single tgd.  Equivalent to `input.parse::<Tgd>()` when the input
/// holds exactly one statement.
pub fn parse_tgd(input: &str) -> Result<Tgd> {
    let program = parse_program(input)?;
    program
        .tgds
        .into_iter()
        .next()
        .ok_or_else(|| Error::parse_at("expected a tgd", input, 0))
}

/// Parses a single egd.  Equivalent to `input.parse::<Egd>()` when the input
/// holds exactly one statement.
pub fn parse_egd(input: &str) -> Result<Egd> {
    let program = parse_program(input)?;
    program
        .egds
        .into_iter()
        .next()
        .ok_or_else(|| Error::parse_at("expected an egd", input, 0))
}

/// Parses a database (a list of ground facts).  Unlike
/// `input.parse::<Instance>()`, valid non-fact statements (queries,
/// dependencies) are parsed and discarded rather than rejected, so a full
/// well-formed program can serve as a database source; statements that fail
/// validation still error.
pub fn parse_database(input: &str) -> Result<Instance> {
    Ok(parse_program(input)?.database)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};

    #[test]
    fn parses_example1_query() {
        let q = parse_query("q(X, Y) :- Interest(X, Z), Class(Y, Z), Owns(X, Y).").unwrap();
        assert_eq!(q.size(), 3);
        assert_eq!(q.head.len(), 2);
        assert_eq!(q.name.as_deref(), Some("q"));
        assert!(q.constants().is_empty());
    }

    #[test]
    fn parses_boolean_queries() {
        let q = parse_query("check() :- R(X, a), S(X).").unwrap();
        assert!(q.is_boolean());
        assert!(q.constants().contains(&intern("a")));
    }

    #[test]
    fn parses_tgds_with_existentials() {
        let t = parse_tgd("Person(X) -> HasParent(X, Z).").unwrap();
        assert!(!t.is_full());
        assert_eq!(t.existential_variables().len(), 1);
        let full = parse_tgd("Interest(X, Z), Class(Y, Z) -> Owns(X, Y).").unwrap();
        assert!(full.is_full());
    }

    #[test]
    fn parses_egds_and_keys() {
        let e = parse_egd("R(X, Y), R(X, Z) -> Y = Z.").unwrap();
        assert_eq!(e.body.len(), 2);
        assert_eq!(e.left, intern("Y"));
        assert_eq!(e.right, intern("Z"));
    }

    #[test]
    fn parses_facts_into_a_database() {
        let db = parse_database("Interest(alice, jazz). Class(kind_of_blue, jazz).").unwrap();
        assert_eq!(db.len(), 2);
        assert!(db.contains(&atom!("Interest", cst "alice", cst "jazz")));
    }

    #[test]
    fn parses_a_mixed_program() {
        let src = "
            % Example 1, end to end.
            Interest(alice, jazz).
            Class(kind_of_blue, jazz).
            Interest(X, Z), Class(Y, Z) -> Owns(X, Y).
            q(X, Y) :- Interest(X, Z), Class(Y, Z), Owns(X, Y).
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.database.len(), 2);
        assert_eq!(p.tgds.len(), 1);
        assert_eq!(p.queries.len(), 1);
        assert!(p.egds.is_empty());
    }

    #[test]
    fn case_determines_variables_vs_constants() {
        let q = parse_query("q() :- R(X, x, _tmp).").unwrap();
        let atom = &q.body[0];
        assert!(atom.args[0].is_variable());
        assert!(atom.args[1].is_constant());
        assert!(atom.args[2].is_variable());
    }

    #[test]
    fn reports_errors_with_positions() {
        assert!(parse_query("q(X) :- R(X,").is_err());
        assert!(parse_database("R(X).").is_err()); // non-ground fact
        assert!(parse_program("R(a) S(b).").is_err());
        assert!(parse_query("q(a) :- R(a).").is_err()); // constant in head

        // Positions are line/column-accurate, not just byte offsets.
        let err = parse_program("R(a).\nS(b) & T(c).").unwrap_err();
        let sac_common::Error::Parse { line, column, .. } = err else {
            panic!("expected a parse error, got {err:?}");
        };
        assert_eq!((line, column), (2, 6));

        // Semantic failures point at the offending statement too.
        let err = parse_program("R(a).\nq(a) :- R(a).").unwrap_err();
        let sac_common::Error::Parse { line, message, .. } = err else {
            panic!("expected a positioned error, got {err:?}");
        };
        assert_eq!(line, 2);
        assert!(message.contains("variables"), "got {message}");
    }

    #[test]
    fn parse_errors_are_std_errors_with_positions_in_the_message() {
        let err = parse_program("q(X) :- R(X,").unwrap_err();
        let dynamic: &dyn std::error::Error = &err;
        assert!(dynamic.to_string().contains("line 1"));
    }

    #[test]
    fn malformed_dependencies_are_rejected() {
        assert!(parse_program("R(X) -> Y = Z.").is_err()); // egd vars not in body
        assert!(parse_program("R(X), R(X, Y) -> S(X).").is_err()); // arity clash
    }

    #[test]
    fn parses_datalog_rules_and_facts_together() {
        let (program, base) = parse_datalog_program(
            "E(a, b). E(b, c).
             T(X, Y) :- E(X, Y).
             T(X, Z) :- E(X, Y), T(Y, Z).
             Isolated(X) :- N(X), not T(X, X).
             N(a).",
        )
        .unwrap();
        assert_eq!(program.rule_count(), 3);
        assert_eq!(program.strata().len(), 2);
        assert_eq!(base.len(), 3);
    }

    #[test]
    fn datalog_programs_reject_dependencies_and_bad_rules() {
        // A tgd is not a Datalog statement.
        let err = parse_datalog_program("E(a, b).\nE(X, Y) -> E(Y, X).").unwrap_err();
        assert!(err.to_string().contains("dependency"), "got {err}");
        // Unsafe rules are positioned parse errors, not panics downstream.
        assert!(parse_datalog_program("P(X) :- Q(Y).").is_err());
        // Unstratifiable negation is rejected at parse time.
        let err = parse_datalog_program("P(X) :- E(X), not P(X).").unwrap_err();
        assert!(err.to_string().contains("stratifiable"), "got {err}");
    }

    #[test]
    fn round_trip_through_display() {
        let q = parse_query("q(X) :- Interest(X, Z), Class(Y, Z).").unwrap();
        let printed = format!("{q}");
        assert!(printed.contains("Interest"));
        assert!(printed.contains("Class"));
    }
}
