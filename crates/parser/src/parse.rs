//! Recursive-descent parser for queries, dependencies and databases.

use crate::lexer::{tokenize, Token};
use sac_common::{intern, Atom, Error, Result, Term};
use sac_deps::{Egd, Tgd};
use sac_query::ConjunctiveQuery;
use sac_storage::Instance;

/// A parsed program: any mix of queries, tgds, egds and facts.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Named queries, in order of appearance.
    pub queries: Vec<ConjunctiveQuery>,
    /// Tgds, in order of appearance.
    pub tgds: Vec<Tgd>,
    /// Egds, in order of appearance.
    pub egds: Vec<Egd>,
    /// Ground facts, collected into an instance.
    pub database: Instance,
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: tokenize(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|(_, o)| *o)
            .unwrap_or(0)
    }

    fn error(&self, message: &str) -> Error {
        Error::Parse {
            message: message.to_owned(),
            offset: self.offset(),
        }
    }

    fn eat(&mut self, expected: &Token) -> Result<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {expected:?}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().cloned() {
            Some(Token::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error("expected an identifier")),
        }
    }

    fn term_of(name: &str) -> Term {
        let first = name.chars().next().unwrap_or('a');
        if first.is_uppercase() || first == '_' {
            Term::Variable(intern(name))
        } else {
            Term::Constant(intern(name))
        }
    }

    /// Parses `Pred(arg, …, arg)`; the argument list may be empty.
    fn atom(&mut self) -> Result<Atom> {
        let predicate = self.ident()?;
        self.eat(&Token::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                let name = self.ident()?;
                args.push(Self::term_of(&name));
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.eat(&Token::RParen)?;
        Ok(Atom::from_parts(&predicate, args))
    }

    fn atom_list(&mut self) -> Result<Vec<Atom>> {
        let mut atoms = vec![self.atom()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            atoms.push(self.atom()?);
        }
        Ok(atoms)
    }

    /// Parses one statement ending with `.`.
    fn statement(&mut self, program: &mut Program) -> Result<()> {
        // Look ahead: a query starts with `name(args) :-`.
        let start = self.pos;
        let first_atom = self.atom()?;
        match self.peek() {
            Some(Token::ColonDash) => {
                // Query: head variables come from the pseudo-atom.
                self.pos += 1;
                let head: Result<Vec<_>> = first_atom
                    .args
                    .iter()
                    .map(|t| {
                        t.as_variable()
                            .ok_or_else(|| self.error("query heads may only contain variables"))
                    })
                    .collect();
                let body = self.atom_list()?;
                self.eat(&Token::Dot)?;
                let query = ConjunctiveQuery::new(head?, body)
                    .map_err(|e| self.error(&format!("invalid query: {e}")))?
                    .named(&first_atom.predicate.as_str());
                program.queries.push(query);
                Ok(())
            }
            Some(Token::Dot) => {
                // Ground fact.
                self.pos += 1;
                if !first_atom.is_ground() {
                    return Err(self.error("facts must be ground (constants only)"));
                }
                program
                    .database
                    .insert(first_atom)
                    .map_err(|e| self.error(&format!("invalid fact: {e}")))?;
                Ok(())
            }
            Some(Token::Comma) | Some(Token::Arrow) => {
                // Dependency: re-parse the body from `start`.
                self.pos = start;
                let body = self.atom_list()?;
                self.eat(&Token::Arrow)?;
                // Egd if the right-hand side is `V = W`.
                let rhs_start = self.pos;
                if let Ok(left_name) = self.ident() {
                    if self.peek() == Some(&Token::Equals) {
                        self.pos += 1;
                        let right_name = self.ident()?;
                        self.eat(&Token::Dot)?;
                        let left = Self::term_of(&left_name)
                            .as_variable()
                            .ok_or_else(|| self.error("egd equates variables"))?;
                        let right = Self::term_of(&right_name)
                            .as_variable()
                            .ok_or_else(|| self.error("egd equates variables"))?;
                        let egd = Egd::new(body, left, right)
                            .map_err(|e| self.error(&format!("invalid egd: {e}")))?;
                        program.egds.push(egd);
                        return Ok(());
                    }
                }
                self.pos = rhs_start;
                let head = self.atom_list()?;
                self.eat(&Token::Dot)?;
                let tgd =
                    Tgd::new(body, head).map_err(|e| self.error(&format!("invalid tgd: {e}")))?;
                program.tgds.push(tgd);
                Ok(())
            }
            _ => Err(self.error("expected `.`, `:-`, `,` or `->`")),
        }
    }

    fn program(&mut self) -> Result<Program> {
        let mut program = Program::default();
        while self.peek().is_some() {
            self.statement(&mut program)?;
        }
        Ok(program)
    }
}

/// Parses a whole program (queries, dependencies and facts in any order).
pub fn parse_program(input: &str) -> Result<Program> {
    Parser::new(input)?.program()
}

/// Parses a single conjunctive query.
pub fn parse_query(input: &str) -> Result<ConjunctiveQuery> {
    let program = parse_program(input)?;
    program
        .queries
        .into_iter()
        .next()
        .ok_or_else(|| Error::Parse {
            message: "expected a query".into(),
            offset: 0,
        })
}

/// Parses a single tgd.
pub fn parse_tgd(input: &str) -> Result<Tgd> {
    let program = parse_program(input)?;
    program.tgds.into_iter().next().ok_or_else(|| Error::Parse {
        message: "expected a tgd".into(),
        offset: 0,
    })
}

/// Parses a single egd.
pub fn parse_egd(input: &str) -> Result<Egd> {
    let program = parse_program(input)?;
    program.egds.into_iter().next().ok_or_else(|| Error::Parse {
        message: "expected an egd".into(),
        offset: 0,
    })
}

/// Parses a database (a list of ground facts).
pub fn parse_database(input: &str) -> Result<Instance> {
    Ok(parse_program(input)?.database)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::atom;

    #[test]
    fn parses_example1_query() {
        let q = parse_query("q(X, Y) :- Interest(X, Z), Class(Y, Z), Owns(X, Y).").unwrap();
        assert_eq!(q.size(), 3);
        assert_eq!(q.head.len(), 2);
        assert_eq!(q.name.as_deref(), Some("q"));
        assert!(q.constants().is_empty());
    }

    #[test]
    fn parses_boolean_queries() {
        let q = parse_query("check() :- R(X, a), S(X).").unwrap();
        assert!(q.is_boolean());
        assert!(q.constants().contains(&intern("a")));
    }

    #[test]
    fn parses_tgds_with_existentials() {
        let t = parse_tgd("Person(X) -> HasParent(X, Z).").unwrap();
        assert!(!t.is_full());
        assert_eq!(t.existential_variables().len(), 1);
        let full = parse_tgd("Interest(X, Z), Class(Y, Z) -> Owns(X, Y).").unwrap();
        assert!(full.is_full());
    }

    #[test]
    fn parses_egds_and_keys() {
        let e = parse_egd("R(X, Y), R(X, Z) -> Y = Z.").unwrap();
        assert_eq!(e.body.len(), 2);
        assert_eq!(e.left, intern("Y"));
        assert_eq!(e.right, intern("Z"));
    }

    #[test]
    fn parses_facts_into_a_database() {
        let db = parse_database("Interest(alice, jazz). Class(kind_of_blue, jazz).").unwrap();
        assert_eq!(db.len(), 2);
        assert!(db.contains(&atom!("Interest", cst "alice", cst "jazz")));
    }

    #[test]
    fn parses_a_mixed_program() {
        let src = "
            % Example 1, end to end.
            Interest(alice, jazz).
            Class(kind_of_blue, jazz).
            Interest(X, Z), Class(Y, Z) -> Owns(X, Y).
            q(X, Y) :- Interest(X, Z), Class(Y, Z), Owns(X, Y).
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.database.len(), 2);
        assert_eq!(p.tgds.len(), 1);
        assert_eq!(p.queries.len(), 1);
        assert!(p.egds.is_empty());
    }

    #[test]
    fn case_determines_variables_vs_constants() {
        let q = parse_query("q() :- R(X, x, _tmp).").unwrap();
        let atom = &q.body[0];
        assert!(atom.args[0].is_variable());
        assert!(atom.args[1].is_constant());
        assert!(atom.args[2].is_variable());
    }

    #[test]
    fn reports_errors_with_positions() {
        assert!(parse_query("q(X) :- R(X,").is_err());
        assert!(parse_database("R(X).").is_err()); // non-ground fact
        assert!(parse_program("R(a) S(b).").is_err());
        assert!(parse_query("q(a) :- R(a).").is_err()); // constant in head
    }

    #[test]
    fn malformed_dependencies_are_rejected() {
        assert!(parse_program("R(X) -> Y = Z.").is_err()); // egd vars not in body
        assert!(parse_program("R(X), R(X, Y) -> S(X).").is_err()); // arity clash
    }

    #[test]
    fn round_trip_through_display() {
        let q = parse_query("q(X) :- Interest(X, Z), Class(Y, Z).").unwrap();
        let printed = format!("{q}");
        assert!(printed.contains("Interest"));
        assert!(printed.contains("Class"));
    }
}
