//! The restricted (standard) chase for tgds.

use crate::budget::ChaseBudget;
use sac_common::{FreshSource, Substitution, Term};
use sac_deps::Tgd;
use sac_query::{ConjunctiveQuery, FrozenQuery, HomomorphismSearch};
use sac_storage::Instance;
use std::ops::ControlFlow;

/// The result of a tgd chase run.
#[derive(Debug, Clone)]
pub struct TgdChaseResult {
    /// The chased instance (a prefix of the full chase if `terminated` is
    /// false).
    pub instance: Instance,
    /// Whether the chase reached a fixpoint (every tgd satisfied).
    pub terminated: bool,
    /// The number of chase steps (tgd firings) performed.
    pub steps: usize,
}

impl TgdChaseResult {
    /// Convenience: `true` iff the chase terminated and the instance hence
    /// satisfies the dependencies.
    pub fn is_model(&self) -> bool {
        self.terminated
    }
}

/// Runs the restricted chase of `instance` under `tgds` within `budget`.
///
/// A tgd fires on a trigger (a homomorphism of its body) only if the trigger
/// cannot be extended to a homomorphism of body ∧ head — the *restricted*
/// chase condition, which keeps the result small and matches the paper's
/// usage (any chase result is as good as any other for containment purposes,
/// Lemma 1 and the surrounding discussion).
pub fn tgd_chase(instance: &Instance, tgds: &[Tgd], budget: ChaseBudget) -> TgdChaseResult {
    let mut current = instance.clone();
    let mut fresh = FreshSource::starting_after_null(current.max_null_label().unwrap_or(0));
    let mut steps = 0usize;

    loop {
        if budget.exceeded(steps, current.len()) {
            return TgdChaseResult {
                instance: current,
                terminated: false,
                steps,
            };
        }
        match find_applicable_trigger(&current, tgds) {
            None => {
                return TgdChaseResult {
                    instance: current,
                    terminated: true,
                    steps,
                }
            }
            Some((tgd_idx, trigger)) => {
                apply_trigger(&mut current, &tgds[tgd_idx], &trigger, &mut fresh);
                steps += 1;
            }
        }
    }
}

/// Chases the canonical database of a query (Lemma 1's `chase(q, Σ)`).
///
/// Returns the chase result together with the frozen query (which records the
/// canonical head tuple `c(x̄)`).
pub fn tgd_chase_query(
    query: &ConjunctiveQuery,
    tgds: &[Tgd],
    budget: ChaseBudget,
) -> (TgdChaseResult, FrozenQuery) {
    let frozen = FrozenQuery::freeze(query);
    let result = tgd_chase(&frozen.instance, tgds, budget);
    (result, frozen)
}

/// Finds an *active* trigger: a tgd and a homomorphism of its body into the
/// instance that cannot be extended to satisfy the head.
fn find_applicable_trigger(instance: &Instance, tgds: &[Tgd]) -> Option<(usize, Substitution)> {
    for (i, tgd) in tgds.iter().enumerate() {
        let mut found: Option<Substitution> = None;
        HomomorphismSearch::new(&tgd.body, instance).for_each(|h| {
            if head_satisfied(instance, tgd, h) {
                ControlFlow::Continue(())
            } else {
                found = Some(h.clone());
                ControlFlow::Break(())
            }
        });
        if let Some(h) = found {
            return Some((i, h));
        }
    }
    None
}

/// Whether the head of `tgd` is already satisfied for the trigger `h` (i.e.
/// `h` restricted to the frontier extends to a homomorphism of the head).
fn head_satisfied(instance: &Instance, tgd: &Tgd, h: &Substitution) -> bool {
    // Restrict h to the frontier variables; existential variables must remain
    // free for the head search.
    let frontier = tgd.frontier_variables();
    let restricted = Substitution::from_pairs(
        frontier
            .iter()
            .filter_map(|v| h.get_var(*v).map(|t| (Term::Variable(*v), t))),
    );
    HomomorphismSearch::new(&tgd.head, instance)
        .with_initial(restricted)
        .exists()
}

/// Fires `tgd` on `trigger`, adding the head atoms with fresh nulls for the
/// existential variables.
fn apply_trigger(
    instance: &mut Instance,
    tgd: &Tgd,
    trigger: &Substitution,
    fresh: &mut FreshSource,
) {
    let mut extended = trigger.clone();
    for z in tgd.existential_variables() {
        let null = fresh.fresh_null();
        let bound = extended.bind_var(z, null);
        debug_assert!(bound, "existential variable was already bound");
    }
    for atom in &tgd.head {
        let fact = extended.apply_atom(atom);
        debug_assert!(fact.is_ground() || fact.variables().is_empty());
        instance
            .insert(fact)
            .expect("chase preserves arity consistency");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};
    use sac_query::evaluate_boolean;

    fn collector_tgd() -> Tgd {
        Tgd::new(
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
            ],
            vec![atom!("Owns", var "x", var "y")],
        )
        .unwrap()
    }

    #[test]
    fn example1_chase_adds_owns_atoms() {
        let db = Instance::from_atoms(vec![
            atom!("Interest", cst "alice", cst "jazz"),
            atom!("Class", cst "kind_of_blue", cst "jazz"),
        ])
        .unwrap();
        let result = tgd_chase(&db, &[collector_tgd()], ChaseBudget::small());
        assert!(result.terminated);
        assert_eq!(result.steps, 1);
        assert!(result
            .instance
            .contains(&atom!("Owns", cst "alice", cst "kind_of_blue")));
    }

    #[test]
    fn chase_is_idempotent_on_models() {
        let db = Instance::from_atoms(vec![
            atom!("Interest", cst "a", cst "s"),
            atom!("Class", cst "r", cst "s"),
            atom!("Owns", cst "a", cst "r"),
        ])
        .unwrap();
        let result = tgd_chase(&db, &[collector_tgd()], ChaseBudget::small());
        assert!(result.terminated);
        assert_eq!(result.steps, 0);
        assert_eq!(result.instance.len(), db.len());
    }

    #[test]
    fn existential_tgds_invent_nulls() {
        let tgd = Tgd::new(
            vec![atom!("Person", var "x")],
            vec![atom!("HasParent", var "x", var "z")],
        )
        .unwrap();
        let db = Instance::from_atoms(vec![atom!("Person", cst "ann")]).unwrap();
        let result = tgd_chase(&db, &[tgd], ChaseBudget::small());
        assert!(result.terminated);
        assert_eq!(result.steps, 1);
        let parents: Vec<_> = result
            .instance
            .atoms()
            .filter(|a| a.predicate == intern("HasParent"))
            .collect();
        assert_eq!(parents.len(), 1);
        assert!(parents[0].args[1].is_null());
    }

    #[test]
    fn restricted_chase_does_not_fire_satisfied_heads() {
        // Person(x) → ∃z Knows(x, z); the database already has Knows(ann, bob).
        let tgd = Tgd::new(
            vec![atom!("Person", var "x")],
            vec![atom!("Knows", var "x", var "z")],
        )
        .unwrap();
        let db = Instance::from_atoms(vec![
            atom!("Person", cst "ann"),
            atom!("Knows", cst "ann", cst "bob"),
        ])
        .unwrap();
        let result = tgd_chase(&db, &[tgd], ChaseBudget::small());
        assert!(result.terminated);
        assert_eq!(result.steps, 0);
    }

    #[test]
    fn non_terminating_chase_is_cut_by_the_budget() {
        // Person(x) → ∃z Parent(x,z); Parent(x,z) → Person(z): infinite chase.
        let tgds = vec![
            Tgd::new(
                vec![atom!("Person", var "x")],
                vec![atom!("Parent", var "x", var "z")],
            )
            .unwrap(),
            Tgd::new(
                vec![atom!("Parent", var "x", var "z")],
                vec![atom!("Person", var "z")],
            )
            .unwrap(),
        ];
        let db = Instance::from_atoms(vec![atom!("Person", cst "adam")]).unwrap();
        let budget = ChaseBudget::new(25, 1_000);
        let result = tgd_chase(&db, &tgds, budget);
        assert!(!result.terminated);
        assert_eq!(result.steps, 25);
        assert!(result.instance.len() > db.len());
    }

    #[test]
    fn chase_of_query_freezes_variables_first() {
        let q = ConjunctiveQuery::new(
            vec![intern("x"), intern("y")],
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
            ],
        )
        .unwrap();
        let (result, frozen) = tgd_chase_query(&q, &[collector_tgd()], ChaseBudget::small());
        assert!(result.terminated);
        // The collector tgd fires once on the frozen query and adds Owns.
        assert_eq!(result.instance.len(), 3);
        assert_eq!(frozen.head.len(), 2);
        // chase(q, Σ) now satisfies the full Example 1 triangle query.
        let triangle = ConjunctiveQuery::boolean(vec![
            atom!("Interest", var "x", var "z"),
            atom!("Class", var "y", var "z"),
            atom!("Owns", var "x", var "y"),
        ])
        .unwrap();
        assert!(evaluate_boolean(&triangle, &result.instance));
    }

    #[test]
    fn example2_chase_builds_a_clique() {
        // Example 2: q = P(x1) ∧ … ∧ P(xn), τ = P(x), P(y) → R(x,y).
        let n = 4;
        let atoms: Vec<_> = (0..n)
            .map(|i| sac_common::Atom::from_parts("P", vec![Term::Null(i)]))
            .collect();
        let db = Instance::from_atoms(atoms).unwrap();
        let tgd = Tgd::new(
            vec![atom!("P", var "x"), atom!("P", var "y")],
            vec![atom!("R", var "x", var "y")],
        )
        .unwrap();
        let result = tgd_chase(&db, &[tgd], ChaseBudget::small());
        assert!(result.terminated);
        // R holds all n² ordered pairs.
        let r_count = result
            .instance
            .relation(intern("R"))
            .map(|r| r.len())
            .unwrap_or(0);
        assert_eq!(r_count, (n * n) as usize);
    }

    #[test]
    fn multiple_head_atoms_are_all_added() {
        let tgd = Tgd::new(
            vec![atom!("A", var "x")],
            vec![atom!("B", var "x", var "z"), atom!("C", var "z")],
        )
        .unwrap();
        let db = Instance::from_atoms(vec![atom!("A", cst "a")]).unwrap();
        let result = tgd_chase(&db, &[tgd], ChaseBudget::small());
        assert!(result.terminated);
        assert_eq!(result.instance.len(), 3);
        // The same fresh null must link B and C.
        let b = result
            .instance
            .atoms()
            .find(|a| a.predicate == intern("B"))
            .unwrap();
        let c = result
            .instance
            .atoms()
            .find(|a| a.predicate == intern("C"))
            .unwrap();
        assert_eq!(b.args[1], c.args[0]);
    }

    #[test]
    fn full_tgds_terminate_on_any_database() {
        // Transitive closure is full and terminates.
        let tgd = Tgd::new(
            vec![atom!("E", var "x", var "y"), atom!("E", var "y", var "z")],
            vec![atom!("E", var "x", var "z")],
        )
        .unwrap();
        let db = Instance::from_atoms(vec![
            atom!("E", cst "a", cst "b"),
            atom!("E", cst "b", cst "c"),
            atom!("E", cst "c", cst "d"),
        ])
        .unwrap();
        let result = tgd_chase(&db, &[tgd], ChaseBudget::small());
        assert!(result.terminated);
        // Transitive closure of a 3-edge path has 6 edges.
        assert_eq!(result.instance.len(), 6);
    }
}
