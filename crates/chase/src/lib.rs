//! # sac-chase
//!
//! The chase procedure for tgds and egds (Section 2 of the paper), the tool
//! behind containment under constraints (Lemma 1) and all of the paper's
//! decidability arguments.
//!
//! * [`tgd_chase()`] implements the *restricted* (standard) chase: a tgd fires
//!   only when its head is not already satisfied by the trigger.  Because the
//!   chase under guarded or sticky sets need not terminate, every entry point
//!   takes a [`ChaseBudget`]; the result records whether the chase reached a
//!   fixpoint or was truncated.
//! * [`egd_chase()`] implements the egd chase, which identifies terms (and can
//!   *fail* when two distinct constants are equated).  It always terminates
//!   and reports the cumulative renaming, which callers need to track where
//!   the frozen head terms of a query went (Lemma 1 for egds).
//! * [`probe`] contains the acyclicity-preservation probe used to validate
//!   Proposition 12 (guarded sets preserve acyclicity) and Proposition 22
//!   (keys over unary/binary schemas preserve acyclicity) experimentally, and
//!   to demonstrate Examples 2, 4 and 5 where acyclicity is destroyed.

pub mod budget;
pub mod egd_chase;
pub mod probe;
pub mod tgd_chase;

pub use budget::ChaseBudget;
pub use egd_chase::{egd_chase, egd_chase_query, EgdChaseResult};
pub use probe::{chase_preserves_acyclicity, AcyclicityProbe};
pub use tgd_chase::{tgd_chase, tgd_chase_query, TgdChaseResult};
