//! The acyclicity-preservation probe (Definition 1 of the paper).
//!
//! A class of dependencies has *acyclicity-preserving chase* if chasing any
//! acyclic CQ yields an acyclic instance.  The paper proves this for guarded
//! tgds (Proposition 12) and for keys over unary/binary schemas
//! (Proposition 22), and refutes it for non-recursive and sticky tgds
//! (Example 2) and for keys over wider schemas (Examples 4 and 5).
//!
//! The probe runs the chase on a concrete acyclic query and reports whether
//! acyclicity survived, plus the cyclicity measurements used by experiments
//! E4 and E6 (clique lower bound of the Gaifman graph).

use crate::budget::ChaseBudget;
use crate::egd_chase::egd_chase_query;
use crate::tgd_chase::tgd_chase_query;
use sac_acyclic::is_acyclic_instance;
use sac_deps::{Egd, Tgd};
use sac_query::{ConjunctiveQuery, GaifmanGraph};
use sac_storage::Instance;

/// The outcome of an acyclicity-preservation probe.
#[derive(Debug, Clone)]
pub struct AcyclicityProbe {
    /// Whether the input query was acyclic to begin with.
    pub input_acyclic: bool,
    /// Whether the chase result is acyclic.
    pub output_acyclic: bool,
    /// Whether the chase terminated within the budget (always true for egds).
    pub chase_terminated: bool,
    /// Number of atoms in the chase result.
    pub output_atoms: usize,
    /// A lower bound on the clique number of the Gaifman graph of the chase
    /// result (Example 2 produces an `n`-clique; Example 5 a grid).
    pub clique_lower_bound: usize,
}

impl AcyclicityProbe {
    fn of_instance(input_acyclic: bool, terminated: bool, instance: &Instance) -> AcyclicityProbe {
        // For cyclicity measurements the nulls of the instance play the role
        // of variables; build the Gaifman graph over a variable view.
        let atoms: Vec<_> = instance
            .to_atoms()
            .into_iter()
            .map(|a| {
                a.map_args(|t| match t {
                    sac_common::Term::Null(n) => {
                        sac_common::Term::Variable(sac_common::intern(&format!("n{n}")))
                    }
                    other => other,
                })
            })
            .collect();
        let graph = GaifmanGraph::of_atoms(atoms.iter());
        AcyclicityProbe {
            input_acyclic,
            output_acyclic: is_acyclic_instance(instance),
            chase_terminated: terminated,
            output_atoms: instance.len(),
            clique_lower_bound: graph.greedy_clique_lower_bound(),
        }
    }

    /// Whether the probe witnessed preservation (acyclic in, acyclic out).
    pub fn preserved(&self) -> bool {
        !self.input_acyclic || self.output_acyclic
    }
}

/// Probes whether chasing `query` under `tgds` preserves acyclicity.
pub fn chase_preserves_acyclicity(
    query: &ConjunctiveQuery,
    tgds: &[Tgd],
    budget: ChaseBudget,
) -> AcyclicityProbe {
    let input_acyclic = sac_acyclic::is_acyclic_query(query);
    let (result, _frozen) = tgd_chase_query(query, tgds, budget);
    AcyclicityProbe::of_instance(input_acyclic, result.terminated, &result.instance)
}

/// Probes whether chasing `query` under `egds` preserves acyclicity.  A
/// failing chase (constant clash) is reported as preserving (there is nothing
/// to measure).
pub fn egd_chase_preserves_acyclicity(query: &ConjunctiveQuery, egds: &[Egd]) -> AcyclicityProbe {
    let input_acyclic = sac_acyclic::is_acyclic_query(query);
    match egd_chase_query(query, egds) {
        Ok((result, _frozen)) => {
            AcyclicityProbe::of_instance(input_acyclic, true, &result.instance)
        }
        Err(_) => AcyclicityProbe {
            input_acyclic,
            output_acyclic: true,
            chase_terminated: true,
            output_atoms: 0,
            clique_lower_bound: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, Atom, Term};
    use sac_deps::FunctionalDependency;

    #[test]
    fn guarded_tgds_preserve_acyclicity_on_samples() {
        // Proposition 12, witnessed on a concrete acyclic query.
        let tgds = vec![
            Tgd::new(
                vec![atom!("Employee", var "x", var "d")],
                vec![atom!("Department", var "d")],
            )
            .unwrap(),
            Tgd::new(
                vec![atom!("Department", var "d")],
                vec![atom!("Manager", var "d", var "m")],
            )
            .unwrap(),
        ];
        let q = ConjunctiveQuery::boolean(vec![
            atom!("Employee", var "e", var "d"),
            atom!("Project", var "e", var "p"),
        ])
        .unwrap();
        let probe = chase_preserves_acyclicity(&q, &tgds, ChaseBudget::small());
        assert!(probe.input_acyclic);
        assert!(probe.chase_terminated);
        assert!(probe.output_acyclic);
        assert!(probe.preserved());
    }

    #[test]
    fn example2_destroys_acyclicity_with_a_clique() {
        // Example 2: q = P(x1) ∧ … ∧ P(xn), τ = P(x),P(y) → R(x,y).
        let n = 5usize;
        let body: Vec<Atom> = (0..n)
            .map(|i| Atom::from_parts("P", vec![Term::variable(&format!("x{i}"))]))
            .collect();
        let q = ConjunctiveQuery::boolean(body).unwrap();
        let tgd = Tgd::new(
            vec![atom!("P", var "x"), atom!("P", var "y")],
            vec![atom!("R", var "x", var "y")],
        )
        .unwrap();
        let probe = chase_preserves_acyclicity(&q, &[tgd], ChaseBudget::small());
        assert!(probe.input_acyclic);
        assert!(probe.chase_terminated);
        assert!(!probe.output_acyclic);
        assert!(!probe.preserved());
        // The Gaifman graph of the chase contains an n-clique.
        assert!(probe.clique_lower_bound >= n);
    }

    #[test]
    fn binary_keys_preserve_acyclicity() {
        // Proposition 22 witnessed: a key over a binary predicate chased on an
        // acyclic query keeps it acyclic.
        let key = FunctionalDependency::key("R", 2, [1]).unwrap();
        let q = ConjunctiveQuery::boolean(vec![
            atom!("R", var "x", var "y"),
            atom!("R", var "x", var "z"),
            atom!("S", var "y", var "w"),
        ])
        .unwrap();
        let probe = egd_chase_preserves_acyclicity(&q, &key.to_egds());
        assert!(probe.input_acyclic);
        assert!(probe.output_acyclic);
        assert!(probe.preserved());
    }

    #[test]
    fn example4_ternary_key_destroys_acyclicity() {
        // Example 4 of the paper.
        let q = ConjunctiveQuery::boolean(vec![
            atom!("R", var "x", var "y"),
            atom!("S", var "x", var "y", var "z"),
            atom!("S", var "x", var "z", var "w"),
            atom!("S", var "x", var "w", var "v"),
            atom!("R", var "x", var "v"),
        ])
        .unwrap();
        let key = FunctionalDependency::key("R", 2, [1]).unwrap();
        let probe = egd_chase_preserves_acyclicity(&q, &key.to_egds());
        assert!(probe.input_acyclic);
        assert!(
            !probe.output_acyclic,
            "Example 4's chase result must be cyclic"
        );
        assert!(!probe.preserved());
    }

    #[test]
    fn cyclic_inputs_are_vacuously_preserved() {
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "a", var "b"),
            atom!("E", var "b", var "c"),
            atom!("E", var "c", var "a"),
        ])
        .unwrap();
        let probe = chase_preserves_acyclicity(&q, &[], ChaseBudget::small());
        assert!(!probe.input_acyclic);
        assert!(probe.preserved());
    }
}
