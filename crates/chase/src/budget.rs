//! Resource budgets for the (possibly non-terminating) tgd chase.

/// A budget limiting a chase run.
///
/// The chase under guarded or sticky tgds may be infinite; the budget keeps
/// every run finite and lets callers distinguish "reached a fixpoint" from
/// "ran out of budget" (see [`crate::TgdChaseResult::terminated`]).  The
/// deciders in `sac-core` choose budgets derived from the paper's small-query
/// bounds and report `Inconclusive` rather than guessing when a budget is
/// exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaseBudget {
    /// Maximum number of chase steps (tgd firings).
    pub max_steps: usize,
    /// Maximum number of atoms in the chased instance.
    pub max_atoms: usize,
}

impl ChaseBudget {
    /// A budget suitable for unit tests and small interactive inputs.
    pub fn small() -> ChaseBudget {
        ChaseBudget {
            max_steps: 2_000,
            max_atoms: 20_000,
        }
    }

    /// A budget suitable for the benchmark workloads.
    pub fn large() -> ChaseBudget {
        ChaseBudget {
            max_steps: 200_000,
            max_atoms: 2_000_000,
        }
    }

    /// A custom budget.
    pub fn new(max_steps: usize, max_atoms: usize) -> ChaseBudget {
        ChaseBudget {
            max_steps,
            max_atoms,
        }
    }

    /// Whether the given counters exceed the budget.
    pub fn exceeded(&self, steps: usize, atoms: usize) -> bool {
        steps >= self.max_steps || atoms >= self.max_atoms
    }
}

impl Default for ChaseBudget {
    fn default() -> ChaseBudget {
        ChaseBudget::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exceeded_checks_both_dimensions() {
        let b = ChaseBudget::new(10, 100);
        assert!(!b.exceeded(5, 50));
        assert!(b.exceeded(10, 0));
        assert!(b.exceeded(0, 100));
    }

    #[test]
    fn presets_are_ordered() {
        assert!(ChaseBudget::small().max_steps < ChaseBudget::large().max_steps);
        assert_eq!(ChaseBudget::default(), ChaseBudget::small());
    }
}
