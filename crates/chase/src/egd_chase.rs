//! The chase for equality-generating dependencies.
//!
//! An egd `φ(x̄) → x_i = x_j` is applicable when a homomorphism `h` of its
//! body maps `x_i` and `x_j` to distinct terms.  Applying it identifies the
//! two terms: if both are constants the chase **fails**; if one is a constant
//! the null is replaced by it; if both are nulls one replaces the other.  The
//! egd chase always terminates (each step strictly decreases the number of
//! distinct terms) and is unique up to null renaming.
//!
//! When chasing the canonical database of a query (Lemma 1), the frozen
//! `c(x)` terms are labelled nulls, so they participate in identifications —
//! exactly the paper's "special constants treated as nulls" convention.  The
//! cumulative renaming is reported so callers can track where the frozen head
//! tuple went.

use sac_common::{Error, Result, Substitution, Term};
use sac_deps::Egd;
use sac_query::{ConjunctiveQuery, FrozenQuery, HomomorphismSearch};
use sac_storage::Instance;
use std::collections::BTreeMap;
use std::ops::ControlFlow;

/// The result of a successful egd chase.
#[derive(Debug, Clone)]
pub struct EgdChaseResult {
    /// The chased instance (a model of the egds).
    pub instance: Instance,
    /// Number of identification steps performed.
    pub steps: usize,
    /// The cumulative renaming applied to terms of the original instance.
    renaming: BTreeMap<Term, Term>,
}

impl EgdChaseResult {
    /// Resolves a term of the *original* instance to its representative in
    /// the chased instance.
    pub fn resolve(&self, term: Term) -> Term {
        let mut current = term;
        // Path-compress on the fly; the chains are short (each merge step adds
        // one link) but following them transitively is required.
        let mut hops = 0;
        while let Some(next) = self.renaming.get(&current) {
            current = *next;
            hops += 1;
            debug_assert!(hops <= self.renaming.len() + 1, "renaming cycle");
        }
        current
    }

    /// Resolves every term of a tuple.
    pub fn resolve_tuple(&self, tuple: &[Term]) -> Vec<Term> {
        tuple.iter().map(|t| self.resolve(*t)).collect()
    }

    /// The raw renaming map (original term → immediate replacement).
    pub fn renaming(&self) -> &BTreeMap<Term, Term> {
        &self.renaming
    }
}

/// Runs the egd chase to completion.
///
/// Returns an error ([`Error::ChaseFailure`]) when the chase fails by
/// attempting to identify two distinct constants.
pub fn egd_chase(instance: &Instance, egds: &[Egd]) -> Result<EgdChaseResult> {
    let mut current = instance.clone();
    let mut renaming: BTreeMap<Term, Term> = BTreeMap::new();
    let mut steps = 0usize;

    loop {
        match find_violation(&current, egds) {
            None => {
                return Ok(EgdChaseResult {
                    instance: current,
                    steps,
                    renaming,
                })
            }
            Some((a, b)) => {
                let (from, to) = orient(a, b)?;
                current = current.rename(|t| if t == from { to } else { t });
                // Update the cumulative renaming: new links and existing
                // chains that pointed at `from`.
                for target in renaming.values_mut() {
                    if *target == from {
                        *target = to;
                    }
                }
                renaming.insert(from, to);
                steps += 1;
            }
        }
    }
}

/// Chases the canonical database of a query under egds.
pub fn egd_chase_query(
    query: &ConjunctiveQuery,
    egds: &[Egd],
) -> Result<(EgdChaseResult, FrozenQuery)> {
    let frozen = FrozenQuery::freeze(query);
    let result = egd_chase(&frozen.instance, egds)?;
    Ok((result, frozen))
}

/// Finds a violated egd instance: a pair of distinct terms some egd equates.
fn find_violation(instance: &Instance, egds: &[Egd]) -> Option<(Term, Term)> {
    for egd in egds {
        if egd.is_trivial() {
            continue;
        }
        let mut found = None;
        HomomorphismSearch::new(&egd.body, instance).for_each(|h| {
            let left = h.apply(Term::Variable(egd.left));
            let right = h.apply(Term::Variable(egd.right));
            if left != right {
                found = Some((left, right));
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        if found.is_some() {
            return found;
        }
    }
    None
}

/// Decides the direction of an identification: `(from, to)` meaning `from` is
/// replaced everywhere by `to`.  Fails when both terms are constants.
fn orient(a: Term, b: Term) -> Result<(Term, Term)> {
    match (a.is_constant(), b.is_constant()) {
        (true, true) => Err(Error::ChaseFailure(format!(
            "attempted to identify distinct constants {a} and {b}"
        ))),
        (true, false) => Ok((b, a)),
        (false, true) => Ok((a, b)),
        (false, false) => {
            // Both nulls (or, defensively, variables): replace the larger
            // label by the smaller for determinism.
            if a < b {
                Ok((b, a))
            } else {
                Ok((a, b))
            }
        }
    }
}

/// Convenience: returns the substitution form of the cumulative renaming.
pub fn renaming_substitution(result: &EgdChaseResult) -> Substitution {
    Substitution::from_pairs(result.renaming().keys().map(|k| (*k, result.resolve(*k))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};
    use sac_deps::FunctionalDependency;

    fn key_r() -> Egd {
        // R(x,y), R(x,z) → y = z
        Egd::new(
            vec![atom!("R", var "x", var "y"), atom!("R", var "x", var "z")],
            intern("y"),
            intern("z"),
        )
        .unwrap()
    }

    #[test]
    fn merging_two_nulls() {
        let db = Instance::from_atoms(vec![
            atom!("R", cst "a", null 1),
            atom!("R", cst "a", null 2),
        ])
        .unwrap();
        let result = egd_chase(&db, &[key_r()]).unwrap();
        assert_eq!(result.instance.len(), 1);
        assert_eq!(result.steps, 1);
        assert_eq!(result.resolve(Term::Null(2)), Term::Null(1));
        assert_eq!(result.resolve(Term::Null(1)), Term::Null(1));
    }

    #[test]
    fn null_is_replaced_by_constant() {
        let db = Instance::from_atoms(vec![
            atom!("R", cst "a", cst "b"),
            atom!("R", cst "a", null 7),
        ])
        .unwrap();
        let result = egd_chase(&db, &[key_r()]).unwrap();
        assert_eq!(result.instance.len(), 1);
        assert_eq!(result.resolve(Term::Null(7)), Term::constant("b"));
        assert!(result.instance.contains(&atom!("R", cst "a", cst "b")));
    }

    #[test]
    fn identifying_distinct_constants_fails() {
        let db = Instance::from_atoms(vec![
            atom!("R", cst "a", cst "b"),
            atom!("R", cst "a", cst "c"),
        ])
        .unwrap();
        assert!(egd_chase(&db, &[key_r()]).is_err());
    }

    #[test]
    fn satisfied_egds_do_nothing() {
        let db = Instance::from_atoms(vec![
            atom!("R", cst "a", cst "b"),
            atom!("R", cst "x", cst "y"),
        ])
        .unwrap();
        let result = egd_chase(&db, &[key_r()]).unwrap();
        assert_eq!(result.steps, 0);
        assert_eq!(result.instance.len(), 2);
    }

    #[test]
    fn chained_identifications_resolve_transitively() {
        // Three R-atoms with the same key force null 1 = null 2 = null 3.
        let db = Instance::from_atoms(vec![
            atom!("R", cst "a", null 1),
            atom!("R", cst "a", null 2),
            atom!("R", cst "a", null 3),
        ])
        .unwrap();
        let result = egd_chase(&db, &[key_r()]).unwrap();
        assert_eq!(result.instance.len(), 1);
        assert_eq!(result.steps, 2);
        assert_eq!(result.resolve(Term::Null(3)), Term::Null(1));
        assert_eq!(result.resolve(Term::Null(2)), Term::Null(1));
    }

    #[test]
    fn example4_chase_on_the_frozen_query() {
        // Example 4: chasing the acyclic query
        //   R(x,y), S(x,y,z), S(x,z,w), S(x,w,v), R(x,v)
        // with the key R: {1} → {2} identifies y and v, yielding a cyclic
        // query (checked in sac-core / probe tests; here we verify the merge).
        let q = ConjunctiveQuery::boolean(vec![
            atom!("R", var "x", var "y"),
            atom!("S", var "x", var "y", var "z"),
            atom!("S", var "x", var "z", var "w"),
            atom!("S", var "x", var "w", var "v"),
            atom!("R", var "x", var "v"),
        ])
        .unwrap();
        let key = FunctionalDependency::key("R", 2, [1]).unwrap();
        let (result, frozen) = egd_chase_query(&q, &key.to_egds()).unwrap();
        // y and v were identified, so only one R atom and three S atoms remain.
        assert_eq!(result.instance.len(), 4);
        let y = frozen.var_map[&intern("y")];
        let v = frozen.var_map[&intern("v")];
        assert_eq!(result.resolve(y), result.resolve(v));
    }

    #[test]
    fn unary_fd_merges_attribute_values() {
        // FD R: {1} → {3} over ternary R.
        let fd = FunctionalDependency::from_parts("R", 3, [1], [3]).unwrap();
        let db = Instance::from_atoms(vec![
            atom!("R", cst "k", cst "p", null 1),
            atom!("R", cst "k", cst "q", null 2),
        ])
        .unwrap();
        let result = egd_chase(&db, &fd.to_egds()).unwrap();
        assert_eq!(result.resolve(Term::Null(1)), result.resolve(Term::Null(2)));
        // The two atoms differ in position 2, so both survive.
        assert_eq!(result.instance.len(), 2);
    }

    #[test]
    fn renaming_substitution_matches_resolution() {
        let db = Instance::from_atoms(vec![
            atom!("R", cst "a", null 1),
            atom!("R", cst "a", null 2),
        ])
        .unwrap();
        let result = egd_chase(&db, &[key_r()]).unwrap();
        let subst = renaming_substitution(&result);
        assert_eq!(subst.apply(Term::Null(2)), Term::Null(1));
    }
}
