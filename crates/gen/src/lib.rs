//! # sac-gen
//!
//! Workload generators for the experiments: the query families, dependency
//! sets and synthetic databases that back every benchmark in `sac-bench` and
//! the examples.
//!
//! * [`queries`] — parameterized CQ families (paths, cycles, stars, cliques,
//!   grids) and the paper's named queries (Example 1, Example 2, Example 4,
//!   Example 5 / Figure 4).
//! * [`deps`] — the paper's named dependency sets (the collector tgd of
//!   Example 1, Figure 1's sticky and non-sticky sets, Example 2's tgd,
//!   Example 3's sticky family, Example 4/5's keys) and random guarded /
//!   linear / non-recursive generators.
//! * [`databases`] — synthetic databases: the music-collector database of
//!   Example 1 (closed under the collector tgd), random graphs, star-schema
//!   data for evaluation sweeps, and the append-heavy
//!   [`streaming_graph_workload`] behind the view-maintenance experiment.
//! * [`datalog`] — recursive workloads: reachability, same-generation and
//!   ontology-closure programs with seeded databases, plus a random
//!   stratified program generator for the certificate property tests.
//!
//! Everything is deterministic — named fixtures are fixed, random ones are
//! seeded — so tests and experiments reproduce bit-for-bit:
//!
//! ```
//! use sac_gen::{path_query, random_graph_database, streaming_graph_workload};
//!
//! assert_eq!(path_query(2).to_string(), "q() :- E(?x0, ?x1), E(?x1, ?x2)");
//! assert_eq!(
//!     random_graph_database(10, 20, 7).len(),
//!     random_graph_database(10, 20, 7).len(),
//! );
//! // A base graph plus disjoint append batches: replaying the stream is
//! // one deterministic growth history.
//! let (base, stream) = streaming_graph_workload(20, 50, 3, 5, 1);
//! let mut grown = base.clone();
//! for atom in stream.into_iter().flatten() {
//!     assert!(grown.insert(atom).unwrap(), "every streamed atom is new");
//! }
//! assert_eq!(grown.len(), base.len() + 15);
//! ```

pub mod databases;
pub mod datalog;
pub mod deps;
pub mod queries;

pub use databases::{
    music_database, random_graph_database, star_schema_database, streaming_graph_workload,
};
pub use datalog::{
    ontology_closure_program, ontology_database, parent_tree_database, random_stratified_program,
    reachability_program, same_generation_program,
};
pub use deps::{
    collector_tgd, example2_tgd, example3_sticky_family, example5_keys, figure1_non_sticky,
    figure1_sticky, random_inclusion_dependencies,
};
pub use queries::{
    clique_query, cycle_query, example1_triangle, example2_query, example4_query, key_ring_query,
    looped_triangle_query, path_query, star_query,
};
