//! # sac-gen
//!
//! Workload generators for the experiments: the query families, dependency
//! sets and synthetic databases that back every benchmark in `sac-bench` and
//! the examples.
//!
//! * [`queries`] — parameterized CQ families (paths, cycles, stars, cliques,
//!   grids) and the paper's named queries (Example 1, Example 2, Example 4,
//!   Example 5 / Figure 4).
//! * [`deps`] — the paper's named dependency sets (the collector tgd of
//!   Example 1, Figure 1's sticky and non-sticky sets, Example 2's tgd,
//!   Example 3's sticky family, Example 4/5's keys) and random guarded /
//!   linear / non-recursive generators.
//! * [`databases`] — synthetic databases: the music-collector database of
//!   Example 1 (closed under the collector tgd), random graphs, and
//!   star-schema data for evaluation sweeps.

pub mod databases;
pub mod deps;
pub mod queries;

pub use databases::{music_database, random_graph_database, star_schema_database};
pub use deps::{
    collector_tgd, example2_tgd, example3_sticky_family, example5_keys, figure1_non_sticky,
    figure1_sticky, random_inclusion_dependencies,
};
pub use queries::{
    clique_query, cycle_query, example1_triangle, example2_query, example4_query, key_ring_query,
    looped_triangle_query, path_query, star_query,
};
