//! The paper's named dependency sets and random dependency generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sac_common::{intern, Atom, Term};
use sac_deps::{FunctionalDependency, Tgd};

fn var(name: impl AsRef<str>) -> Term {
    Term::Variable(intern(name.as_ref()))
}

/// Example 1's "compulsive collector" tgd:
/// `Interest(x,z), Class(y,z) → Owns(x,y)`.
pub fn collector_tgd() -> Tgd {
    Tgd::new(
        vec![
            Atom::from_parts("Interest", vec![var("x"), var("z")]),
            Atom::from_parts("Class", vec![var("y"), var("z")]),
        ],
        vec![Atom::from_parts("Owns", vec![var("x"), var("y")])],
    )
    .expect("collector tgd is well-formed")
}

/// Example 2's tgd `P(x), P(y) → R(x,y)` (sticky and non-recursive, not
/// guarded; destroys acyclicity).
pub fn example2_tgd() -> Tgd {
    Tgd::new(
        vec![
            Atom::from_parts("P", vec![var("x")]),
            Atom::from_parts("P", vec![var("y")]),
        ],
        vec![Atom::from_parts("R", vec![var("x"), var("y")])],
    )
    .expect("Example 2 tgd is well-formed")
}

/// Figure 1's sticky set: `T(x,y,z) → ∃w S(y,w)` and
/// `R(x,y), P(y,z) → ∃w T(x,y,w)`.
pub fn figure1_sticky() -> Vec<Tgd> {
    vec![
        Tgd::new(
            vec![Atom::from_parts("T", vec![var("x"), var("y"), var("z")])],
            vec![Atom::from_parts("S", vec![var("y"), var("w")])],
        )
        .expect("well-formed"),
        Tgd::new(
            vec![
                Atom::from_parts("R", vec![var("x"), var("y")]),
                Atom::from_parts("P", vec![var("y"), var("z")]),
            ],
            vec![Atom::from_parts("T", vec![var("x"), var("y"), var("w")])],
        )
        .expect("well-formed"),
    ]
}

/// Figure 1's non-sticky variant (the first tgd exports `x` instead of `y`).
pub fn figure1_non_sticky() -> Vec<Tgd> {
    vec![
        Tgd::new(
            vec![Atom::from_parts("T", vec![var("x"), var("y"), var("z")])],
            vec![Atom::from_parts("S", vec![var("x"), var("w")])],
        )
        .expect("well-formed"),
        figure1_sticky().remove(1),
    ]
}

/// Example 3's sticky family for arity parameter `n`: the rules
/// `P_i(x̄, Z, x̄, Z, O), P_i(x̄, O, x̄, Z, O) → P_{i-1}(x̄, Z, x̄, Z, O)`
/// whose UCQ rewriting of `P_0(0,…,0,0,1)` has height `2^n`.
pub fn example3_sticky_family(n: usize) -> (Vec<Tgd>, sac_query::ConjunctiveQuery) {
    let mut tgds = Vec::new();
    for i in 1..=n {
        let mut args_z: Vec<Term> = Vec::new();
        let mut args_o: Vec<Term> = Vec::new();
        let mut head_args: Vec<Term> = Vec::new();
        for j in 1..=n {
            if j == i {
                args_z.push(var("Z"));
                args_o.push(var("O"));
                head_args.push(var("Z"));
            } else {
                args_z.push(var(format!("x{j}")));
                args_o.push(var(format!("x{j}")));
                head_args.push(var(format!("x{j}")));
            }
        }
        for args in [&mut args_z, &mut args_o, &mut head_args] {
            args.push(var("Z"));
            args.push(var("O"));
        }
        tgds.push(
            Tgd::new(
                vec![
                    Atom::from_parts(&format!("P{i}"), args_z),
                    Atom::from_parts(&format!("P{i}"), args_o),
                ],
                vec![Atom::from_parts(&format!("P{}", i - 1), head_args)],
            )
            .expect("Example 3 tgd is well-formed"),
        );
    }
    let mut q_args = vec![Term::constant("0"); n];
    q_args.push(Term::constant("0"));
    q_args.push(Term::constant("1"));
    let q = sac_query::ConjunctiveQuery::boolean(vec![Atom::from_parts("P0", q_args)])
        .expect("Example 3 query is well-formed");
    (tgds, q)
}

/// Example 5 / Figure 4's two keys: `R(x,y,z,w), R(x,y,z,w') → w = w'` and
/// `H(x,y), H(x,z) → y = z`, compiled to egds.
pub fn example5_keys() -> Vec<sac_deps::Egd> {
    let mut egds = FunctionalDependency::key("R", 4, [1, 2, 3])
        .expect("key is well-formed")
        .to_egds();
    egds.extend(
        FunctionalDependency::key("H", 2, [1])
            .expect("key is well-formed")
            .to_egds(),
    );
    egds
}

/// Generates `count` random inclusion dependencies over `num_predicates`
/// binary predicates `E0, …` — always guarded, linear and sticky; whether the
/// set is non-recursive depends on the drawn predicate pairs.
pub fn random_inclusion_dependencies(count: usize, num_predicates: usize, seed: u64) -> Vec<Tgd> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let from = rng.gen_range(0..num_predicates);
        let to = rng.gen_range(0..num_predicates);
        let swap = rng.gen_bool(0.5);
        let (b1, b2) = (var(format!("u{i}")), var(format!("v{i}")));
        let head_args = if swap { vec![b2, b1] } else { vec![b1, b2] };
        out.push(
            Tgd::new(
                vec![Atom::from_parts(&format!("E{from}"), vec![b1, b2])],
                vec![Atom::from_parts(&format!("E{to}"), head_args)],
            )
            .expect("random inclusion dependency is well-formed"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_deps::{classify_tgds, is_sticky};

    #[test]
    fn named_sets_have_the_documented_classifications() {
        let collector = classify_tgds(&[collector_tgd()]);
        assert!(collector.full && collector.non_recursive && !collector.guarded);

        let ex2 = classify_tgds(&[example2_tgd()]);
        assert!(ex2.sticky && ex2.non_recursive && !ex2.guarded);

        assert!(is_sticky(&figure1_sticky()));
        assert!(!is_sticky(&figure1_non_sticky()));
    }

    #[test]
    fn example3_family_is_sticky_and_non_recursive() {
        for n in 2..=4 {
            let (tgds, q) = example3_sticky_family(n);
            assert_eq!(tgds.len(), n);
            let c = classify_tgds(&tgds);
            assert!(c.sticky, "Example 3 family must be sticky (n={n})");
            assert!(c.non_recursive);
            assert_eq!(q.size(), 1);
            assert_eq!(q.body[0].arity(), n + 2);
        }
    }

    #[test]
    fn example5_keys_cover_both_predicates() {
        let keys = example5_keys();
        assert_eq!(keys.len(), 2);
        let preds: Vec<String> = keys
            .iter()
            .flat_map(|e| e.body_predicates())
            .map(|p| p.as_str())
            .collect();
        assert!(preds.contains(&"R".to_string()));
        assert!(preds.contains(&"H".to_string()));
    }

    #[test]
    fn random_inclusion_dependencies_are_inclusion_dependencies() {
        let tgds = random_inclusion_dependencies(20, 4, 7);
        assert_eq!(tgds.len(), 20);
        let c = classify_tgds(&tgds);
        assert!(c.inclusion && c.linear && c.guarded && c.sticky);
    }

    #[test]
    fn random_generation_is_deterministic_per_seed() {
        let a = random_inclusion_dependencies(10, 3, 42);
        let b = random_inclusion_dependencies(10, 3, 42);
        assert_eq!(a, b);
        let c = random_inclusion_dependencies(10, 3, 43);
        assert_ne!(a, c);
    }
}
