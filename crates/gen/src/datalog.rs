//! Recursive (Datalog) workloads for the experiments.
//!
//! Three named program families — graph reachability, same-generation over
//! a parent tree, and ontology closure (transitive subclassing plus type
//! propagation) — with deterministic seeded databases to run them on, and a
//! seeded random *stratified* program generator for the certificate
//! property tests.  Every generator is valid by construction: the returned
//! [`DatalogProgram`]s are safe and stratified, so callers never handle a
//! construction error.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sac_common::{Atom, Term};
use sac_datalog::DatalogProgram;
use sac_storage::Instance;

/// Transitive closure of the binary edge predicate `E` into `T`:
/// the canonical linear-recursive reachability program.
pub fn reachability_program() -> DatalogProgram {
    "T(X, Y) :- E(X, Y).
     T(X, Z) :- E(X, Y), T(Y, Z)."
        .parse()
        .expect("reachability program is well-formed")
}

/// The classic same-generation program over the binary `Parent` predicate:
/// two individuals are in `Sg` when they sit at the same depth under a
/// common ancestry.  Nonlinear recursion (the recursive rule joins two
/// `Parent` atoms around the recursive call).
pub fn same_generation_program() -> DatalogProgram {
    "Sg(X, Y) :- Parent(P, X), Parent(P, Y).
     Sg(X, Y) :- Parent(P, X), Parent(Q, Y), Sg(P, Q)."
        .parse()
        .expect("same-generation program is well-formed")
}

/// Ontology closure: `Sub(C, D)` subclass edges close transitively into
/// `SubT`, and `Is(X, C)` memberships propagate up the closed hierarchy
/// into `Type`.  Two strata of mutual structure without negation — the
/// shape of RDFS-style materialization.
pub fn ontology_closure_program() -> DatalogProgram {
    "SubT(C, D) :- Sub(C, D).
     SubT(C, E) :- Sub(C, D), SubT(D, E).
     Type(X, C) :- Is(X, C).
     Type(X, D) :- Type(X, C), SubT(C, D)."
        .parse()
        .expect("ontology closure program is well-formed")
}

/// A complete ancestry tree for [`same_generation_program`]: `generations`
/// levels below the root, each individual with `fanout` children, as
/// `Parent(parent, child)` facts.  Deterministic — the node at breadth-first
/// index `i` is the constant `p{i}`.
pub fn parent_tree_database(generations: usize, fanout: usize) -> Instance {
    let mut inst = Instance::new();
    let person = |i: usize| Term::constant(&format!("p{i}"));
    let mut next = 1usize;
    let mut level = vec![0usize];
    for _ in 0..generations {
        let mut children = Vec::new();
        for &parent in &level {
            for _ in 0..fanout {
                inst.insert(Atom::from_parts(
                    "Parent",
                    vec![person(parent), person(next)],
                ))
                .expect("consistent arities");
                children.push(next);
                next += 1;
            }
        }
        level = children;
    }
    inst
}

/// A seeded ontology for [`ontology_closure_program`]: `classes` classes in
/// a random forward-edge DAG of `Sub(C, D)` facts (so the subclass graph is
/// acyclic by construction) and `individuals` individuals, each asserted
/// into one random class via `Is(X, C)`.
pub fn ontology_database(classes: usize, individuals: usize, seed: u64) -> Instance {
    let classes = classes.max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = Instance::new();
    let class = |i: usize| Term::constant(&format!("c{i}"));
    for c in 0..classes - 1 {
        // Each class gets at least one superclass further down the order,
        // plus an occasional extra edge for diamonds.
        let parent = rng.gen_range(c + 1..classes);
        inst.insert(Atom::from_parts("Sub", vec![class(c), class(parent)]))
            .expect("consistent arities");
        if rng.gen_range(0..3usize) == 0 {
            let extra = rng.gen_range(c + 1..classes);
            inst.insert(Atom::from_parts("Sub", vec![class(c), class(extra)]))
                .expect("consistent arities");
        }
    }
    for i in 0..individuals {
        let c = rng.gen_range(0..classes);
        inst.insert(Atom::from_parts(
            "Is",
            vec![Term::constant(&format!("i{i}")), class(c)],
        ))
        .expect("consistent arities");
    }
    inst
}

/// A seeded random **stratified** program over a random graph base, for the
/// certificate property tests: a recursive positive stratum over the edge
/// predicate `E` and (sometimes) a second stratum that negates it.  Valid
/// by construction — safe, stratified, never empty — while the rule set,
/// recursion shape and base graph all vary with the seed.
///
/// Returns the program together with a base instance holding the graph
/// (`E`) and its node domain (`N`), so negated rules stay safe.
pub fn random_stratified_program(seed: u64) -> (DatalogProgram, Instance) {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = rng.gen_range(4..9);
    let edges = rng.gen_range(nodes..nodes * 3);
    let mut base = crate::random_graph_database(nodes, edges, rng.gen_range(0..u64::MAX));
    for i in 0..nodes {
        base.insert(Atom::from_parts(
            "N",
            vec![Term::constant(&format!("n{i}"))],
        ))
        .expect("consistent arities");
    }

    let mut rules = vec!["T(X, Y) :- E(X, Y).".to_string()];
    // The recursive closure rule, in a seed-chosen association.
    rules.push(
        if rng.gen_bool(0.5) {
            "T(X, Z) :- E(X, Y), T(Y, Z)."
        } else {
            "T(X, Z) :- T(X, Y), E(Y, Z)."
        }
        .to_string(),
    );
    if rng.gen_bool(0.5) {
        rules.push("Out(X) :- E(X, Y).".to_string());
    }
    if rng.gen_bool(0.5) {
        rules.push("Mutual(X, Y) :- E(X, Y), E(Y, X).".to_string());
    }
    // A negation stratum over the positive fixpoint, most of the time.
    match rng.gen_range(0..4usize) {
        0 => rules.push("Sep(X, Y) :- N(X), N(Y), not T(X, Y).".to_string()),
        1 => rules.push("Sink(X) :- N(X), not Out(X).".to_string()),
        2 => {
            rules.push("Sep(X, Y) :- N(X), N(Y), not T(X, Y).".to_string());
            rules.push("Stuck(X) :- N(X), not T(X, X).".to_string());
        }
        _ => {}
    }
    let text = rules.join("\n");
    let program = text
        .parse()
        .expect("generated programs are safe and stratified");
    (program, base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_programs_are_well_formed() {
        assert_eq!(reachability_program().rule_count(), 2);
        assert_eq!(same_generation_program().rule_count(), 2);
        assert_eq!(ontology_closure_program().rule_count(), 4);
        assert!(reachability_program().is_positive());
    }

    #[test]
    fn parent_tree_has_the_expected_size() {
        // 2 generations of fanout 3: 3 + 9 Parent facts.
        assert_eq!(parent_tree_database(2, 3).len(), 12);
        assert!(parent_tree_database(0, 3).is_empty());
    }

    #[test]
    fn ontology_database_is_seed_deterministic() {
        let a = ontology_database(6, 10, 42);
        let b = ontology_database(6, 10, 42);
        assert_eq!(a.len(), b.len());
        assert!(a.len() >= 6 - 1 + 10);
    }

    #[test]
    fn random_programs_are_stratified_and_reproducible() {
        for seed in 0..20 {
            let (program, base) = random_stratified_program(seed);
            assert!(program.rule_count() >= 2);
            assert!(!base.is_empty());
            let (again, base2) = random_stratified_program(seed);
            assert_eq!(program.to_string(), again.to_string());
            assert_eq!(base.len(), base2.len());
        }
    }
}
