//! Synthetic databases for the evaluation experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sac_common::{Atom, Term};
use sac_storage::Instance;

/// The Example 1 music-collector database with `customers` customers,
/// `records` records and `styles` styles, **closed under the collector tgd**
/// (every customer owns every record of a style they are interested in), so
/// it satisfies the constraint by construction.
///
/// Interests and record classifications are assigned round-robin, which makes
/// the answer counts predictable for the tests and the E1/E8 experiments.
pub fn music_database(customers: usize, records: usize, styles: usize) -> Instance {
    let styles = styles.max(1);
    let mut inst = Instance::new();
    let style_name = |s: usize| Term::constant(&format!("style{s}"));
    for r in 0..records {
        inst.insert(Atom::from_parts(
            "Class",
            vec![Term::constant(&format!("rec{r}")), style_name(r % styles)],
        ))
        .expect("consistent arities");
    }
    for c in 0..customers {
        let s = c % styles;
        inst.insert(Atom::from_parts(
            "Interest",
            vec![Term::constant(&format!("cust{c}")), style_name(s)],
        ))
        .expect("consistent arities");
        // Close under the collector tgd: own every record of the style.
        let mut r = s;
        while r < records {
            inst.insert(Atom::from_parts(
                "Owns",
                vec![
                    Term::constant(&format!("cust{c}")),
                    Term::constant(&format!("rec{r}")),
                ],
            ))
            .expect("consistent arities");
            r += styles;
        }
    }
    inst
}

/// A random directed graph over `nodes` nodes with `edges` edges (predicate
/// `E`), seeded for reproducibility.
pub fn random_graph_database(nodes: usize, edges: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = Instance::new();
    let node = |i: usize| Term::constant(&format!("n{i}"));
    let mut inserted = 0usize;
    let mut attempts = 0usize;
    while inserted < edges && attempts < edges * 20 {
        attempts += 1;
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        if inst
            .insert(Atom::from_parts("E", vec![node(a), node(b)]))
            .expect("consistent arities")
        {
            inserted += 1;
        }
    }
    inst
}

/// An append-heavy streaming workload over the binary `E` graph schema: a
/// base random graph of `base_edges` edges plus `batches` disjoint append
/// batches of (up to) `batch_size` fresh edges each, seeded for
/// reproducibility.
///
/// The batches are what a streaming ingestion pipeline delivers: every
/// atom is new with respect to the base *and* to every earlier batch, so
/// replaying them against the base reproduces one deterministic growth
/// history — exactly the shape the engine's materialized views and the E14
/// experiment maintain over.  Batches can come up short only when the
/// `nodes²` edge space is nearly exhausted; size `nodes` generously.
pub fn streaming_graph_workload(
    nodes: usize,
    base_edges: usize,
    batches: usize,
    batch_size: usize,
    seed: u64,
) -> (Instance, Vec<Vec<Atom>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let node = |i: usize| Term::constant(&format!("n{i}"));
    let mut grown = Instance::new();
    let mut draw_edges = |grown: &mut Instance, count: usize| -> Vec<Atom> {
        let mut fresh = Vec::with_capacity(count);
        let mut attempts = 0usize;
        while fresh.len() < count && attempts < count * 20 + 100 {
            attempts += 1;
            let a = rng.gen_range(0..nodes);
            let b = rng.gen_range(0..nodes);
            let atom = Atom::from_parts("E", vec![node(a), node(b)]);
            if grown.insert(atom.clone()).expect("consistent arities") {
                fresh.push(atom);
            }
        }
        fresh
    };
    draw_edges(&mut grown, base_edges);
    let base = grown.clone();
    let stream = (0..batches)
        .map(|_| draw_edges(&mut grown, batch_size))
        .collect();
    (base, stream)
}

/// A star-schema database: a `Fact(id, dim1, dim2)` table with two dimension
/// tables `Dim1(d1, attr)` and `Dim2(d2, attr)` — the shape used by the
/// evaluation-scaling experiment E8.
pub fn star_schema_database(facts: usize, dim1: usize, dim2: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let dim1 = dim1.max(1);
    let dim2 = dim2.max(1);
    let mut inst = Instance::new();
    for d in 0..dim1 {
        inst.insert(Atom::from_parts(
            "Dim1",
            vec![
                Term::constant(&format!("d1_{d}")),
                Term::constant(&format!("attr{}", d % 7)),
            ],
        ))
        .expect("consistent arities");
    }
    for d in 0..dim2 {
        inst.insert(Atom::from_parts(
            "Dim2",
            vec![
                Term::constant(&format!("d2_{d}")),
                Term::constant(&format!("attr{}", d % 5)),
            ],
        ))
        .expect("consistent arities");
    }
    for f in 0..facts {
        let a = rng.gen_range(0..dim1);
        let b = rng.gen_range(0..dim2);
        inst.insert(Atom::from_parts(
            "Fact",
            vec![
                Term::constant(&format!("f{f}")),
                Term::constant(&format!("d1_{a}")),
                Term::constant(&format!("d2_{b}")),
            ],
        ))
        .expect("consistent arities");
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::collector_tgd;
    use sac_chase::{tgd_chase, ChaseBudget};
    use sac_common::intern;

    #[test]
    fn music_database_satisfies_the_collector_tgd() {
        let db = music_database(10, 20, 4);
        let chased = tgd_chase(&db, &[collector_tgd()], ChaseBudget::large());
        assert!(chased.terminated);
        assert_eq!(
            chased.steps, 0,
            "the generated database must already be closed under the tgd"
        );
    }

    #[test]
    fn music_database_sizes_scale_with_parameters() {
        let small = music_database(5, 10, 2);
        let large = music_database(50, 100, 2);
        assert!(large.len() > small.len());
        assert!(small.relation(intern("Interest")).unwrap().len() == 5);
        assert!(small.relation(intern("Class")).unwrap().len() == 10);
    }

    #[test]
    fn random_graph_is_reproducible_and_bounded() {
        let a = random_graph_database(50, 200, 1);
        let b = random_graph_database(50, 200, 1);
        assert_eq!(a.len(), b.len());
        assert!(a.len() <= 200);
        assert!(a.len() > 100, "should achieve most requested edges");
    }

    #[test]
    fn streaming_workload_batches_are_fresh_and_reproducible() {
        let (base, stream) = streaming_graph_workload(20, 60, 4, 10, 9);
        assert_eq!(stream.len(), 4);
        let mut grown = base.clone();
        for batch in &stream {
            assert_eq!(batch.len(), 10, "the edge space is far from exhausted");
            for atom in batch {
                assert!(
                    grown.insert(atom.clone()).unwrap(),
                    "every streamed atom is new at its point in the history"
                );
            }
        }
        assert_eq!(grown.len(), base.len() + 40);
        // Same seed, same history.
        let (base2, stream2) = streaming_graph_workload(20, 60, 4, 10, 9);
        assert_eq!(base.len(), base2.len());
        assert_eq!(stream, stream2);
    }

    #[test]
    fn star_schema_has_three_relations() {
        let db = star_schema_database(100, 10, 10, 3);
        assert_eq!(db.predicates().count(), 3);
        assert_eq!(db.relation(intern("Fact")).unwrap().len(), 100);
    }
}
