//! Parameterized conjunctive-query families and the paper's named queries.

use sac_common::{intern, Atom, Term};
use sac_query::ConjunctiveQuery;

fn var(name: impl AsRef<str>) -> Term {
    Term::Variable(intern(name.as_ref()))
}

/// The Boolean path query `E(x0,x1), …, E(x_{n-1},x_n)` (acyclic).
pub fn path_query(n: usize) -> ConjunctiveQuery {
    let body = (0..n)
        .map(|i| Atom::from_parts("E", vec![var(format!("x{i}")), var(format!("x{}", i + 1))]))
        .collect();
    ConjunctiveQuery::boolean(body).expect("path query is well-formed")
}

/// The Boolean directed cycle query of length `n` (cyclic for `n ≥ 3`).
pub fn cycle_query(n: usize) -> ConjunctiveQuery {
    let body = (0..n)
        .map(|i| {
            Atom::from_parts(
                "E",
                vec![var(format!("x{i}")), var(format!("x{}", (i + 1) % n))],
            )
        })
        .collect();
    ConjunctiveQuery::boolean(body).expect("cycle query is well-formed")
}

/// The Boolean star query with `n` rays (acyclic).
pub fn star_query(n: usize) -> ConjunctiveQuery {
    let body = (0..n)
        .map(|i| Atom::from_parts("E", vec![var("c"), var(format!("l{i}"))]))
        .collect();
    ConjunctiveQuery::boolean(body).expect("star query is well-formed")
}

/// The Boolean `n`-clique query over a binary edge predicate (cyclic for
/// `n ≥ 3`).
pub fn clique_query(n: usize) -> ConjunctiveQuery {
    let mut body = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                body.push(Atom::from_parts(
                    "E",
                    vec![var(format!("x{i}")), var(format!("x{j}"))],
                ));
            }
        }
    }
    ConjunctiveQuery::boolean(body).expect("clique query is well-formed")
}

/// A cyclic body (the directed triangle) plus the loop atom `E(w, w)`:
/// every triangle variable retracts onto `w`, so the core is the single
/// loop atom — acyclic.  The query is therefore semantically acyclic with
/// **no constraints at all**, which makes it the canonical fixture for the
/// engine's witness rung outside of tgd reasoning (directed cycles cannot
/// serve: a `C_n` is its own core for every `n ≥ 3`, since the collapse
/// onto `C_2` is not an endomorphism).
pub fn looped_triangle_query() -> ConjunctiveQuery {
    ConjunctiveQuery::boolean(vec![
        Atom::from_parts("E", vec![var("x"), var("y")]),
        Atom::from_parts("E", vec![var("y"), var("z")]),
        Atom::from_parts("E", vec![var("z"), var("x")]),
        Atom::from_parts("E", vec![var("w"), var("w")]),
    ])
    .expect("looped triangle is well-formed")
}

/// Example 1's triangle query `q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)`.
pub fn example1_triangle() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        vec![intern("x"), intern("y")],
        vec![
            Atom::from_parts("Interest", vec![var("x"), var("z")]),
            Atom::from_parts("Class", vec![var("y"), var("z")]),
            Atom::from_parts("Owns", vec![var("x"), var("y")]),
        ],
    )
    .expect("Example 1 query is well-formed")
}

/// Example 2's query `P(x1) ∧ … ∧ P(xn)` (acyclic).
pub fn example2_query(n: usize) -> ConjunctiveQuery {
    let body = (0..n)
        .map(|i| Atom::from_parts("P", vec![var(format!("x{i}"))]))
        .collect();
    ConjunctiveQuery::boolean(body).expect("Example 2 query is well-formed")
}

/// Example 4's acyclic query
/// `R(x,y), S(x,y,z), S(x,z,w), S(x,w,v), R(x,v)`.
pub fn example4_query() -> ConjunctiveQuery {
    ConjunctiveQuery::boolean(vec![
        Atom::from_parts("R", vec![var("x"), var("y")]),
        Atom::from_parts("S", vec![var("x"), var("y"), var("z")]),
        Atom::from_parts("S", vec![var("x"), var("z"), var("w")]),
        Atom::from_parts("S", vec![var("x"), var("w"), var("v")]),
        Atom::from_parts("R", vec![var("x"), var("v")]),
    ])
    .expect("Example 4 query is well-formed")
}

/// A scalable version of the Example 4 / Example 5 phenomenon: an *acyclic*
/// "open ring" query that the key `R : {1} → {2}` chases into a genuinely
/// cyclic query (a ring of `S`-atoms around the hub `x`).
///
/// The query is
/// `R(x, y0), S(x, y0, y1), …, S(x, y_{n-1}, y_n), R(x, y_n)`;
/// Example 4 is exactly the case `n = 3`.  Figure 4's full grid construction
/// is largely graphical in the paper; this family reproduces its point — an
/// acyclic query whose chase under keys over ≥3-ary predicates is cyclic,
/// with the amount of cyclic structure growing with `n` — in a form that can
/// be swept by the E6 experiment.
pub fn key_ring_query(n: usize) -> ConjunctiveQuery {
    assert!(n >= 2, "the ring construction needs n ≥ 2");
    let y = |i: usize| var(format!("y{i}"));
    let mut body = vec![Atom::from_parts("R", vec![var("x"), y(0)])];
    for i in 0..n {
        body.push(Atom::from_parts("S", vec![var("x"), y(i), y(i + 1)]));
    }
    body.push(Atom::from_parts("R", vec![var("x"), y(n)]));
    ConjunctiveQuery::boolean(body).expect("ring query is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_acyclic::is_acyclic_query;

    #[test]
    fn path_and_star_are_acyclic_cycles_and_cliques_are_not() {
        assert!(is_acyclic_query(&path_query(5)));
        assert!(is_acyclic_query(&star_query(4)));
        assert!(!is_acyclic_query(&cycle_query(3)));
        assert!(!is_acyclic_query(&cycle_query(6)));
        assert!(!is_acyclic_query(&clique_query(4)));
    }

    #[test]
    fn sizes_match_parameters() {
        assert_eq!(path_query(7).size(), 7);
        assert_eq!(cycle_query(5).size(), 5);
        assert_eq!(star_query(3).size(), 3);
        assert_eq!(clique_query(3).size(), 6);
        assert_eq!(example2_query(9).size(), 9);
    }

    #[test]
    fn paper_queries_have_the_documented_shapes() {
        assert!(!is_acyclic_query(&example1_triangle()));
        assert!(is_acyclic_query(&example2_query(6)));
        assert!(is_acyclic_query(&example4_query()));
    }

    #[test]
    fn ring_query_is_acyclic_before_the_chase_and_matches_example4_at_n3() {
        for n in 2..=6 {
            let q = key_ring_query(n);
            assert!(is_acyclic_query(&q), "ring query n={n} must be acyclic");
            assert_eq!(q.size(), n + 2);
        }
        // n = 3 has the same shape as Example 4 (modulo variable names).
        assert_eq!(key_ring_query(3).size(), example4_query().size());
    }

    #[test]
    fn two_cycle_is_alpha_acyclic_edge_case() {
        // Documenting a known subtlety: the directed 2-cycle is α-acyclic.
        assert!(is_acyclic_query(&cycle_query(2)));
    }
}
