//! Equality-generating dependencies.

use sac_common::{Atom, Error, Result, Schema, Symbol};
use std::collections::BTreeSet;
use std::fmt;

/// An equality-generating dependency `φ(x̄) → x_i = x_j`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Egd {
    /// Body atoms `φ`.
    pub body: Vec<Atom>,
    /// Left-hand side of the equated pair.
    pub left: Symbol,
    /// Right-hand side of the equated pair.
    pub right: Symbol,
}

impl Egd {
    /// Creates an egd after validation: both equated variables must occur in
    /// the body, the body must be non-empty and null-free, arities must be
    /// consistent.
    pub fn new(body: Vec<Atom>, left: Symbol, right: Symbol) -> Result<Egd> {
        let egd = Egd { body, left, right };
        egd.validate()?;
        Ok(egd)
    }

    /// Validates the structural requirements.
    pub fn validate(&self) -> Result<()> {
        if self.body.is_empty() {
            return Err(Error::Malformed("egd with empty body".into()));
        }
        for atom in &self.body {
            if atom.args.iter().any(|t| t.is_null()) {
                return Err(Error::Malformed(format!(
                    "egd atom {atom} contains a labelled null"
                )));
            }
        }
        let vars = self.body_variables();
        if !vars.contains(&self.left) || !vars.contains(&self.right) {
            return Err(Error::Malformed(
                "equated variables must occur in the egd body".into(),
            ));
        }
        Schema::induced_by(self.body.iter())?;
        Ok(())
    }

    /// Variables occurring in the body.
    pub fn body_variables(&self) -> BTreeSet<Symbol> {
        self.body.iter().flat_map(|a| a.variables()).collect()
    }

    /// Predicates occurring in the body.
    pub fn body_predicates(&self) -> BTreeSet<Symbol> {
        self.body.iter().map(|a| a.predicate).collect()
    }

    /// The schema induced by the egd body.
    pub fn schema(&self) -> Schema {
        Schema::induced_by(self.body.iter()).expect("validated egd has consistent arities")
    }

    /// Whether the egd is trivial (equates a variable with itself) and can be
    /// ignored by the chase.
    pub fn is_trivial(&self) -> bool {
        self.left == self.right
    }

    /// The maximum predicate arity mentioned in the body.
    pub fn max_arity(&self) -> usize {
        self.body.iter().map(|a| a.arity()).max().unwrap_or(0)
    }

    /// Whether the egd only mentions unary and binary predicates — the `K2`
    /// regime of Theorem 23 when the egds are keys.
    pub fn is_over_unary_binary_schema(&self) -> bool {
        self.max_arity() <= 2
    }
}

/// Builds an egd from a raw `body -> T = U.` statement (the semantic step
/// shared by [`std::str::FromStr`] and `sac-parser`): both equated terms
/// must be variables.
impl TryFrom<sac_common::RawStatement> for Egd {
    type Error = Error;

    fn try_from(statement: sac_common::RawStatement) -> Result<Egd> {
        match statement {
            sac_common::RawStatement::Egd { body, left, right } => {
                let as_var = |t: sac_common::Term| {
                    t.as_variable().ok_or_else(|| {
                        Error::Malformed(format!("egds equate variables, found `{t}`"))
                    })
                };
                Egd::new(body, as_var(left)?, as_var(right)?)
            }
            other => Err(Error::Malformed(format!(
                "expected an egd, found a {}",
                other.kind()
            ))),
        }
    }
}

/// Parses the textual form `atom, …, atom -> X = Y.` (see
/// [`sac_common::syntax`]), so `"R(X, Y), R(X, Z) -> Y = Z.".parse::<Egd>()`
/// works anywhere without going through `sac-parser`.
impl std::str::FromStr for Egd {
    type Err = Error;

    fn from_str(s: &str) -> Result<Egd> {
        sac_common::syntax::parse_statement(s)?.try_into()
    }
}

impl fmt::Display for Egd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " -> {} = {}", self.left, self.right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};

    /// The key of Example 4: `R(x,y), R(x,z) → y = z`.
    fn example4_key() -> Egd {
        Egd::new(
            vec![atom!("R", var "x", var "y"), atom!("R", var "x", var "z")],
            intern("y"),
            intern("z"),
        )
        .unwrap()
    }

    #[test]
    fn from_str_parses_egds_and_rejects_other_statements() {
        let e: Egd = "R(X, Y), R(X, Z) -> Y = Z.".parse().unwrap();
        assert_eq!(e.body.len(), 2);
        assert_eq!(e.left, intern("Y"));
        assert_eq!(e.right, intern("Z"));
        assert!("R(X, Y) -> Y = z.".parse::<Egd>().is_err()); // constant rhs
        assert!("R(X) -> S(X).".parse::<Egd>().is_err()); // tgd
        assert!("R(X, Y) -> X = W.".parse::<Egd>().is_err()); // W not in body
    }

    #[test]
    fn construction_and_accessors() {
        let e = example4_key();
        assert_eq!(e.body_variables().len(), 3);
        assert_eq!(e.body_predicates().len(), 1);
        assert!(!e.is_trivial());
        assert_eq!(e.max_arity(), 2);
        assert!(e.is_over_unary_binary_schema());
    }

    #[test]
    fn validation_rejects_unbound_equated_variables() {
        let bad = Egd::new(
            vec![atom!("R", var "x", var "y")],
            intern("x"),
            intern("zz"),
        );
        assert!(bad.is_err());
        let empty = Egd::new(vec![], intern("x"), intern("y"));
        assert!(empty.is_err());
    }

    #[test]
    fn trivial_egd_detection() {
        let e = Egd::new(vec![atom!("R", var "x", var "y")], intern("x"), intern("x")).unwrap();
        assert!(e.is_trivial());
    }

    #[test]
    fn wide_predicates_are_flagged() {
        let e = Egd::new(
            vec![
                atom!("R", var "x", var "y", var "z", var "w"),
                atom!("R", var "x", var "y", var "z", var "w2"),
            ],
            intern("w"),
            intern("w2"),
        )
        .unwrap();
        assert_eq!(e.max_arity(), 4);
        assert!(!e.is_over_unary_binary_schema());
    }

    #[test]
    fn display_shows_equality() {
        let e = example4_key();
        let s = format!("{e}");
        assert!(s.contains("y = z"));
    }
}
