//! Functional dependencies and keys, compiled into egds.
//!
//! A functional dependency `R : A → B` over an `n`-ary predicate asserts that
//! the attribute values at positions `B` are determined by those at positions
//! `A`.  A *key* is an FD with `A ∪ B = {1, …, n}`.  The paper's positive
//! egd results concern keys over unary/binary predicates (Theorem 23) and
//! unary FDs (`|A| = 1`, Figueira's independent result, mentioned after
//! Theorem 23).

use crate::egd::Egd;
use sac_common::{intern, Error, Result, Symbol, Term};
use std::collections::BTreeSet;
use std::fmt;

/// A functional dependency `R : A → B` (attribute positions are 1-based, as
/// in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalDependency {
    /// The predicate the FD constrains.
    pub predicate: Symbol,
    /// Its arity.
    pub arity: usize,
    /// Determinant positions `A` (1-based).
    pub lhs: BTreeSet<usize>,
    /// Determined positions `B` (1-based).
    pub rhs: BTreeSet<usize>,
}

impl FunctionalDependency {
    /// Creates an FD after validating the attribute positions.
    pub fn new(
        predicate: Symbol,
        arity: usize,
        lhs: impl IntoIterator<Item = usize>,
        rhs: impl IntoIterator<Item = usize>,
    ) -> Result<FunctionalDependency> {
        let fd = FunctionalDependency {
            predicate,
            arity,
            lhs: lhs.into_iter().collect(),
            rhs: rhs.into_iter().collect(),
        };
        fd.validate()?;
        Ok(fd)
    }

    /// Convenience constructor interning the predicate name.
    pub fn from_parts(
        predicate: &str,
        arity: usize,
        lhs: impl IntoIterator<Item = usize>,
        rhs: impl IntoIterator<Item = usize>,
    ) -> Result<FunctionalDependency> {
        FunctionalDependency::new(intern(predicate), arity, lhs, rhs)
    }

    /// The key `R : A → {1..n} \ A`.
    pub fn key(
        predicate: &str,
        arity: usize,
        lhs: impl IntoIterator<Item = usize>,
    ) -> Result<FunctionalDependency> {
        let lhs: BTreeSet<usize> = lhs.into_iter().collect();
        let rhs: BTreeSet<usize> = (1..=arity).filter(|i| !lhs.contains(i)).collect();
        FunctionalDependency::new(intern(predicate), arity, lhs, rhs)
    }

    fn validate(&self) -> Result<()> {
        if self.arity == 0 {
            return Err(Error::Malformed("FD over a nullary predicate".into()));
        }
        if self.lhs.is_empty() {
            return Err(Error::Malformed("FD with an empty determinant".into()));
        }
        let in_range = |s: &BTreeSet<usize>| s.iter().all(|i| *i >= 1 && *i <= self.arity);
        if !in_range(&self.lhs) || !in_range(&self.rhs) {
            return Err(Error::Malformed(format!(
                "FD attribute positions out of range for arity {}",
                self.arity
            )));
        }
        Ok(())
    }

    /// Whether the FD is a key: `A ∪ B` covers all attribute positions.
    pub fn is_key(&self) -> bool {
        let mut all: BTreeSet<usize> = self.lhs.clone();
        all.extend(self.rhs.iter().copied());
        all.len() == self.arity
    }

    /// Whether the FD is unary (`|A| = 1`) — the class covered by Figueira's
    /// extension of Theorem 23.
    pub fn is_unary(&self) -> bool {
        self.lhs.len() == 1
    }

    /// Compiles the FD into one egd per determined attribute.
    ///
    /// `R : {1} → {3}` over a ternary `R` becomes
    /// `R(x1,x2,x3), R(x1,x2',x3') → x3 = x3'`.
    pub fn to_egds(&self) -> Vec<Egd> {
        let var = |prefix: &str, i: usize| Term::Variable(intern(&format!("{prefix}{i}")));
        let first: Vec<Term> = (1..=self.arity).map(|i| var("x", i)).collect();
        let second: Vec<Term> = (1..=self.arity)
            .map(|i| {
                if self.lhs.contains(&i) {
                    var("x", i)
                } else {
                    var("xp", i)
                }
            })
            .collect();
        let body = vec![
            sac_common::Atom::new(self.predicate, first),
            sac_common::Atom::new(self.predicate, second),
        ];
        self.rhs
            .iter()
            .filter(|i| !self.lhs.contains(i))
            .map(|i| {
                Egd::new(
                    body.clone(),
                    intern(&format!("x{i}")),
                    intern(&format!("xp{i}")),
                )
                .expect("generated egd is well-formed")
            })
            .collect()
    }
}

impl fmt::Display for FunctionalDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} : {{", self.predicate)?;
        for (i, a) in self.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}} -> {{")?;
        for (i, b) in self.rhs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_fd_compiles_to_expected_egd() {
        // R : {1} → {3} over ternary R is the egd
        // R(x,y,z), R(x,y',z') → z = z'.
        let fd = FunctionalDependency::from_parts("R", 3, [1], [3]).unwrap();
        assert!(!fd.is_key());
        assert!(fd.is_unary());
        let egds = fd.to_egds();
        assert_eq!(egds.len(), 1);
        let e = &egds[0];
        assert_eq!(e.body.len(), 2);
        assert_eq!(e.left.as_str(), "x3");
        assert_eq!(e.right.as_str(), "xp3");
        // The determinant position is shared between both body atoms.
        assert_eq!(e.body[0].args[0], e.body[1].args[0]);
        // The other positions are not.
        assert_ne!(e.body[0].args[2], e.body[1].args[2]);
    }

    #[test]
    fn key_constructor_covers_all_positions() {
        let key = FunctionalDependency::key("R", 2, [1]).unwrap();
        assert!(key.is_key());
        assert_eq!(key.rhs, BTreeSet::from([2]));
        let egds = key.to_egds();
        assert_eq!(egds.len(), 1);
        assert!(egds[0].is_over_unary_binary_schema());
    }

    #[test]
    fn wide_key_produces_one_egd_per_non_key_position() {
        let key = FunctionalDependency::key("R", 4, [1, 2]).unwrap();
        assert!(key.is_key());
        assert!(!key.is_unary());
        assert_eq!(key.to_egds().len(), 2);
    }

    #[test]
    fn validation_rejects_bad_positions() {
        assert!(FunctionalDependency::from_parts("R", 2, [0], [1]).is_err());
        assert!(FunctionalDependency::from_parts("R", 2, [1], [3]).is_err());
        assert!(FunctionalDependency::from_parts("R", 0, [1], [1]).is_err());
        assert!(FunctionalDependency::from_parts("R", 2, [], [2]).is_err());
    }

    #[test]
    fn rhs_positions_inside_lhs_do_not_produce_egds() {
        let fd = FunctionalDependency::from_parts("R", 2, [1], [1, 2]).unwrap();
        assert_eq!(fd.to_egds().len(), 1);
    }

    #[test]
    fn display_mentions_both_sides() {
        let fd = FunctionalDependency::from_parts("R", 3, [1], [2, 3]).unwrap();
        let s = format!("{fd}");
        assert!(s.contains("{1}"));
        assert!(s.contains("{2,3}"));
    }
}
