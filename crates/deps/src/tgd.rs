//! Tuple-generating dependencies.

use sac_common::{Atom, Error, Result, Schema, Symbol, Term};
use sac_query::GaifmanGraph;
use std::collections::BTreeSet;
use std::fmt;

/// A tuple-generating dependency `φ(x̄, ȳ) → ∃z̄ ψ(x̄, z̄)`.
///
/// * `body` is the conjunction `φ`,
/// * `head` is the conjunction `ψ`,
/// * the *frontier* variables `x̄` are those shared between body and head,
/// * the *existential* variables `z̄` are the head variables not occurring in
///   the body.
///
/// Following the paper we require every frontier variable to occur in some
/// head atom (vacuously true by definition) and disallow nulls.  Constants
/// are permitted in both body and head.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tgd {
    /// Body atoms `φ`.
    pub body: Vec<Atom>,
    /// Head atoms `ψ`.
    pub head: Vec<Atom>,
}

impl Tgd {
    /// Creates a tgd after validation.
    pub fn new(body: Vec<Atom>, head: Vec<Atom>) -> Result<Tgd> {
        let tgd = Tgd { body, head };
        tgd.validate()?;
        Ok(tgd)
    }

    /// Validates the structural requirements (non-empty body and head, no
    /// nulls, consistent arities across body and head).
    pub fn validate(&self) -> Result<()> {
        if self.body.is_empty() {
            return Err(Error::Malformed("tgd with empty body".into()));
        }
        if self.head.is_empty() {
            return Err(Error::Malformed("tgd with empty head".into()));
        }
        for atom in self.body.iter().chain(self.head.iter()) {
            if atom.args.iter().any(|t| t.is_null()) {
                return Err(Error::Malformed(format!(
                    "tgd atom {atom} contains a labelled null"
                )));
            }
        }
        Schema::induced_by(self.body.iter().chain(self.head.iter()))?;
        Ok(())
    }

    /// Variables occurring in the body.
    pub fn body_variables(&self) -> BTreeSet<Symbol> {
        self.body.iter().flat_map(|a| a.variables()).collect()
    }

    /// Variables occurring in the head.
    pub fn head_variables(&self) -> BTreeSet<Symbol> {
        self.head.iter().flat_map(|a| a.variables()).collect()
    }

    /// Frontier variables `x̄`: body variables that also occur in the head.
    pub fn frontier_variables(&self) -> BTreeSet<Symbol> {
        self.body_variables()
            .intersection(&self.head_variables())
            .copied()
            .collect()
    }

    /// Existential variables `z̄`: head variables not occurring in the body.
    pub fn existential_variables(&self) -> BTreeSet<Symbol> {
        self.head_variables()
            .difference(&self.body_variables())
            .copied()
            .collect()
    }

    /// A tgd is *full* if it has no existentially quantified variables
    /// (Datalog rule).
    pub fn is_full(&self) -> bool {
        self.existential_variables().is_empty()
    }

    /// A tgd is *guarded* if some body atom (the guard) contains every body
    /// variable.
    pub fn is_guarded(&self) -> bool {
        self.guard().is_some()
    }

    /// Returns a guard atom, if one exists.
    pub fn guard(&self) -> Option<&Atom> {
        let vars = self.body_variables();
        self.body.iter().find(|a| {
            let avars = a.variables();
            vars.iter().all(|v| avars.contains(v))
        })
    }

    /// A tgd is *linear* if its body consists of a single atom.
    pub fn is_linear(&self) -> bool {
        self.body.len() == 1
    }

    /// A tgd is an *inclusion dependency* if it is linear, has a single head
    /// atom, and neither the body atom nor the head atom repeats a variable.
    pub fn is_inclusion_dependency(&self) -> bool {
        if !self.is_linear() || self.head.len() != 1 {
            return false;
        }
        let no_repeats = |a: &Atom| {
            let vars: Vec<Symbol> = a.variables_iter().collect();
            let set: BTreeSet<Symbol> = vars.iter().copied().collect();
            vars.len() == set.len() && vars.len() == a.arity()
        };
        no_repeats(&self.body[0]) && no_repeats(&self.head[0])
    }

    /// A tgd is *body-connected* if the Gaifman graph of its body is
    /// connected (used by Proposition 5 and the connecting operator).
    pub fn is_body_connected(&self) -> bool {
        GaifmanGraph::of_atoms(self.body.iter()).is_connected()
    }

    /// Predicates occurring in the body.
    pub fn body_predicates(&self) -> BTreeSet<Symbol> {
        self.body.iter().map(|a| a.predicate).collect()
    }

    /// Predicates occurring in the head.
    pub fn head_predicates(&self) -> BTreeSet<Symbol> {
        self.head.iter().map(|a| a.predicate).collect()
    }

    /// The schema induced by the dependency.
    pub fn schema(&self) -> Schema {
        Schema::induced_by(self.body.iter().chain(self.head.iter()))
            .expect("validated tgd has consistent arities")
    }

    /// Renames every variable using `f` (used by the connecting operator and
    /// the rewriting engine to avoid clashes).
    pub fn rename_variables(&self, mut f: impl FnMut(Symbol) -> Symbol) -> Tgd {
        let map_atom = |a: &Atom, f: &mut dyn FnMut(Symbol) -> Symbol| {
            a.map_args(|t| match t {
                Term::Variable(v) => Term::Variable(f(v)),
                other => other,
            })
        };
        Tgd {
            body: self.body.iter().map(|a| map_atom(a, &mut f)).collect(),
            head: self.head.iter().map(|a| map_atom(a, &mut f)).collect(),
        }
    }
}

/// Builds a tgd from a raw `body -> head.` statement (the semantic step
/// shared by [`std::str::FromStr`] and `sac-parser`).
impl TryFrom<sac_common::RawStatement> for Tgd {
    type Error = Error;

    fn try_from(statement: sac_common::RawStatement) -> Result<Tgd> {
        match statement {
            sac_common::RawStatement::Tgd { body, head } => Tgd::new(body, head),
            other => Err(Error::Malformed(format!(
                "expected a tgd, found a {}",
                other.kind()
            ))),
        }
    }
}

/// Parses the textual form `atom, …, atom -> atom, …, atom.` (see
/// [`sac_common::syntax`]), so `"R(X) -> S(X).".parse::<Tgd>()` works
/// anywhere without going through `sac-parser`.
impl std::str::FromStr for Tgd {
    type Err = Error;

    fn from_str(s: &str) -> Result<Tgd> {
        sac_common::syntax::parse_statement(s)?.try_into()
    }
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " -> ")?;
        let existential = self.existential_variables();
        if !existential.is_empty() {
            write!(f, "∃")?;
            for v in &existential {
                write!(f, " {v}")?;
            }
            write!(f, " . ")?;
        }
        for (i, a) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::atom;

    /// Example 1's "compulsive collector" tgd:
    /// `Interest(x,z), Class(y,z) → Owns(x,y)`.
    fn collector_tgd() -> Tgd {
        Tgd::new(
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
            ],
            vec![atom!("Owns", var "x", var "y")],
        )
        .unwrap()
    }

    #[test]
    fn from_str_parses_tgds_and_rejects_other_statements() {
        let t: Tgd = "Interest(X, Z), Class(Y, Z) -> Owns(X, Y)."
            .parse()
            .unwrap();
        assert!(t.is_full());
        assert_eq!(t.body.len(), 2);
        assert_eq!(t.frontier_variables().len(), 2);
        let existential: Tgd = "Person(X) -> HasParent(X, Z).".parse().unwrap();
        assert_eq!(existential.existential_variables().len(), 1);
        assert!("R(a).".parse::<Tgd>().is_err());
        assert!("R(X, Y) -> Y = Z.".parse::<Tgd>().is_err()); // egd, and bad one
        assert!("q(X) :- R(X).".parse::<Tgd>().is_err());
    }

    #[test]
    fn variable_classification() {
        let t = collector_tgd();
        assert_eq!(t.body_variables().len(), 3);
        assert_eq!(t.head_variables().len(), 2);
        assert_eq!(t.frontier_variables().len(), 2);
        assert!(t.existential_variables().is_empty());
        assert!(t.is_full());
    }

    #[test]
    fn guardedness_detection() {
        let t = collector_tgd();
        // No single body atom contains x, y and z: not guarded.
        assert!(!t.is_guarded());
        let guarded = Tgd::new(
            vec![
                atom!("G", var "x", var "y", var "z"),
                atom!("R", var "x", var "y"),
            ],
            vec![atom!("S", var "x")],
        )
        .unwrap();
        assert!(guarded.is_guarded());
        assert_eq!(guarded.guard().unwrap().predicate.as_str(), "G");
    }

    #[test]
    fn linear_and_inclusion_dependency_detection() {
        let linear = Tgd::new(
            vec![atom!("R", var "x", var "y")],
            vec![atom!("S", var "y", var "x")],
        )
        .unwrap();
        assert!(linear.is_linear());
        assert!(linear.is_guarded());
        assert!(linear.is_inclusion_dependency());

        let repeated = Tgd::new(
            vec![atom!("R", var "x", var "x")],
            vec![atom!("S", var "x")],
        )
        .unwrap();
        assert!(repeated.is_linear());
        assert!(!repeated.is_inclusion_dependency());

        assert!(!collector_tgd().is_linear());
    }

    #[test]
    fn existential_variables_make_a_tgd_non_full() {
        let t = Tgd::new(
            vec![atom!("Person", var "x")],
            vec![atom!("HasParent", var "x", var "z")],
        )
        .unwrap();
        assert!(!t.is_full());
        assert_eq!(t.existential_variables().len(), 1);
    }

    #[test]
    fn body_connectedness() {
        assert!(collector_tgd().is_body_connected());
        let disconnected = Tgd::new(
            vec![atom!("R", var "x", var "y"), atom!("S", var "u")],
            vec![atom!("T", var "x", var "u")],
        )
        .unwrap();
        assert!(!disconnected.is_body_connected());
    }

    #[test]
    fn validation_rejects_malformed_tgds() {
        assert!(Tgd::new(vec![], vec![atom!("R", var "x")]).is_err());
        assert!(Tgd::new(vec![atom!("R", var "x")], vec![]).is_err());
        assert!(Tgd::new(vec![atom!("R", null 1)], vec![atom!("S", var "x")]).is_err());
        assert!(Tgd::new(
            vec![atom!("R", var "x")],
            vec![atom!("R", var "x", var "y")]
        )
        .is_err());
    }

    #[test]
    fn renaming_affects_both_sides() {
        let t = collector_tgd();
        let renamed = t.rename_variables(|v| sac_common::intern(&format!("{}_r", v.as_str())));
        assert!(renamed
            .body_variables()
            .iter()
            .all(|v| v.as_str().ends_with("_r")));
        assert!(renamed
            .head_variables()
            .iter()
            .all(|v| v.as_str().ends_with("_r")));
        assert_eq!(renamed.body.len(), t.body.len());
    }

    #[test]
    fn display_is_readable() {
        let t = Tgd::new(
            vec![atom!("Person", var "x")],
            vec![atom!("HasParent", var "x", var "z")],
        )
        .unwrap();
        let s = format!("{t}");
        assert!(s.contains("->"));
        assert!(s.contains('∃'));
    }
}
