//! The connecting operator of Section 4.
//!
//! The operator turns an instance `(q, q', Σ)` of `AcBoolCont` (containment
//! of an acyclic Boolean CQ in a Boolean CQ) into an instance
//! `(c(q), c(q'), c(Σ))` of `RestCont` such that:
//!
//! * `c(q)` is acyclic and connected,
//! * `c(q')` is connected and **not** semantically acyclic under `c(Σ)` (its
//!   `aux`-triangle cannot be removed),
//! * `c(Σ)` is a set of body-connected tgds,
//! * `q ⊆Σ q'` iff `c(q) ⊆c(Σ) c(q')`.
//!
//! Every predicate `R` is replaced by a starred copy `R⋆` with one extra
//! argument carrying a fresh "connector" variable `w`; `c(q)` adds the loop
//! `aux(w,w)` and `c(q')` adds an `aux`-triangle `aux(w,u), aux(u,v),
//! aux(v,w)`.  The operator is the engine of Proposition 13 (all lower
//! bounds), and the toolkit uses it in tests to cross-validate the semantic
//! acyclicity deciders against plain containment.

use crate::tgd::Tgd;
use sac_common::{intern, Atom, Symbol, Term};
use sac_query::ConjunctiveQuery;

/// The name of the starred copy of a predicate.
fn starred(predicate: Symbol) -> Symbol {
    intern(&format!("{}*", predicate.as_str()))
}

/// The auxiliary binary predicate introduced by the operator.
fn aux_predicate() -> Symbol {
    intern("aux")
}

/// Star every atom of a conjunction, appending the connector term.
fn star_atoms(atoms: &[Atom], connector: Term) -> Vec<Atom> {
    atoms
        .iter()
        .map(|a| {
            let mut args = a.args.clone();
            args.push(connector);
            Atom::new(starred(a.predicate), args)
        })
        .collect()
}

/// Applies the connecting operator to the *left* query (the acyclic one):
/// `c(q) = ∃ȳ∃w (R⋆1(v̄1,w) ∧ … ∧ R⋆m(v̄m,w) ∧ aux(w,w))`.
pub fn connect_left_query(query: &ConjunctiveQuery) -> ConjunctiveQuery {
    let w = Term::variable("w__conn");
    let mut body = star_atoms(&query.body, w);
    body.push(Atom::new(aux_predicate(), vec![w, w]));
    ConjunctiveQuery::new_unchecked(query.head.clone(), body)
}

/// Applies the connecting operator to the *right* query:
/// `c(q') = ∃ȳ∃w∃u∃v (R⋆1(v̄1,w) ∧ … ∧ aux(w,u) ∧ aux(u,v) ∧ aux(v,w))`.
pub fn connect_right_query(query: &ConjunctiveQuery) -> ConjunctiveQuery {
    let w = Term::variable("w__conn");
    let u = Term::variable("u__conn");
    let v = Term::variable("v__conn");
    let mut body = star_atoms(&query.body, w);
    body.push(Atom::new(aux_predicate(), vec![w, u]));
    body.push(Atom::new(aux_predicate(), vec![u, v]));
    body.push(Atom::new(aux_predicate(), vec![v, w]));
    ConjunctiveQuery::new_unchecked(query.head.clone(), body)
}

/// Backwards-compatible alias used in tests: connect a query as the left
/// (acyclic) side.
pub fn connect_query(query: &ConjunctiveQuery) -> ConjunctiveQuery {
    connect_left_query(query)
}

/// Applies the connecting operator to a tgd: every body and head atom is
/// starred with the same fresh connector variable.
pub fn connect_tgd(tgd: &Tgd) -> Tgd {
    let w = Term::variable("w__conn");
    Tgd {
        body: star_atoms(&tgd.body, w),
        head: star_atoms(&tgd.head, w),
    }
}

/// Applies the connecting operator to a set of tgds.
pub fn connect_tgds(tgds: &[Tgd]) -> Vec<Tgd> {
    tgds.iter().map(connect_tgd).collect()
}

/// The full connecting operator on a containment instance
/// `(q, q', Σ) ↦ (c(q), c(q'), c(Σ))`.
pub fn connecting_operator(
    q: &ConjunctiveQuery,
    q_prime: &ConjunctiveQuery,
    tgds: &[Tgd],
) -> (ConjunctiveQuery, ConjunctiveQuery, Vec<Tgd>) {
    (
        connect_left_query(q),
        connect_right_query(q_prime),
        connect_tgds(tgds),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_tgds;
    use sac_common::atom;

    fn sample_tgds() -> Vec<Tgd> {
        vec![
            Tgd::new(
                vec![atom!("R", var "x", var "y")],
                vec![atom!("S", var "y", var "z")],
            )
            .unwrap(),
            Tgd::new(
                vec![atom!("S", var "x", var "y"), atom!("T", var "y")],
                vec![atom!("R", var "x", var "x")],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn starred_predicates_gain_one_position() {
        let q = ConjunctiveQuery::boolean(vec![atom!("R", var "a", var "b")]).unwrap();
        let cq = connect_left_query(&q);
        let starred_atom = cq
            .body
            .iter()
            .find(|a| a.predicate.as_str() == "R*")
            .expect("starred atom present");
        assert_eq!(starred_atom.arity(), 3);
    }

    #[test]
    fn left_query_stays_acyclic_and_connected() {
        use sac_acyclic_check::*;
        // q is a disconnected acyclic query; c(q) must be connected and acyclic.
        let q = ConjunctiveQuery::boolean(vec![atom!("R", var "a", var "b"), atom!("T", var "u")])
            .unwrap();
        let cq = connect_left_query(&q);
        assert!(cq.is_connected());
        assert!(is_acyclic(&cq));
        assert_eq!(cq.size(), q.size() + 1);
    }

    #[test]
    fn right_query_gains_an_aux_triangle_and_becomes_cyclic() {
        use sac_acyclic_check::*;
        let q = ConjunctiveQuery::boolean(vec![atom!("R", var "a", var "b")]).unwrap();
        let cq = connect_right_query(&q);
        assert!(cq.is_connected());
        assert!(!is_acyclic(&cq));
        assert_eq!(cq.size(), q.size() + 3);
    }

    #[test]
    fn connected_tgds_are_body_connected_and_preserve_guardedness_class() {
        let tgds = sample_tgds();
        let connected = connect_tgds(&tgds);
        let before = classify_tgds(&tgds);
        let after = classify_tgds(&connected);
        assert!(connected.iter().all(Tgd::is_body_connected));
        // Guardedness is preserved: the connector variable joins the guard.
        assert_eq!(before.guarded, after.guarded);
        assert_eq!(before.full, after.full);
        assert_eq!(before.non_recursive, after.non_recursive);
    }

    #[test]
    fn connecting_preserves_linearity() {
        let tgds = vec![Tgd::new(
            vec![atom!("R", var "x", var "y")],
            vec![atom!("S", var "y", var "z")],
        )
        .unwrap()];
        let connected = connect_tgds(&tgds);
        assert!(connected[0].is_linear());
        assert!(connected[0].is_guarded());
    }

    #[test]
    fn full_operator_produces_all_three_parts() {
        let q = ConjunctiveQuery::boolean(vec![atom!("R", var "a", var "b")]).unwrap();
        let q_prime = ConjunctiveQuery::boolean(vec![atom!("S", var "a", var "b")]).unwrap();
        let (cq, cq_prime, ctgds) = connecting_operator(&q, &q_prime, &sample_tgds());
        assert!(cq.body.iter().any(|a| a.predicate.as_str() == "aux"));
        assert_eq!(
            cq_prime
                .body
                .iter()
                .filter(|a| a.predicate.as_str() == "aux")
                .count(),
            3
        );
        assert_eq!(ctgds.len(), 2);
    }

    /// Tiny local acyclicity check to avoid a circular dev-dependency on
    /// `sac-acyclic` (which depends on `sac-query`, not on this crate, so a
    /// real dependency would also be fine — but the check is six lines).
    mod sac_acyclic_check {
        use sac_common::Term;
        use sac_query::ConjunctiveQuery;
        use std::collections::BTreeSet;

        /// GYO reduction specialised to query bodies.
        pub fn is_acyclic(q: &ConjunctiveQuery) -> bool {
            let mut edges: Vec<BTreeSet<Term>> = q
                .body
                .iter()
                .map(|a| a.terms().into_iter().filter(|t| t.is_variable()).collect())
                .collect();
            loop {
                let mut changed = false;
                // Remove vertices occurring in a single edge.
                let mut counts: std::collections::BTreeMap<Term, usize> =
                    std::collections::BTreeMap::new();
                for e in &edges {
                    for t in e {
                        *counts.entry(*t).or_insert(0) += 1;
                    }
                }
                for e in edges.iter_mut() {
                    let before = e.len();
                    e.retain(|t| counts[t] > 1);
                    if e.len() != before {
                        changed = true;
                    }
                }
                // Remove edges contained in another edge.
                let mut remove: Option<usize> = None;
                'outer: for i in 0..edges.len() {
                    for j in 0..edges.len() {
                        if i != j && edges[i].is_subset(&edges[j]) {
                            remove = Some(i);
                            break 'outer;
                        }
                    }
                }
                if let Some(i) = remove {
                    edges.remove(i);
                    changed = true;
                }
                if edges.len() <= 1 {
                    return true;
                }
                if !changed {
                    return false;
                }
            }
        }
    }
}
