//! Classification of tgd sets into the paper's syntactic classes.
//!
//! The decidability landscape of the paper hinges on which class a set of
//! tgds belongs to:
//!
//! | class | CQ containment | semantic acyclicity |
//! |-------|----------------|---------------------|
//! | full (`F`) | decidable | **undecidable** (Theorem 7) |
//! | guarded (`G`) | 2EXPTIME-c | 2EXPTIME-c (Theorem 11) |
//! | linear (`L`) / inclusion deps (`ID`) | PSPACE-c | PSPACE-c (Theorem 14) |
//! | non-recursive (`NR`) | NEXPTIME-c | NEXPTIME-c (Theorem 18) |
//! | sticky (`S`) | EXPTIME-c | NEXPTIME / EXPTIME-hard (Theorem 20) |
//! | keys over unary/binary schemas (`K2`) | NP-c | NP-c (Theorem 23) |

use crate::egd::Egd;
use crate::marking::is_sticky;
use crate::predicate_graph::{is_non_recursive, is_weakly_acyclic};
use crate::tgd::Tgd;
use std::fmt;

/// The classification report for a set of tgds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TgdClassification {
    /// Every tgd is full (no existentials).
    pub full: bool,
    /// Every tgd is guarded.
    pub guarded: bool,
    /// Every tgd is linear (single body atom).
    pub linear: bool,
    /// Every tgd is an inclusion dependency.
    pub inclusion: bool,
    /// The predicate graph is acyclic.
    pub non_recursive: bool,
    /// The marking procedure certifies stickiness.
    pub sticky: bool,
    /// The position dependency graph has no special cycle.
    pub weakly_acyclic: bool,
    /// Every tgd has a connected body.
    pub body_connected: bool,
}

impl TgdClassification {
    /// Whether this set falls into at least one class for which the paper
    /// proves semantic acyclicity decidable (guarded, non-recursive, sticky —
    /// linear and inclusion dependencies are subsumed by guarded).
    pub fn semantic_acyclicity_decidable(&self) -> bool {
        self.guarded || self.non_recursive || self.sticky
    }

    /// Whether the set is UCQ-rewritable by one of the criteria used in the
    /// paper (non-recursive or sticky — guarded sets are *not* UCQ
    /// rewritable, see the appendix counterexample).
    pub fn ucq_rewritable(&self) -> bool {
        self.non_recursive || self.sticky
    }

    /// Whether the set is covered by the acyclicity-preserving-chase
    /// criterion (guarded; Proposition 12).
    pub fn acyclicity_preserving_chase(&self) -> bool {
        self.guarded
    }
}

impl fmt::Display for TgdClassification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut classes = Vec::new();
        if self.full {
            classes.push("full");
        }
        if self.inclusion {
            classes.push("inclusion");
        } else if self.linear {
            classes.push("linear");
        } else if self.guarded {
            classes.push("guarded");
        }
        if self.non_recursive {
            classes.push("non-recursive");
        }
        if self.sticky {
            classes.push("sticky");
        }
        if self.weakly_acyclic {
            classes.push("weakly-acyclic");
        }
        if classes.is_empty() {
            classes.push("unrestricted");
        }
        write!(f, "{}", classes.join(", "))
    }
}

/// Classifies a set of tgds against every syntactic class used in the paper.
pub fn classify_tgds(tgds: &[Tgd]) -> TgdClassification {
    TgdClassification {
        full: tgds.iter().all(Tgd::is_full),
        guarded: tgds.iter().all(Tgd::is_guarded),
        linear: tgds.iter().all(Tgd::is_linear),
        inclusion: tgds.iter().all(Tgd::is_inclusion_dependency),
        non_recursive: is_non_recursive(tgds),
        sticky: is_sticky(tgds),
        weakly_acyclic: is_weakly_acyclic(tgds),
        body_connected: tgds.iter().all(Tgd::is_body_connected),
    }
}

/// Classification report for a set of egds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EgdClassification {
    /// Every egd mentions only unary and binary predicates.
    pub unary_binary_schema: bool,
}

/// Classifies a set of egds (the paper's positive result, Theorem 23,
/// concerns keys over unary and binary predicates; the `K2` membership of a
/// *key set* additionally requires the egds to come from keys, which callers
/// know syntactically from the [`crate::FunctionalDependency`] they compiled).
pub fn classify_egds(egds: &[Egd]) -> EgdClassification {
    EgdClassification {
        unary_binary_schema: egds.iter().all(Egd::is_over_unary_binary_schema),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::atom;

    fn tgd(body: Vec<sac_common::Atom>, head: Vec<sac_common::Atom>) -> Tgd {
        Tgd::new(body, head).unwrap()
    }

    #[test]
    fn example1_tgd_is_full_sticky_nonrecursive_but_not_guarded() {
        let tgds = vec![tgd(
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
            ],
            vec![atom!("Owns", var "x", var "y")],
        )];
        let c = classify_tgds(&tgds);
        assert!(c.full);
        assert!(!c.guarded);
        assert!(!c.linear);
        assert!(c.non_recursive);
        // The join variable z is marked (it is missing from the head) and
        // occurs twice: not sticky.
        assert!(!c.sticky);
        assert!(c.weakly_acyclic);
        assert!(c.body_connected);
        assert!(c.semantic_acyclicity_decidable()); // via non-recursiveness
    }

    #[test]
    fn inclusion_dependencies_are_detected() {
        let tgds = vec![tgd(
            vec![atom!("Employee", var "x", var "d")],
            vec![atom!("Department", var "d")],
        )];
        let c = classify_tgds(&tgds);
        assert!(c.inclusion);
        assert!(c.linear);
        assert!(c.guarded);
        assert!(c.acyclicity_preserving_chase());
    }

    #[test]
    fn guarded_but_not_ucq_rewritable() {
        // The appendix counterexample: P(x,y), S(x) → S(y) is guarded,
        // recursive, not sticky-relevant here.
        let tgds = vec![tgd(
            vec![atom!("P", var "x", var "y"), atom!("S", var "x")],
            vec![atom!("S", var "y")],
        )];
        let c = classify_tgds(&tgds);
        assert!(c.guarded);
        assert!(!c.non_recursive);
        assert!(c.acyclicity_preserving_chase());
        assert!(!c.ucq_rewritable());
    }

    #[test]
    fn example2_tgd_is_sticky_and_non_recursive_but_not_guarded() {
        let tgds = vec![tgd(
            vec![atom!("P", var "x"), atom!("P", var "y")],
            vec![atom!("R", var "x", var "y")],
        )];
        let c = classify_tgds(&tgds);
        assert!(c.sticky);
        assert!(c.non_recursive);
        assert!(!c.guarded);
        assert!(c.ucq_rewritable());
    }

    #[test]
    fn empty_set_is_in_every_class() {
        let c = classify_tgds(&[]);
        assert!(c.full && c.guarded && c.linear && c.inclusion);
        assert!(c.non_recursive && c.sticky && c.weakly_acyclic && c.body_connected);
    }

    #[test]
    fn display_reports_most_specific_guarded_subclass() {
        let inclusion = vec![tgd(
            vec![atom!("R", var "x", var "y")],
            vec![atom!("S", var "y")],
        )];
        let s = format!("{}", classify_tgds(&inclusion));
        assert!(s.contains("inclusion"));
        assert!(!s.contains("unrestricted"));
    }

    #[test]
    fn egd_classification_checks_arities() {
        let narrow = Egd::new(
            vec![atom!("R", var "x", var "y"), atom!("R", var "x", var "z")],
            sac_common::intern("y"),
            sac_common::intern("z"),
        )
        .unwrap();
        let wide = Egd::new(
            vec![
                atom!("W", var "x", var "y", var "z", var "u"),
                atom!("W", var "x", var "y", var "z", var "v"),
            ],
            sac_common::intern("u"),
            sac_common::intern("v"),
        )
        .unwrap();
        assert!(classify_egds(std::slice::from_ref(&narrow)).unary_binary_schema);
        assert!(!classify_egds(&[narrow, wide]).unary_binary_schema);
    }
}
