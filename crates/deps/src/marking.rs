//! The sticky marking procedure (Figure 1 of the paper; Calì, Gottlob &
//! Pieris, Artif. Intell. 2012).
//!
//! Stickiness captures joins that guarded tgds cannot express, without
//! forcing chase termination.  Its defining semantic property — terms bound
//! to join variables "stick" to all inferred atoms — is approximated by a
//! syntactic marking:
//!
//! 1. **Base step**: in each tgd `τ`, mark every body variable that is
//!    missing from at least one head atom of `τ`.
//! 2. **Propagation**: if a (universally quantified) variable `v` occurs in
//!    the head of `τ` at position `π`, and some tgd `τ'` has a *marked*
//!    variable at position `π` in its body, then mark `v` in the body of
//!    `τ`.  Repeat to fixpoint.
//!
//! A set of tgds is **sticky** iff no tgd has a marked variable occurring
//! more than once in its body.

use crate::tgd::Tgd;
use sac_common::{Symbol, Term};
use std::collections::BTreeSet;

/// A position: predicate symbol and 0-based argument index.
pub type Position = (Symbol, usize);

/// The result of running the marking procedure over a set of tgds.
#[derive(Debug, Clone)]
pub struct StickyMarking {
    /// For each tgd (by index), the set of marked body variables.
    pub marked: Vec<BTreeSet<Symbol>>,
    /// The body positions at which a marked variable occurs, per tgd.
    pub marked_positions: BTreeSet<Position>,
}

impl StickyMarking {
    /// Whether the marked assignment witnesses stickiness: no tgd has a
    /// marked variable with two or more body occurrences.
    pub fn is_sticky(&self, tgds: &[Tgd]) -> bool {
        self.violations(tgds).is_empty()
    }

    /// The tgd indices and variables violating the sticky condition.
    pub fn violations(&self, tgds: &[Tgd]) -> Vec<(usize, Symbol)> {
        let mut out = Vec::new();
        for (i, tgd) in tgds.iter().enumerate() {
            for v in &self.marked[i] {
                let occurrences: usize = tgd
                    .body
                    .iter()
                    .map(|a| a.args.iter().filter(|t| **t == Term::Variable(*v)).count())
                    .sum();
                if occurrences >= 2 {
                    out.push((i, *v));
                }
            }
        }
        out
    }
}

/// Runs the marking procedure of Figure 1 and returns the marking.
pub fn sticky_marking(tgds: &[Tgd]) -> StickyMarking {
    let mut marked: Vec<BTreeSet<Symbol>> = vec![BTreeSet::new(); tgds.len()];

    // Base step.
    for (i, tgd) in tgds.iter().enumerate() {
        for v in tgd.body_variables() {
            let in_every_head_atom = tgd.head.iter().all(|a| a.mentions_variable(v));
            if !in_every_head_atom {
                marked[i].insert(v);
            }
        }
    }

    // Propagation to fixpoint.
    loop {
        // Body positions currently holding a marked variable (across all tgds).
        let mut marked_positions: BTreeSet<Position> = BTreeSet::new();
        for (i, tgd) in tgds.iter().enumerate() {
            for atom in &tgd.body {
                for (pos, t) in atom.args.iter().enumerate() {
                    if let Term::Variable(v) = t {
                        if marked[i].contains(v) {
                            marked_positions.insert((atom.predicate, pos));
                        }
                    }
                }
            }
        }

        let mut changed = false;
        for (i, tgd) in tgds.iter().enumerate() {
            let body_vars = tgd.body_variables();
            for atom in &tgd.head {
                for (pos, t) in atom.args.iter().enumerate() {
                    if let Term::Variable(v) = t {
                        // Only universally quantified (body) variables can be
                        // marked in the body.
                        if body_vars.contains(v)
                            && marked_positions.contains(&(atom.predicate, pos))
                            && marked[i].insert(*v)
                        {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            // Recompute final marked positions for the report.
            let mut final_positions: BTreeSet<Position> = BTreeSet::new();
            for (i, tgd) in tgds.iter().enumerate() {
                for atom in &tgd.body {
                    for (pos, t) in atom.args.iter().enumerate() {
                        if let Term::Variable(v) = t {
                            if marked[i].contains(v) {
                                final_positions.insert((atom.predicate, pos));
                            }
                        }
                    }
                }
            }
            return StickyMarking {
                marked,
                marked_positions: final_positions,
            };
        }
    }
}

/// Whether a set of tgds is sticky.
pub fn is_sticky(tgds: &[Tgd]) -> bool {
    sticky_marking(tgds).is_sticky(tgds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};

    /// The sticky set of Figure 1: `T(x,y,z) → ∃w S(y,w)` and
    /// `R(x,y), P(y,z) → ∃w T(x,y,w)` — the join variable `y` stays
    /// unmarked, so the set is sticky.
    fn figure1_sticky() -> Vec<Tgd> {
        vec![
            Tgd::new(
                vec![atom!("T", var "x", var "y", var "z")],
                vec![atom!("S", var "y", var "w")],
            )
            .unwrap(),
            Tgd::new(
                vec![atom!("R", var "x", var "y"), atom!("P", var "y", var "z")],
                vec![atom!("T", var "x", var "y", var "w")],
            )
            .unwrap(),
        ]
    }

    /// The non-sticky variant of Figure 1: the first tgd exports `x` instead
    /// of `y`, so the marking reaches the join variable `y` of the second tgd.
    fn figure1_non_sticky() -> Vec<Tgd> {
        vec![
            Tgd::new(
                vec![atom!("T", var "x", var "y", var "z")],
                vec![atom!("S", var "x", var "w")],
            )
            .unwrap(),
            Tgd::new(
                vec![atom!("R", var "x", var "y"), atom!("P", var "y", var "z")],
                vec![atom!("T", var "x", var "y", var "w")],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn figure1_sticky_set_is_sticky() {
        let tgds = figure1_sticky();
        let marking = sticky_marking(&tgds);
        assert!(marking.is_sticky(&tgds));
        assert!(is_sticky(&tgds));
        // The join variable y of the second tgd must be unmarked.
        assert!(!marking.marked[1].contains(&intern("y")));
    }

    #[test]
    fn figure1_non_sticky_set_is_rejected() {
        let tgds = figure1_non_sticky();
        let marking = sticky_marking(&tgds);
        assert!(!marking.is_sticky(&tgds));
        assert!(!is_sticky(&tgds));
        // The violation is the doubly-occurring marked join variable y in the
        // second tgd.
        let violations = marking.violations(&tgds);
        assert!(violations.contains(&(1, intern("y"))));
    }

    #[test]
    fn base_step_marks_variables_missing_from_some_head_atom() {
        let tgds = figure1_sticky();
        let marking = sticky_marking(&tgds);
        // tgd 0: head S(y,w) misses x and z.
        assert!(marking.marked[0].contains(&intern("x")));
        assert!(marking.marked[0].contains(&intern("z")));
        assert!(!marking.marked[0].contains(&intern("y")));
        // tgd 1: head T(x,y,w) misses z.
        assert!(marking.marked[1].contains(&intern("z")));
    }

    #[test]
    fn example2_single_tgd_is_sticky() {
        // Example 2: P(x), P(y) → R(x,y).  Both variables appear in the head,
        // nothing is marked, the set is sticky (and non-recursive) but not
        // guarded.
        let tgds = vec![Tgd::new(
            vec![atom!("P", var "x"), atom!("P", var "y")],
            vec![atom!("R", var "x", var "y")],
        )
        .unwrap()];
        assert!(is_sticky(&tgds));
        assert!(!tgds[0].is_guarded());
    }

    #[test]
    fn join_variable_dropped_from_head_makes_a_set_non_sticky() {
        // R(x,y), S(y,z) → T(x,z): the join variable y is marked in the base
        // step and occurs twice in the body.
        let tgds = vec![Tgd::new(
            vec![atom!("R", var "x", var "y"), atom!("S", var "y", var "z")],
            vec![atom!("T", var "x", var "z")],
        )
        .unwrap()];
        assert!(!is_sticky(&tgds));
    }

    #[test]
    fn linear_tgds_are_always_sticky() {
        // With single-atom bodies no variable can occur twice in different
        // atoms; only repeated occurrences within the atom matter.
        let tgds = vec![
            Tgd::new(
                vec![atom!("R", var "x", var "y")],
                vec![atom!("S", var "y")],
            )
            .unwrap(),
            Tgd::new(
                vec![atom!("S", var "x")],
                vec![atom!("R", var "x", var "z")],
            )
            .unwrap(),
        ];
        assert!(is_sticky(&tgds));
    }

    #[test]
    fn repeated_marked_variable_within_one_atom_violates_stickiness() {
        // R(x,x) → S(x) is fine (x occurs in the head)… but
        // R(x,x,y) → S(y) marks x, which occurs twice in the body atom.
        let ok = vec![Tgd::new(
            vec![atom!("R", var "x", var "x")],
            vec![atom!("S", var "x")],
        )
        .unwrap()];
        assert!(is_sticky(&ok));
        let bad = vec![Tgd::new(
            vec![atom!("R", var "x", var "x", var "y")],
            vec![atom!("S", var "y")],
        )
        .unwrap()];
        assert!(!is_sticky(&bad));
    }

    #[test]
    fn propagation_crosses_tgds() {
        // τ1: A(x,y) → B(x):  y marked at A[1]... no B in any body, fine.
        // τ2: B(u), C(u,v) → A(u,v): head position A[1] holds v; A[1] is a
        // marked body position of τ1 → v becomes marked in τ2; v occurs once,
        // still sticky.  Adding another body occurrence of v breaks it.
        let sticky = vec![
            Tgd::new(
                vec![atom!("A", var "x", var "y")],
                vec![atom!("B", var "x")],
            )
            .unwrap(),
            Tgd::new(
                vec![atom!("B", var "u"), atom!("C", var "u", var "v")],
                vec![atom!("A", var "u", var "v")],
            )
            .unwrap(),
        ];
        let marking = sticky_marking(&sticky);
        assert!(marking.marked[1].contains(&intern("v")));
        assert!(is_sticky(&sticky));

        let broken = vec![
            sticky[0].clone(),
            Tgd::new(
                vec![
                    atom!("B", var "u"),
                    atom!("C", var "u", var "v"),
                    atom!("D", var "v"),
                ],
                vec![atom!("A", var "u", var "v")],
            )
            .unwrap(),
        ];
        assert!(!is_sticky(&broken));
    }

    #[test]
    fn empty_set_is_sticky() {
        assert!(is_sticky(&[]));
    }
}
