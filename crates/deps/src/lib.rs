//! # sac-deps
//!
//! Database dependencies and their syntactic classification, following
//! Section 2 of the paper:
//!
//! * **tgds** (tuple-generating dependencies) `φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)`,
//! * **egds** (equality-generating dependencies) `φ(x̄) → x_i = x_j`,
//!   together with the derived notions of **functional dependencies** and
//!   **keys**,
//! * the syntactic classes driving the paper's decidability landscape:
//!   *full*, *guarded*, *linear*, *inclusion dependencies*, *non-recursive*,
//!   *sticky* (via the marking procedure of Figure 1), *weakly acyclic*, and
//!   *body-connected* sets,
//! * the **connecting operator** of Section 4, the generic reduction used for
//!   all of the paper's lower bounds (Proposition 13).
//!
//! Dependencies parse from the workspace's arrow syntax and classify
//! themselves into the paper's decidability-relevant classes:
//!
//! ```
//! use sac_deps::{classify_tgds, is_sticky, Tgd};
//!
//! let inclusion: Tgd = "Owns(X, Y) -> Record(Y).".parse().unwrap();
//! let collector: Tgd = "Interest(X, Z), Class(Y, Z) -> Owns(X, Y).".parse().unwrap();
//!
//! let class = classify_tgds(&[inclusion.clone()]);
//! assert!(class.linear && class.guarded && class.full);
//! // Example 1's collector tgd is full (no existentials) but not linear…
//! let class = classify_tgds(&[collector.clone()]);
//! assert!(class.full && !class.linear);
//! // …and the marking procedure of Figure 1 separates the two: inclusion
//! // dependencies are sticky, the collector tgd joins on a marked variable.
//! assert!(is_sticky(&[inclusion]) && !is_sticky(&[collector]));
//! ```

pub mod classify;
pub mod connecting;
pub mod egd;
pub mod fd;
pub mod marking;
pub mod predicate_graph;
pub mod tgd;

pub use classify::{classify_tgds, TgdClassification};
pub use connecting::{connect_query, connect_tgds, connecting_operator};
pub use egd::Egd;
pub use fd::FunctionalDependency;
pub use marking::{is_sticky, sticky_marking, StickyMarking};
pub use predicate_graph::PredicateGraph;
pub use tgd::Tgd;
