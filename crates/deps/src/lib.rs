//! # sac-deps
//!
//! Database dependencies and their syntactic classification, following
//! Section 2 of the paper:
//!
//! * **tgds** (tuple-generating dependencies) `φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)`,
//! * **egds** (equality-generating dependencies) `φ(x̄) → x_i = x_j`,
//!   together with the derived notions of **functional dependencies** and
//!   **keys**,
//! * the syntactic classes driving the paper's decidability landscape:
//!   *full*, *guarded*, *linear*, *inclusion dependencies*, *non-recursive*,
//!   *sticky* (via the marking procedure of Figure 1), *weakly acyclic*, and
//!   *body-connected* sets,
//! * the **connecting operator** of Section 4, the generic reduction used for
//!   all of the paper's lower bounds (Proposition 13).

pub mod classify;
pub mod connecting;
pub mod egd;
pub mod fd;
pub mod marking;
pub mod predicate_graph;
pub mod tgd;

pub use classify::{classify_tgds, TgdClassification};
pub use connecting::{connect_query, connect_tgds, connecting_operator};
pub use egd::Egd;
pub use fd::FunctionalDependency;
pub use marking::{is_sticky, sticky_marking, StickyMarking};
pub use predicate_graph::PredicateGraph;
pub use tgd::Tgd;
