//! The predicate graph of a set of tgds and the derived classifiers:
//! non-recursiveness (acyclic predicate graph) and weak acyclicity (no cycle
//! through a "special" edge in the position dependency graph).

use crate::tgd::Tgd;
use sac_common::{Symbol, Term};
use std::collections::{BTreeMap, BTreeSet};

/// The predicate graph: an edge `P → Q` whenever `P` occurs in the body and
/// `Q` in the head of the same tgd.
#[derive(Debug, Clone, Default)]
pub struct PredicateGraph {
    edges: BTreeMap<Symbol, BTreeSet<Symbol>>,
    nodes: BTreeSet<Symbol>,
}

impl PredicateGraph {
    /// Builds the predicate graph of a set of tgds.
    pub fn of_tgds(tgds: &[Tgd]) -> PredicateGraph {
        let mut g = PredicateGraph::default();
        for tgd in tgds {
            for p in tgd.body_predicates() {
                g.nodes.insert(p);
            }
            for q in tgd.head_predicates() {
                g.nodes.insert(q);
            }
            for p in tgd.body_predicates() {
                for q in tgd.head_predicates() {
                    g.edges.entry(p).or_default().insert(q);
                }
            }
        }
        g
    }

    /// Nodes of the graph.
    pub fn nodes(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.nodes.iter().copied()
    }

    /// Successors of a node.
    pub fn successors(&self, p: Symbol) -> impl Iterator<Item = Symbol> + '_ {
        self.edges
            .get(&p)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Whether the graph contains a directed cycle.
    pub fn has_cycle(&self) -> bool {
        // Iterative DFS with colours.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: BTreeMap<Symbol, Colour> =
            self.nodes.iter().map(|n| (*n, Colour::White)).collect();
        for &start in &self.nodes {
            if colour[&start] != Colour::White {
                continue;
            }
            // (node, iterator index over successors)
            let mut stack: Vec<(Symbol, Vec<Symbol>, usize)> =
                vec![(start, self.successors(start).collect(), 0)];
            colour.insert(start, Colour::Grey);
            while let Some((node, succs, idx)) = stack.last_mut() {
                if *idx < succs.len() {
                    let next = succs[*idx];
                    *idx += 1;
                    match colour[&next] {
                        Colour::Grey => return true,
                        Colour::White => {
                            colour.insert(next, Colour::Grey);
                            let next_succs: Vec<Symbol> = self.successors(next).collect();
                            stack.push((next, next_succs, 0));
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour.insert(*node, Colour::Black);
                    stack.pop();
                }
            }
        }
        false
    }
}

/// A set of tgds is *non-recursive* if its predicate graph is acyclic.
pub fn is_non_recursive(tgds: &[Tgd]) -> bool {
    !PredicateGraph::of_tgds(tgds).has_cycle()
}

/// Position node `(predicate, index)` of the weak-acyclicity dependency graph.
type Position = (Symbol, usize);

/// A set of tgds is *weakly acyclic* if its position dependency graph has no
/// cycle passing through a special edge (Fagin et al., "Data exchange").
///
/// Regular edge `(π → π')`: a frontier variable occurs at body position `π`
/// and head position `π'`.  Special edge `(π ⇒ π'')`: a frontier variable
/// occurs at body position `π` and some existential variable occurs at head
/// position `π''` of the same tgd.
pub fn is_weakly_acyclic(tgds: &[Tgd]) -> bool {
    let mut regular: BTreeMap<Position, BTreeSet<Position>> = BTreeMap::new();
    let mut special: BTreeMap<Position, BTreeSet<Position>> = BTreeMap::new();
    let mut nodes: BTreeSet<Position> = BTreeSet::new();

    for tgd in tgds {
        let existential = tgd.existential_variables();
        // Positions of each body variable.
        let mut body_positions: BTreeMap<Symbol, Vec<Position>> = BTreeMap::new();
        for atom in &tgd.body {
            for (i, t) in atom.args.iter().enumerate() {
                if let Term::Variable(v) = t {
                    body_positions
                        .entry(*v)
                        .or_default()
                        .push((atom.predicate, i));
                    nodes.insert((atom.predicate, i));
                }
            }
        }
        for atom in &tgd.head {
            for (i, t) in atom.args.iter().enumerate() {
                nodes.insert((atom.predicate, i));

                if let Term::Variable(v) = t {
                    if existential.contains(v) {
                        // Special edges from every body position of every
                        // frontier variable.
                        for positions in tgd
                            .frontier_variables()
                            .iter()
                            .filter_map(|f| body_positions.get(f))
                        {
                            for &p in positions {
                                special.entry(p).or_default().insert((atom.predicate, i));
                            }
                        }
                    } else if let Some(positions) = body_positions.get(v) {
                        for &p in positions {
                            regular.entry(p).or_default().insert((atom.predicate, i));
                        }
                    }
                }
            }
        }
    }

    // A cycle through a special edge exists iff for some special edge
    // `u ⇒ v`, `u` is reachable from `v` using regular ∪ special edges.
    let succ = |p: &Position| -> Vec<Position> {
        let mut out: Vec<Position> = Vec::new();
        if let Some(s) = regular.get(p) {
            out.extend(s.iter().copied());
        }
        if let Some(s) = special.get(p) {
            out.extend(s.iter().copied());
        }
        out
    };
    let reachable = |from: Position, to: Position| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            stack.extend(succ(&n));
        }
        false
    };
    for (u, vs) in &special {
        for v in vs {
            if reachable(*v, *u) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::atom;

    fn tgd(body: Vec<sac_common::Atom>, head: Vec<sac_common::Atom>) -> Tgd {
        Tgd::new(body, head).unwrap()
    }

    #[test]
    fn non_recursive_detection() {
        // R → S → T is acyclic.
        let tgds = vec![
            tgd(
                vec![atom!("R", var "x", var "y")],
                vec![atom!("S", var "x")],
            ),
            tgd(vec![atom!("S", var "x")], vec![atom!("T", var "x")]),
        ];
        assert!(is_non_recursive(&tgds));

        // Adding T → R closes a cycle.
        let mut cyclic = tgds.clone();
        cyclic.push(tgd(
            vec![atom!("T", var "x")],
            vec![atom!("R", var "x", var "x")],
        ));
        assert!(!is_non_recursive(&cyclic));
    }

    #[test]
    fn self_loop_is_recursive() {
        let tgds = vec![tgd(
            vec![atom!("E", var "x", var "y")],
            vec![atom!("E", var "y", var "x")],
        )];
        assert!(!is_non_recursive(&tgds));
    }

    #[test]
    fn figure1_sets_are_non_recursive() {
        // Both Figure 1 sets have predicate edges T→S and {R,P}→T: acyclic.
        let set = vec![
            tgd(
                vec![atom!("T", var "x", var "y", var "z")],
                vec![atom!("S", var "y", var "w")],
            ),
            tgd(
                vec![atom!("R", var "x", var "y"), atom!("P", var "y", var "z")],
                vec![atom!("T", var "x", var "y", var "w")],
            ),
        ];
        assert!(is_non_recursive(&set));
    }

    #[test]
    fn weak_acyclicity_accepts_full_tgds() {
        let tgds = vec![tgd(
            vec![atom!("E", var "x", var "y")],
            vec![atom!("E", var "y", var "x")],
        )];
        // Recursive but full: weakly acyclic (no special edges at all).
        assert!(is_weakly_acyclic(&tgds));
        assert!(!is_non_recursive(&tgds));
    }

    #[test]
    fn weak_acyclicity_rejects_value_inventing_recursion() {
        // Person(x) → ∃z HasParent(x, z); HasParent(x, z) → Person(z):
        // the classic non-terminating example is NOT weakly acyclic.
        let tgds = vec![
            tgd(
                vec![atom!("Person", var "x")],
                vec![atom!("HasParent", var "x", var "z")],
            ),
            tgd(
                vec![atom!("HasParent", var "x", var "z")],
                vec![atom!("Person", var "z")],
            ),
        ];
        assert!(!is_weakly_acyclic(&tgds));
    }

    #[test]
    fn weak_acyclicity_accepts_non_recursive_existentials() {
        let tgds = vec![tgd(
            vec![atom!("Person", var "x")],
            vec![atom!("HasId", var "x", var "z")],
        )];
        assert!(is_weakly_acyclic(&tgds));
    }

    #[test]
    fn empty_set_is_trivially_in_all_classes() {
        assert!(is_non_recursive(&[]));
        assert!(is_weakly_acyclic(&[]));
    }
}
