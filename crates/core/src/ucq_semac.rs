//! Semantic acyclicity for unions of conjunctive queries (Section 8.1).
//!
//! A UCQ `Q` is semantically acyclic under `Σ` iff it is Σ-equivalent to a
//! union of acyclic CQs.  Propositions 33 and 34 reduce this to a per-disjunct
//! property: every disjunct `q ∈ Q` either (i) has an acyclic Σ-equivalent
//! witness of bounded size, or (ii) is redundant in `Q` (Σ-contained in
//! another disjunct).

use crate::containment::contained_under_tgds;
use crate::semac::{semantic_acyclicity_under_tgds, SemAcConfig, SemAcResult};
use sac_chase::ChaseBudget;
use sac_deps::Tgd;
use sac_query::{ConjunctiveQuery, UnionOfConjunctiveQueries};

/// The per-disjunct outcome of a UCQ semantic-acyclicity check.
#[derive(Debug, Clone)]
pub enum DisjunctStatus {
    /// The disjunct has an acyclic Σ-equivalent witness.
    Witness(ConjunctiveQuery),
    /// The disjunct is Σ-contained in the disjunct at the given index and can
    /// be dropped.
    RedundantWith(usize),
    /// Neither a witness nor a subsuming disjunct was found.
    Blocking,
}

/// The result of a UCQ semantic-acyclicity check.
#[derive(Debug, Clone)]
pub struct UcqSemAcResult {
    /// Per-disjunct status, in the order of the input UCQ.
    pub statuses: Vec<DisjunctStatus>,
}

impl UcqSemAcResult {
    /// Whether the UCQ is semantically acyclic (no blocking disjunct).
    pub fn is_acyclic(&self) -> bool {
        !self
            .statuses
            .iter()
            .any(|s| matches!(s, DisjunctStatus::Blocking))
    }

    /// The union of acyclic witnesses, when the UCQ is semantically acyclic.
    pub fn witness_union(&self) -> Option<UnionOfConjunctiveQueries> {
        if !self.is_acyclic() {
            return None;
        }
        let witnesses: Vec<ConjunctiveQuery> = self
            .statuses
            .iter()
            .filter_map(|s| match s {
                DisjunctStatus::Witness(w) => Some(w.clone()),
                _ => None,
            })
            .collect();
        UnionOfConjunctiveQueries::new(witnesses).ok()
    }
}

/// Decides semantic acyclicity of a UCQ under a set of tgds.
pub fn ucq_semantic_acyclicity_under_tgds(
    ucq: &UnionOfConjunctiveQueries,
    tgds: &[Tgd],
    config: SemAcConfig,
    budget: ChaseBudget,
) -> UcqSemAcResult {
    let mut statuses = Vec::with_capacity(ucq.len());
    for (i, q) in ucq.disjuncts.iter().enumerate() {
        // (ii) redundancy: q ⊆Σ q_j for some other disjunct.
        let redundant_with = ucq.disjuncts.iter().enumerate().find_map(|(j, other)| {
            (i != j && contained_under_tgds(q, other, tgds, budget).holds()).then_some(j)
        });
        if let Some(j) = redundant_with {
            statuses.push(DisjunctStatus::RedundantWith(j));
            continue;
        }
        // (i) an acyclic witness for the disjunct itself.
        match semantic_acyclicity_under_tgds(q, tgds, config) {
            SemAcResult::Witness(w) => statuses.push(DisjunctStatus::Witness(w)),
            SemAcResult::NoWitness { .. } => statuses.push(DisjunctStatus::Blocking),
        }
    }
    UcqSemAcResult { statuses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::atom;

    fn config() -> SemAcConfig {
        SemAcConfig::default()
    }

    fn budget() -> ChaseBudget {
        ChaseBudget::small()
    }

    fn triangle() -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "z"),
            atom!("E", var "z", var "x"),
        ])
        .unwrap()
    }

    fn single_edge() -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(vec![atom!("E", var "x", var "y")]).unwrap()
    }

    #[test]
    fn union_of_acyclic_disjuncts_is_acyclic() {
        let ucq = UnionOfConjunctiveQueries::new(vec![
            single_edge(),
            ConjunctiveQuery::boolean(vec![atom!("V", var "x")]).unwrap(),
        ])
        .unwrap();
        let result = ucq_semantic_acyclicity_under_tgds(&ucq, &[], config(), budget());
        assert!(result.is_acyclic());
        assert!(result.witness_union().is_some());
    }

    #[test]
    fn cyclic_disjunct_redundant_in_the_union_is_tolerated() {
        // triangle ⊆ single_edge classically, so the triangle is redundant
        // and the UCQ is semantically acyclic even though the triangle alone
        // is not.
        let ucq = UnionOfConjunctiveQueries::new(vec![triangle(), single_edge()]).unwrap();
        let result = ucq_semantic_acyclicity_under_tgds(&ucq, &[], config(), budget());
        assert!(result.is_acyclic());
        assert!(matches!(
            result.statuses[0],
            DisjunctStatus::RedundantWith(1)
        ));
        let witnesses = result.witness_union().unwrap();
        assert_eq!(witnesses.len(), 1);
    }

    #[test]
    fn lone_cyclic_disjunct_blocks() {
        let ucq = UnionOfConjunctiveQueries::single(triangle());
        let result = ucq_semantic_acyclicity_under_tgds(&ucq, &[], config(), budget());
        assert!(!result.is_acyclic());
        assert!(result.witness_union().is_none());
    }

    #[test]
    fn constraints_unblock_a_cyclic_disjunct() {
        // Example 1 as a one-disjunct UCQ with the collector tgd.
        let tgds = vec![Tgd::new(
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
            ],
            vec![atom!("Owns", var "x", var "y")],
        )
        .unwrap()];
        let triangle = ConjunctiveQuery::boolean(vec![
            atom!("Interest", var "x", var "z"),
            atom!("Class", var "y", var "z"),
            atom!("Owns", var "x", var "y"),
        ])
        .unwrap();
        let ucq = UnionOfConjunctiveQueries::single(triangle);
        let result = ucq_semantic_acyclicity_under_tgds(&ucq, &tgds, config(), budget());
        assert!(result.is_acyclic());
    }

    #[test]
    fn statuses_follow_input_order() {
        let ucq = UnionOfConjunctiveQueries::new(vec![single_edge(), triangle()]).unwrap();
        let result = ucq_semantic_acyclicity_under_tgds(&ucq, &[], config(), budget());
        assert_eq!(result.statuses.len(), 2);
        assert!(matches!(result.statuses[0], DisjunctStatus::Witness(_)));
        assert!(matches!(
            result.statuses[1],
            DisjunctStatus::RedundantWith(0)
        ));
    }
}
