//! Evaluation of semantically acyclic CQs under constraints (Section 7).
//!
//! Two strategies are provided:
//!
//! * [`EvaluationStrategy::RewriteThenYannakakis`] — the fixed-parameter
//!   tractable algorithm of Proposition 24: find an acyclic witness `q'` with
//!   `q ≡Σ q'` (cost depends only on `|q| + |Σ|`), then evaluate `q'` on the
//!   database with the Yannakakis algorithm (cost `O(|q'|·|D|)` plus output).
//! * [`EvaluationStrategy::CoverGame`] — the polynomial-time algorithm of
//!   Theorem 25 for guarded tgds (and FDs): a tuple `t̄` is an answer iff the
//!   duplicator wins the existential 1-cover game between `(q, x̄)` and
//!   `(D, t̄)` — no witness computation and no chase over the database.
//!
//! Both assume the database satisfies the constraints (the paper's
//! `SemAcEval` promise); [`evaluate_semantically_acyclic`] does not verify
//! this.

use crate::semac::{semantic_acyclicity_under_tgds, SemAcConfig, SemAcResult};
use sac_acyclic::{cover_equivalent, yannakakis_evaluate, CoverGameInput};
use sac_common::Term;
use sac_deps::Tgd;
use sac_query::{evaluate, ConjunctiveQuery};
use sac_storage::Instance;
use std::collections::BTreeSet;

/// The evaluation strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvaluationStrategy {
    /// Proposition 24: compute an acyclic Σ-equivalent witness, then run
    /// Yannakakis.  Falls back to naive evaluation when no witness is found.
    RewriteThenYannakakis,
    /// Theorem 25: evaluate through the existential 1-cover game, sound and
    /// complete when the query is semantically acyclic under guarded tgds (or
    /// FDs) and the database satisfies the constraints.
    CoverGame,
    /// Plain homomorphism enumeration (the baseline the paper improves on).
    Naive,
}

/// Evaluates `query` over `database` (assumed to satisfy `tgds`).
pub fn evaluate_semantically_acyclic(
    query: &ConjunctiveQuery,
    tgds: &[Tgd],
    database: &Instance,
    strategy: EvaluationStrategy,
    config: SemAcConfig,
) -> BTreeSet<Vec<Term>> {
    match strategy {
        EvaluationStrategy::Naive => evaluate(query, database),
        EvaluationStrategy::RewriteThenYannakakis => {
            match semantic_acyclicity_under_tgds(query, tgds, config) {
                SemAcResult::Witness(witness) => yannakakis_evaluate(&witness, database)
                    .unwrap_or_else(|| evaluate(&witness, database)),
                SemAcResult::NoWitness { .. } => evaluate(query, database),
            }
        }
        EvaluationStrategy::CoverGame => cover_game_evaluate(query, database),
    }
}

/// Theorem 25's evaluation: `t̄ ∈ q(D)` iff `(q, x̄) ≡∃1c (D, t̄)`.
///
/// For Boolean queries a single game is played.  For queries with `k` answer
/// variables, every `k`-tuple over the active domain is tested with one game
/// each — polynomial for fixed `k` (data complexity), which is the regime of
/// Theorem 25.
pub fn cover_game_evaluate(query: &ConjunctiveQuery, database: &Instance) -> BTreeSet<Vec<Term>> {
    let head_terms: Vec<Term> = query.head.iter().map(|v| Term::Variable(*v)).collect();
    let mut answers = BTreeSet::new();
    if query.head.is_empty() {
        let input = CoverGameInput {
            atoms: &query.body,
            tuple: &[],
        };
        if cover_equivalent(input, database, &[]) {
            answers.insert(Vec::new());
        }
        return answers;
    }
    let domain: Vec<Term> = database.active_domain().into_iter().collect();
    let k = query.head.len();
    let mut tuple_indexes = vec![0usize; k];
    if domain.is_empty() {
        return answers;
    }
    loop {
        let tuple: Vec<Term> = tuple_indexes.iter().map(|i| domain[*i]).collect();
        let input = CoverGameInput {
            atoms: &query.body,
            tuple: &head_terms,
        };
        if cover_equivalent(input, database, &tuple) {
            answers.insert(tuple);
        }
        // Advance the odometer.
        let mut pos = k;
        loop {
            if pos == 0 {
                return answers;
            }
            pos -= 1;
            tuple_indexes[pos] += 1;
            if tuple_indexes[pos] < domain.len() {
                break;
            }
            tuple_indexes[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_chase::{tgd_chase, ChaseBudget};
    use sac_common::{atom, intern, Atom};

    fn collector_tgd() -> Vec<Tgd> {
        vec![Tgd::new(
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
            ],
            vec![atom!("Owns", var "x", var "y")],
        )
        .unwrap()]
    }

    fn example1_triangle() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            vec![intern("x"), intern("y")],
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
                atom!("Owns", var "x", var "y"),
            ],
        )
        .unwrap()
    }

    /// A small music database that satisfies the collector tgd (closed under
    /// the chase).
    fn collector_db() -> Instance {
        let base = Instance::from_atoms(vec![
            atom!("Interest", cst "alice", cst "jazz"),
            atom!("Interest", cst "bob", cst "rock"),
            atom!("Class", cst "kind_of_blue", cst "jazz"),
            atom!("Class", cst "nevermind", cst "rock"),
            atom!("Class", cst "in_utero", cst "rock"),
        ])
        .unwrap();
        tgd_chase(&base, &collector_tgd(), ChaseBudget::small()).instance
    }

    #[test]
    fn all_strategies_agree_on_example1() {
        let q = example1_triangle();
        let db = collector_db();
        let tgds = collector_tgd();
        let naive = evaluate_semantically_acyclic(
            &q,
            &tgds,
            &db,
            EvaluationStrategy::Naive,
            SemAcConfig::default(),
        );
        let fpt = evaluate_semantically_acyclic(
            &q,
            &tgds,
            &db,
            EvaluationStrategy::RewriteThenYannakakis,
            SemAcConfig::default(),
        );
        let game = evaluate_semantically_acyclic(
            &q,
            &tgds,
            &db,
            EvaluationStrategy::CoverGame,
            SemAcConfig::default(),
        );
        assert_eq!(naive, fpt);
        assert_eq!(naive, game);
        // alice owns kind_of_blue, bob owns both rock records.
        assert_eq!(naive.len(), 3);
    }

    #[test]
    fn cover_game_agrees_with_naive_for_acyclic_queries() {
        // Proposition 30 ground truth: for acyclic queries the game equals
        // evaluation on any database.
        let q = ConjunctiveQuery::new(
            vec![intern("x")],
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
            ],
        )
        .unwrap();
        let db = collector_db();
        assert_eq!(cover_game_evaluate(&q, &db), evaluate(&q, &db));
    }

    #[test]
    fn boolean_cover_game_evaluation() {
        let q = ConjunctiveQuery::boolean(vec![
            atom!("Interest", var "x", var "z"),
            atom!("Class", var "y", var "z"),
            atom!("Owns", var "x", var "y"),
        ])
        .unwrap();
        let db = collector_db();
        let answers = cover_game_evaluate(&q, &db);
        assert_eq!(answers.len(), 1);
        let empty_db = Instance::new();
        assert!(cover_game_evaluate(&q, &empty_db).is_empty());
    }

    #[test]
    fn fpt_strategy_falls_back_gracefully_without_witness() {
        // A genuinely cyclic query with no helpful constraints: the FPT
        // strategy must still return the right answers (via fallback).
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "z"),
            atom!("E", var "z", var "x"),
        ])
        .unwrap();
        let mut db = Instance::new();
        for (s, t) in [("a", "b"), ("b", "c"), ("c", "a")] {
            db.insert(Atom::from_parts(
                "E",
                vec![Term::constant(s), Term::constant(t)],
            ))
            .unwrap();
        }
        let answers = evaluate_semantically_acyclic(
            &q,
            &[],
            &db,
            EvaluationStrategy::RewriteThenYannakakis,
            SemAcConfig::default(),
        );
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn evaluation_over_larger_satisfying_database_scales() {
        // A sanity check used by the E8 experiment in miniature: the answers
        // of the witness match the original query on a database closed under
        // the constraints.
        let tgds = collector_tgd();
        let mut base = Instance::new();
        for i in 0..40 {
            base.insert(Atom::from_parts(
                "Interest",
                vec![
                    Term::constant(&format!("cust{i}")),
                    Term::constant(&format!("style{}", i % 5)),
                ],
            ))
            .unwrap();
            base.insert(Atom::from_parts(
                "Class",
                vec![
                    Term::constant(&format!("rec{i}")),
                    Term::constant(&format!("style{}", i % 5)),
                ],
            ))
            .unwrap();
        }
        let db = tgd_chase(&base, &tgds, ChaseBudget::large()).instance;
        let q = example1_triangle();
        let naive = evaluate(&q, &db);
        let fpt = evaluate_semantically_acyclic(
            &q,
            &tgds,
            &db,
            EvaluationStrategy::RewriteThenYannakakis,
            SemAcConfig::default(),
        );
        assert_eq!(naive, fpt);
        assert_eq!(naive.len(), 40 * 8); // each customer owns the 8 records of their style
    }
}
