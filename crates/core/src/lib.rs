//! # sac-core
//!
//! The paper's primary contribution, as an executable library: deciding and
//! exploiting **semantic acyclicity under constraints**.
//!
//! * [`containment`] — CQ containment and equivalence under tgds and egds via
//!   the chase (Lemma 1) and via UCQ rewriting (Section 5), with explicit
//!   three-valued answers when a chase budget is exhausted.
//! * [`semac`] — the semantic-acyclicity deciders: the constraint-free
//!   baseline (core acyclicity), and the witness search for constraint
//!   classes with decidable semantic acyclicity (guarded / linear / inclusion
//!   dependencies, non-recursive, sticky, keys and FDs).
//! * [`approx`] — acyclic CQ approximations (Section 8.2): maximally
//!   Σ-contained acyclic queries for queries that are *not* semantically
//!   acyclic.
//! * [`eval`] — evaluation of semantically acyclic CQs (Section 7): the
//!   fixed-parameter tractable rewrite-then-Yannakakis pipeline
//!   (Proposition 24) and the polynomial-time cover-game evaluation for
//!   guarded tgds and FDs (Theorem 25).
//! * [`pcp`] — the Theorem 7 reduction from the Post Correspondence Problem
//!   to semantic acyclicity under full tgds, demonstrating undecidability
//!   executably on concrete PCP instances.
//! * [`ucq_semac`] — the UCQ variant of semantic acyclicity (Section 8.1).

pub mod approx;
pub mod containment;
pub mod eval;
pub mod pcp;
pub mod semac;
pub mod ucq_semac;

pub use approx::{acyclic_approximations, ApproximationReport};
pub use containment::{
    contained_under_egds, contained_under_tgds, equivalent_under_egds, equivalent_under_tgds,
    ContainmentAnswer,
};
pub use eval::{cover_game_evaluate, evaluate_semantically_acyclic, EvaluationStrategy};
pub use pcp::{build_pcp_reduction, solution_path_query, PcpInstance};
pub use semac::{
    is_semantically_acyclic_no_constraints, semantic_acyclicity_under_egds,
    semantic_acyclicity_under_tgds, SemAcConfig, SemAcResult,
};
pub use ucq_semac::{ucq_semantic_acyclicity_under_tgds, UcqSemAcResult};
