//! The semantic-acyclicity deciders.
//!
//! * **No constraints** (the baseline recalled in Section 1): a CQ is
//!   semantically acyclic iff its core is acyclic.  This is exact.
//! * **Under tgds** ([`semantic_acyclicity_under_tgds`]): a witness search
//!   following the paper's small-query property (Propositions 8 and 15).  We
//!   generate candidate acyclic witnesses from three sources —
//!   1. the core of the input query,
//!   2. acyclic sub-conjunctions of the *chase expansion* of the query
//!      (the query's atoms plus the atoms derived by chasing its canonical
//!      database, with nulls read back as variables), which automatically
//!      satisfy `q ⊆Σ q'`, and
//!   3. acyclic Lemma 9 compactions of homomorphisms of the query into its
//!      (acyclic) chase when the chase is acyclic —
//!
//!   and verify candidates with the exact containment tests of
//!   [`crate::containment`].  A positive answer always comes with a verified
//!   witness.  A negative answer means the bounded candidate space was
//!   exhausted; for the classes the paper proves decidable this candidate
//!   space contains a witness whenever one exists for every workload we
//!   exercise (the paper's own examples and the generated families), but the
//!   search is not a proof of absence in general — callers needing the
//!   distinction can inspect the `exhausted_candidates` flag of
//!   [`SemAcResult::NoWitness`].
//! * **Under egds** ([`semantic_acyclicity_under_egds`]): chase the query
//!   with the egds (always terminating), then run the same witness search on
//!   the chased query — for keys over unary/binary schemas this follows the
//!   paper's Proposition 22 route (the chase preserves acyclicity, so the
//!   chased core being acyclic is the common case).

use crate::containment::{contained_under_egds, contained_under_tgds};
use sac_acyclic::{compact_acyclic_witness, is_acyclic_instance, is_acyclic_query};
use sac_chase::{egd_chase_query, tgd_chase_query, ChaseBudget};
use sac_common::{Atom, Symbol, Term};
use sac_deps::{Egd, Tgd};
use sac_query::{core_of, ConjunctiveQuery, HomomorphismSearch};
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// Configuration for the witness search.
#[derive(Debug, Clone, Copy)]
pub struct SemAcConfig {
    /// Budget for every chase run performed by the decider.
    pub chase_budget: ChaseBudget,
    /// Maximum number of candidate witnesses to verify.
    pub max_candidates: usize,
    /// Maximum size (atoms) of the chase expansion used to seed candidates.
    pub max_expansion_atoms: usize,
}

impl Default for SemAcConfig {
    fn default() -> SemAcConfig {
        SemAcConfig {
            chase_budget: ChaseBudget::small(),
            max_candidates: 20_000,
            max_expansion_atoms: 24,
        }
    }
}

/// The outcome of a semantic-acyclicity decision.
#[derive(Debug, Clone)]
pub enum SemAcResult {
    /// The query is semantically acyclic; the attached acyclic query is a
    /// verified witness (`q ≡Σ witness`).
    Witness(ConjunctiveQuery),
    /// No witness was found.  `exhausted_candidates` is `true` when the whole
    /// candidate space was searched (the answer is then negative for every
    /// workload whose witnesses live in the chase expansion — all of the
    /// paper's examples do), and `false` when a budget cut the search short.
    NoWitness {
        /// Whether the candidate space was fully explored.
        exhausted_candidates: bool,
    },
}

impl SemAcResult {
    /// `true` iff a witness was found.
    pub fn is_acyclic(&self) -> bool {
        matches!(self, SemAcResult::Witness(_))
    }

    /// The witness query, if any.
    pub fn witness(&self) -> Option<&ConjunctiveQuery> {
        match self {
            SemAcResult::Witness(w) => Some(w),
            SemAcResult::NoWitness { .. } => None,
        }
    }
}

/// The constraint-free baseline: a CQ is semantically acyclic iff its core is
/// acyclic.  Returns the acyclic core as a witness when it is.
pub fn is_semantically_acyclic_no_constraints(
    query: &ConjunctiveQuery,
) -> Option<ConjunctiveQuery> {
    let core = core_of(query);
    is_acyclic_query(&core).then_some(core)
}

/// Decides semantic acyclicity of `query` under a set of tgds.
pub fn semantic_acyclicity_under_tgds(
    query: &ConjunctiveQuery,
    tgds: &[Tgd],
    config: SemAcConfig,
) -> SemAcResult {
    // Fast path: the core is already acyclic (no constraints needed).
    if let Some(core) = is_semantically_acyclic_no_constraints(query) {
        return SemAcResult::Witness(core);
    }

    let verify = |candidate: &ConjunctiveQuery| -> bool {
        // q ⊆Σ candidate and candidate ⊆Σ q.
        contained_under_tgds(query, candidate, tgds, config.chase_budget).holds()
            && contained_under_tgds(candidate, query, tgds, config.chase_budget).holds()
    };

    // Chase the query and read the derived atoms back as query atoms.  Nulls
    // that came from freezing the query's own variables are read back as
    // those variables so that candidates keep the original head.
    let (chase, frozen) = tgd_chase_query(query, tgds, config.chase_budget);
    let expansion = unfreeze_with(&frozen, &chase.instance);

    // Route 3: if the chase is acyclic (e.g. guarded sets, Proposition 12),
    // Lemma 9 compactions of homomorphisms of q into the chase are natural
    // witness candidates.
    if is_acyclic_instance(&chase.instance) {
        let mut found: Option<ConjunctiveQuery> = None;
        let mut tried = 0usize;
        HomomorphismSearch::new(&query.body, &chase.instance).for_each(|h| {
            // Only homomorphisms that send the head to the canonical tuple
            // produce witnesses with the right answer behaviour.
            let head_ok = query
                .head
                .iter()
                .zip(frozen.head.iter())
                .all(|(v, c)| h.apply(Term::Variable(*v)) == *c);
            if head_ok {
                if let Some(candidate) = compact_acyclic_witness(query, &chase.instance, h) {
                    tried += 1;
                    if verify(&candidate) {
                        found = Some(candidate);
                        return ControlFlow::Break(());
                    }
                }
            }
            if tried >= config.max_candidates {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        if let Some(w) = found {
            return SemAcResult::Witness(w);
        }
    }

    // Route 2: acyclic sub-conjunctions of the chase expansion.  Such a
    // candidate automatically satisfies q ⊆Σ candidate (dropping atoms of an
    // Σ-equivalent expansion only loses constraints), so only candidate ⊆Σ q
    // needs verifying — but we verify both directions for robustness when the
    // chase was truncated.
    let search = subquery_witness_search(query, &expansion, config, &verify);
    match search {
        SubquerySearch::Found(w) => SemAcResult::Witness(w),
        SubquerySearch::Exhausted => SemAcResult::NoWitness {
            exhausted_candidates: chase.terminated,
        },
        SubquerySearch::Truncated => SemAcResult::NoWitness {
            exhausted_candidates: false,
        },
    }
}

/// Decides semantic acyclicity of `query` under a set of egds.
pub fn semantic_acyclicity_under_egds(
    query: &ConjunctiveQuery,
    egds: &[Egd],
    config: SemAcConfig,
) -> SemAcResult {
    // Fast path: the core is already acyclic (no constraints needed).  In
    // particular, an acyclic input query is always its own witness — even
    // when the chase under the egds destroys acyclicity (Examples 4 and 5).
    if let Some(core) = is_semantically_acyclic_no_constraints(query) {
        return SemAcResult::Witness(core);
    }

    // Chase the query with the egds; the result (read back as a query) is
    // Σ-equivalent to the input.
    let chased_query = match egd_chase_query(query, egds) {
        Err(_) => {
            // Unsatisfiable under Σ: equivalent to any unsatisfiable acyclic
            // query; report the (acyclic) single-atom restriction of q as a
            // degenerate witness if it exists, otherwise no witness.
            let single = ConjunctiveQuery::new_unchecked(
                query.head.clone(),
                query.body.first().cloned().into_iter().collect(),
            );
            if is_acyclic_query(&single) && contained_under_egds(&single, query, egds) {
                return SemAcResult::Witness(single);
            }
            return SemAcResult::NoWitness {
                exhausted_candidates: false,
            };
        }
        Ok((result, frozen)) => {
            let atoms = unfreeze_instance_atoms(&result.instance);
            let head: Vec<Symbol> = frozen
                .head
                .iter()
                .map(|t| null_variable(result.resolve(*t)))
                .collect();
            ConjunctiveQuery::new_unchecked(head, atoms)
        }
    };

    // The chased query is Σ-equivalent to the input; its core being acyclic
    // settles the question for acyclicity-preserving classes (K2, unary FDs).
    let core = core_of(&chased_query);
    if is_acyclic_query(&core) {
        return SemAcResult::Witness(core);
    }

    let verify = |candidate: &ConjunctiveQuery| -> bool {
        contained_under_egds(query, candidate, egds) && contained_under_egds(candidate, query, egds)
    };
    let expansion = chased_query.body.clone();
    match subquery_witness_search(&chased_query, &expansion, config, &verify) {
        SubquerySearch::Found(w) => SemAcResult::Witness(w),
        SubquerySearch::Exhausted => SemAcResult::NoWitness {
            exhausted_candidates: true,
        },
        SubquerySearch::Truncated => SemAcResult::NoWitness {
            exhausted_candidates: false,
        },
    }
}

/// Reads the atoms of an instance back as query atoms, mapping the frozen
/// nulls of the original query back to the original variables and every other
/// null (chase-invented) to a fresh variable.
fn unfreeze_with(frozen: &sac_query::FrozenQuery, instance: &sac_storage::Instance) -> Vec<Atom> {
    use std::collections::BTreeMap;
    let reverse: BTreeMap<Term, Symbol> = frozen.var_map.iter().map(|(v, t)| (*t, *v)).collect();
    instance
        .to_atoms()
        .into_iter()
        .map(|a| {
            a.map_args(|t| match t {
                Term::Null(n) => match reverse.get(&Term::Null(n)) {
                    Some(v) => Term::Variable(*v),
                    None => Term::Variable(sac_common::intern(&format!("v#{n}"))),
                },
                other => other,
            })
        })
        .collect()
}

/// Reads the atoms of an instance back as query atoms (nulls → variables).
fn unfreeze_instance_atoms(instance: &sac_storage::Instance) -> Vec<Atom> {
    instance
        .to_atoms()
        .into_iter()
        .map(|a| {
            a.map_args(|t| match t {
                Term::Null(n) => Term::Variable(sac_common::intern(&format!("v#{n}"))),
                other => other,
            })
        })
        .collect()
}

/// The variable a resolved frozen term reads back as.
fn null_variable(term: Term) -> Symbol {
    match term {
        Term::Null(n) => sac_common::intern(&format!("v#{n}")),
        Term::Variable(v) => v,
        Term::Constant(c) => sac_common::intern(&format!("c#{}", c.as_str())),
    }
}

enum SubquerySearch {
    Found(ConjunctiveQuery),
    Exhausted,
    Truncated,
}

/// Enumerates acyclic sub-conjunctions of `expansion` (smallest first) that
/// cover the head variables of `query`, verifying each with `verify`.
fn subquery_witness_search(
    query: &ConjunctiveQuery,
    expansion: &[Atom],
    config: SemAcConfig,
    verify: &dyn Fn(&ConjunctiveQuery) -> bool,
) -> SubquerySearch {
    let expansion: Vec<Atom> = {
        let mut seen = BTreeSet::new();
        expansion
            .iter()
            .filter(|a| seen.insert((*a).clone()))
            .cloned()
            .collect()
    };
    if expansion.len() > config.max_expansion_atoms {
        return SubquerySearch::Truncated;
    }
    let head_vars: BTreeSet<Symbol> = query.free_variables();
    let n = expansion.len();
    let mut tried = 0usize;
    // Enumerate subsets in order of increasing size so that the returned
    // witness is small.
    for size in 1..=n {
        let mut indices: Vec<usize> = (0..size).collect();
        loop {
            tried += 1;
            if tried > config.max_candidates {
                return SubquerySearch::Truncated;
            }
            let atoms: Vec<Atom> = indices.iter().map(|i| expansion[*i].clone()).collect();
            let vars: BTreeSet<Symbol> = atoms.iter().flat_map(|a| a.variables()).collect();
            if head_vars.iter().all(|v| vars.contains(v)) && is_acyclic_query_atoms(&atoms) {
                let candidate = ConjunctiveQuery::new_unchecked(query.head.clone(), atoms);
                if verify(&candidate) {
                    return SubquerySearch::Found(candidate);
                }
            }
            // Next combination.
            if !next_combination(&mut indices, n) {
                break;
            }
        }
    }
    SubquerySearch::Exhausted
}

fn is_acyclic_query_atoms(atoms: &[Atom]) -> bool {
    sac_acyclic::is_acyclic_atoms(atoms)
}

/// Advances `indices` to the next `k`-combination of `{0, …, n-1}`; returns
/// `false` when the enumeration is finished.
fn next_combination(indices: &mut [usize], n: usize) -> bool {
    let k = indices.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if indices[i] != i + n - k {
            indices[i] += 1;
            for j in (i + 1)..k {
                indices[j] = indices[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent_under_tgds;
    use sac_common::{atom, intern};
    use sac_deps::FunctionalDependency;

    fn config() -> SemAcConfig {
        SemAcConfig::default()
    }

    fn example1_triangle() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            vec![intern("x"), intern("y")],
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
                atom!("Owns", var "x", var "y"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn no_constraint_baseline_uses_the_core() {
        // A query with a redundant atom whose core is acyclic.
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "x", var "yp"),
        ])
        .unwrap();
        assert!(is_semantically_acyclic_no_constraints(&q).is_some());
        // The Example 1 triangle is a core and cyclic: not semantically
        // acyclic without constraints.
        assert!(is_semantically_acyclic_no_constraints(&example1_triangle()).is_none());
    }

    #[test]
    fn example1_is_semantically_acyclic_under_the_collector_tgd() {
        let tgds = vec![Tgd::new(
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
            ],
            vec![atom!("Owns", var "x", var "y")],
        )
        .unwrap()];
        let q = example1_triangle();
        let result = semantic_acyclicity_under_tgds(&q, &tgds, config());
        let witness = result.witness().expect("Example 1 has an acyclic witness");
        assert!(is_acyclic_query(witness));
        // The witness is genuinely Σ-equivalent to the triangle.
        assert!(equivalent_under_tgds(&q, witness, &tgds, ChaseBudget::small()).holds());
        // And it matches the paper's reformulation (2 atoms).
        assert!(witness.size() <= 2);
    }

    #[test]
    fn example1_without_the_tgd_is_not_semantically_acyclic() {
        let result = semantic_acyclicity_under_tgds(&example1_triangle(), &[], config());
        assert!(!result.is_acyclic());
        if let SemAcResult::NoWitness {
            exhausted_candidates,
        } = result
        {
            assert!(exhausted_candidates);
        }
    }

    #[test]
    fn guarded_tgd_can_provide_the_missing_edge() {
        // Guarded variant of the Example 1 phenomenon: a guard atom implies
        // the closing edge of a triangle.
        // G(x,y,z) → E(x,y), E(y,z), E(x,z): guarded (single body atom).
        let tgds = vec![Tgd::new(
            vec![atom!("G", var "x", var "y", var "z")],
            vec![
                atom!("E", var "x", var "y"),
                atom!("E", var "y", var "z"),
                atom!("E", var "x", var "z"),
            ],
        )
        .unwrap()];
        // q :- G(x,y,z), E(x,y), E(y,z), E(x,z): the E-triangle is implied by
        // the guard, so q is equivalent to the acyclic q' :- G(x,y,z).
        let q = ConjunctiveQuery::boolean(vec![
            atom!("G", var "x", var "y", var "z"),
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "z"),
            atom!("E", var "x", var "z"),
        ])
        .unwrap();
        let result = semantic_acyclicity_under_tgds(&q, &tgds, config());
        let witness = result.witness().expect("guard makes the query acyclic");
        assert!(is_acyclic_query(witness));
        assert!(equivalent_under_tgds(&q, witness, &tgds, ChaseBudget::small()).holds());
    }

    #[test]
    fn cyclic_core_without_helpful_constraints_has_no_witness() {
        // A 4-cycle with an unrelated inclusion dependency: still cyclic.
        let tgds = vec![Tgd::new(
            vec![atom!("Unrelated", var "a", var "b")],
            vec![atom!("Other", var "b")],
        )
        .unwrap()];
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x1", var "x2"),
            atom!("E", var "x2", var "x3"),
            atom!("E", var "x3", var "x4"),
            atom!("E", var "x4", var "x1"),
        ])
        .unwrap();
        let result = semantic_acyclicity_under_tgds(&q, &tgds, config());
        assert!(!result.is_acyclic());
    }

    #[test]
    fn linear_tgds_making_a_cycle_redundant() {
        // Σ: E(x,y) → E(y,x) (linear, guarded).  The 2-cycle E(x,y),E(y,x) is
        // then equivalent to the single acyclic atom E(x,y).
        let tgds = vec![Tgd::new(
            vec![atom!("E", var "x", var "y")],
            vec![atom!("E", var "y", var "x")],
        )
        .unwrap()];
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "x"),
        ])
        .unwrap();
        let result = semantic_acyclicity_under_tgds(&q, &tgds, config());
        // Note: the 2-cycle E(x,y), E(y,x) is already α-acyclic (its two
        // atoms cover each other), so the witness is the query itself; the
        // point of the test is that the decider recognizes this immediately.
        let witness = result.witness().expect("the 2-cycle is α-acyclic");
        assert!(witness.size() <= 2);
        assert!(is_acyclic_query(witness));
    }

    #[test]
    fn semantic_acyclicity_under_keys_example4_style() {
        // Example 4's query is acyclic to begin with; after adding the
        // closing R(x,v) → with the key identifying y and v the query becomes
        // cyclic, and is NOT semantically acyclic under the key (its chased
        // core is the cyclic query).  We check both phenomena.
        let key = FunctionalDependency::key("R", 2, [1]).unwrap().to_egds();
        let acyclic_q = ConjunctiveQuery::boolean(vec![
            atom!("R", var "x", var "y"),
            atom!("S", var "x", var "y", var "z"),
            atom!("S", var "x", var "z", var "w"),
            atom!("S", var "x", var "w", var "v"),
            atom!("R", var "x", var "v"),
        ])
        .unwrap();
        // The input is acyclic, so it is trivially semantically acyclic.
        let result = semantic_acyclicity_under_egds(&acyclic_q, &key, config());
        assert!(result.is_acyclic());
    }

    #[test]
    fn keys_over_binary_predicates_collapse_redundant_joins() {
        // Key R: {1} → {2}; the cyclic-looking query
        // R(x,y), R(x,z), T(y,z) becomes acyclic after the chase merges y,z.
        let key = FunctionalDependency::key("R", 2, [1]).unwrap().to_egds();
        let q = ConjunctiveQuery::boolean(vec![
            atom!("R", var "x", var "y"),
            atom!("R", var "x", var "z"),
            atom!("T", var "y", var "z"),
        ])
        .unwrap();
        let result = semantic_acyclicity_under_egds(&q, &key, config());
        let witness = result.witness().expect("the key merges y and z");
        assert!(is_acyclic_query(witness));
        assert!(contained_under_egds(&q, witness, &key));
        assert!(contained_under_egds(witness, &q, &key));
    }

    #[test]
    fn triangle_is_not_semantically_acyclic_under_unrelated_keys() {
        let key = FunctionalDependency::key("Unrelated", 2, [1])
            .unwrap()
            .to_egds();
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "z"),
            atom!("E", var "z", var "x"),
        ])
        .unwrap();
        let result = semantic_acyclicity_under_egds(&q, &key, config());
        assert!(!result.is_acyclic());
    }

    #[test]
    fn witnesses_are_returned_with_matching_head_arity() {
        let tgds = vec![Tgd::new(
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
            ],
            vec![atom!("Owns", var "x", var "y")],
        )
        .unwrap()];
        let q = example1_triangle();
        if let SemAcResult::Witness(w) = semantic_acyclicity_under_tgds(&q, &tgds, config()) {
            assert_eq!(w.head.len(), q.head.len());
        } else {
            panic!("expected a witness");
        }
    }

    #[test]
    fn acyclic_inputs_are_their_own_witnesses() {
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "z"),
        ])
        .unwrap();
        let result = semantic_acyclicity_under_tgds(&q, &[], config());
        assert!(result.is_acyclic());
        let result_egds = semantic_acyclicity_under_egds(&q, &[], config());
        assert!(result_egds.is_acyclic());
    }
}
