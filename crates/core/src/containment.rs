//! Containment and equivalence under constraints (Lemma 1).
//!
//! For tgds the chase may be infinite, so the answer is three-valued:
//! a chase prefix suffices to certify containment (the frozen head tuple is
//! already an answer of `q'` on the prefix), a *terminated* chase certifies
//! non-containment, and otherwise we fall back to the UCQ rewriting (exact
//! for non-recursive and sticky sets) before giving up with
//! [`ContainmentAnswer::Inconclusive`].
//!
//! For egds the chase always terminates, so the answer is exact; a failing
//! chase means the left query is unsatisfiable on every instance satisfying
//! the egds, and containment holds vacuously.

use sac_chase::{egd_chase_query, tgd_chase_query, ChaseBudget};
use sac_common::Term;
use sac_deps::{Egd, Tgd};
use sac_query::{evaluate, ConjunctiveQuery};
use sac_rewrite::{contained_via_rewriting, RewriteBudget};

/// The outcome of a containment test under tgds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainmentAnswer {
    /// Containment holds.
    Holds,
    /// Containment does not hold.
    Fails,
    /// The chase budget was exhausted and no rewriting-based fallback
    /// applied; the question is unresolved.
    Inconclusive,
}

impl ContainmentAnswer {
    /// `true` iff the answer is [`ContainmentAnswer::Holds`].
    pub fn holds(self) -> bool {
        self == ContainmentAnswer::Holds
    }

    /// `true` iff the answer is definite (not inconclusive).
    pub fn definite(self) -> bool {
        self != ContainmentAnswer::Inconclusive
    }
}

/// Decides `q ⊆Σ q'` for a set of tgds.
///
/// Exact whenever the chase of `q` under `Σ` terminates within `budget`
/// (always the case for non-recursive, weakly-acyclic and full sets) or the
/// set is UCQ rewritable within the default rewriting budget; otherwise a
/// certified `Holds` may still be produced from a chase prefix, and
/// `Inconclusive` is returned in the remaining cases.
pub fn contained_under_tgds(
    q: &ConjunctiveQuery,
    q_prime: &ConjunctiveQuery,
    tgds: &[Tgd],
    budget: ChaseBudget,
) -> ContainmentAnswer {
    if q.head.len() != q_prime.head.len() {
        return ContainmentAnswer::Fails;
    }
    let (result, frozen) = tgd_chase_query(q, tgds, budget);
    let answers = evaluate(q_prime, &result.instance);
    if answers.contains(&frozen.head) {
        // A chase prefix is homomorphically embeddable into the full chase,
        // so a hit on the prefix certifies containment.
        return ContainmentAnswer::Holds;
    }
    if result.terminated {
        return ContainmentAnswer::Fails;
    }
    // Chase truncated: try the rewriting-based route, exact for
    // UCQ-rewritable sets.
    match contained_via_rewriting(q, q_prime, tgds, RewriteBudget::small()) {
        Some(true) => ContainmentAnswer::Holds,
        Some(false) => ContainmentAnswer::Fails,
        None => ContainmentAnswer::Inconclusive,
    }
}

/// Decides `q ≡Σ q'` for a set of tgds.
pub fn equivalent_under_tgds(
    q: &ConjunctiveQuery,
    q_prime: &ConjunctiveQuery,
    tgds: &[Tgd],
    budget: ChaseBudget,
) -> ContainmentAnswer {
    let forward = contained_under_tgds(q, q_prime, tgds, budget);
    if forward == ContainmentAnswer::Fails {
        return ContainmentAnswer::Fails;
    }
    let backward = contained_under_tgds(q_prime, q, tgds, budget);
    match (forward, backward) {
        (ContainmentAnswer::Holds, ContainmentAnswer::Holds) => ContainmentAnswer::Holds,
        (_, ContainmentAnswer::Fails) => ContainmentAnswer::Fails,
        _ => ContainmentAnswer::Inconclusive,
    }
}

/// Decides `q ⊆Σ q'` for a set of egds (exact; the egd chase terminates).
pub fn contained_under_egds(
    q: &ConjunctiveQuery,
    q_prime: &ConjunctiveQuery,
    egds: &[Egd],
) -> bool {
    if q.head.len() != q_prime.head.len() {
        return false;
    }
    match egd_chase_query(q, egds) {
        Err(_) => true, // q is unsatisfiable w.r.t. Σ: contained vacuously.
        Ok((result, frozen)) => {
            let head: Vec<Term> = result.resolve_tuple(&frozen.head);
            evaluate(q_prime, &result.instance).contains(&head)
        }
    }
}

/// Decides `q ≡Σ q'` for a set of egds.
pub fn equivalent_under_egds(
    q: &ConjunctiveQuery,
    q_prime: &ConjunctiveQuery,
    egds: &[Egd],
) -> bool {
    contained_under_egds(q, q_prime, egds) && contained_under_egds(q_prime, q, egds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};
    use sac_deps::FunctionalDependency;

    fn collector_tgd() -> Vec<Tgd> {
        vec![Tgd::new(
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
            ],
            vec![atom!("Owns", var "x", var "y")],
        )
        .unwrap()]
    }

    fn example1_triangle() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            vec![intern("x"), intern("y")],
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
                atom!("Owns", var "x", var "y"),
            ],
        )
        .unwrap()
    }

    fn example1_acyclic() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            vec![intern("x"), intern("y")],
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn example1_equivalence_under_the_collector_tgd() {
        // q ≡Σ q' for Example 1: the acyclic reformulation is equivalent
        // under the tgd, but not without it.
        let tgds = collector_tgd();
        assert!(equivalent_under_tgds(
            &example1_triangle(),
            &example1_acyclic(),
            &tgds,
            ChaseBudget::small()
        )
        .holds());
        assert!(!sac_query::equivalent(
            &example1_triangle(),
            &example1_acyclic()
        ));
    }

    #[test]
    fn containment_direction_without_the_tgd_still_holds_classically() {
        // triangle ⊆ acyclic holds even without constraints (drop an atom);
        // the converse requires the tgd.
        assert!(contained_under_tgds(
            &example1_triangle(),
            &example1_acyclic(),
            &[],
            ChaseBudget::small()
        )
        .holds());
        assert_eq!(
            contained_under_tgds(
                &example1_acyclic(),
                &example1_triangle(),
                &[],
                ChaseBudget::small()
            ),
            ContainmentAnswer::Fails
        );
    }

    #[test]
    fn containment_with_existential_tgds() {
        // Dept(d) → ∃m Manages(m,d): every department query is contained in a
        // "has a manager" query under Σ.
        let tgds = vec![Tgd::new(
            vec![atom!("Dept", var "d")],
            vec![atom!("Manages", var "m", var "d")],
        )
        .unwrap()];
        let q = ConjunctiveQuery::new(vec![intern("d")], vec![atom!("Dept", var "d")]).unwrap();
        let q_prime =
            ConjunctiveQuery::new(vec![intern("d")], vec![atom!("Manages", var "m", var "d")])
                .unwrap();
        assert!(contained_under_tgds(&q, &q_prime, &tgds, ChaseBudget::small()).holds());
        assert_eq!(
            contained_under_tgds(&q_prime, &q, &tgds, ChaseBudget::small()),
            ContainmentAnswer::Fails
        );
    }

    #[test]
    fn truncated_chase_still_certifies_positive_containment() {
        // An infinite (guarded) chase: Person(x) → ∃z Parent(x,z);
        // Parent(x,z) → Person(z).  Person(p) ⊆Σ ∃z Parent(p,z) is certified
        // from a one-step prefix even though the chase never terminates.
        let tgds = vec![
            Tgd::new(
                vec![atom!("Person", var "x")],
                vec![atom!("Parent", var "x", var "z")],
            )
            .unwrap(),
            Tgd::new(
                vec![atom!("Parent", var "x", var "z")],
                vec![atom!("Person", var "z")],
            )
            .unwrap(),
        ];
        let q = ConjunctiveQuery::new(vec![intern("p")], vec![atom!("Person", var "p")]).unwrap();
        let q_prime =
            ConjunctiveQuery::new(vec![intern("p")], vec![atom!("Parent", var "p", var "z")])
                .unwrap();
        let answer = contained_under_tgds(&q, &q_prime, &tgds, ChaseBudget::new(50, 500));
        assert!(answer.holds());
    }

    #[test]
    fn head_arity_mismatch_fails_immediately() {
        let q = ConjunctiveQuery::new(vec![intern("d")], vec![atom!("Dept", var "d")]).unwrap();
        let q_prime = ConjunctiveQuery::boolean(vec![atom!("Dept", var "d")]).unwrap();
        assert_eq!(
            contained_under_tgds(&q, &q_prime, &[], ChaseBudget::small()),
            ContainmentAnswer::Fails
        );
        assert!(!contained_under_egds(&q, &q_prime, &[]));
    }

    #[test]
    fn containment_under_a_key_identifies_attributes() {
        // Key R: {1} → {2}.  q :- R(x,y), R(x,z), S(y) is contained under the
        // key in q' :- R(x,y), S(y) and vice versa (they are equivalent).
        let key = FunctionalDependency::key("R", 2, [1]).unwrap().to_egds();
        let q = ConjunctiveQuery::boolean(vec![
            atom!("R", var "x", var "y"),
            atom!("R", var "x", var "z"),
            atom!("S", var "z"),
        ])
        .unwrap();
        let q_prime =
            ConjunctiveQuery::boolean(vec![atom!("R", var "x", var "y"), atom!("S", var "y")])
                .unwrap();
        assert!(contained_under_egds(&q, &q_prime, &key));
        assert!(contained_under_egds(&q_prime, &q, &key));
        assert!(equivalent_under_egds(&q, &q_prime, &key));
        // These two queries happen to be classically equivalent as well (the
        // extra R-atom folds); the key is exercised above on the chased form.
        assert!(contained_under_egds(&q_prime, &q, &[]));
    }

    #[test]
    fn failing_egd_chase_gives_vacuous_containment() {
        // The query forces R(a,b) and R(a,c) with constants; the key makes it
        // unsatisfiable, so it is contained in anything.
        let key = FunctionalDependency::key("R", 2, [1]).unwrap().to_egds();
        let q = ConjunctiveQuery::boolean(vec![
            atom!("R", cst "a", cst "b"),
            atom!("R", cst "a", cst "c"),
        ])
        .unwrap();
        let anything = ConjunctiveQuery::boolean(vec![atom!("Z", var "w")]).unwrap();
        assert!(contained_under_egds(&q, &anything, &key));
        assert!(!contained_under_egds(&anything, &q, &key));
    }

    #[test]
    fn equivalence_under_tgds_is_reflexive_and_detects_differences() {
        let tgds = collector_tgd();
        let q = example1_triangle();
        assert!(equivalent_under_tgds(&q, &q, &tgds, ChaseBudget::small()).holds());
        let other = ConjunctiveQuery::new(
            vec![intern("x"), intern("y")],
            vec![atom!("Owns", var "x", var "y")],
        )
        .unwrap();
        assert_eq!(
            equivalent_under_tgds(&q, &other, &tgds, ChaseBudget::small()),
            ContainmentAnswer::Fails
        );
    }
}
