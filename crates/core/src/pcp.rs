//! The Theorem 7 reduction: PCP ≤ semantic acyclicity under full tgds.
//!
//! Undecidability cannot be "run", but the reduction can: given a Post
//! Correspondence Problem instance over `{a, b}`, we build the Boolean CQ `q`
//! and the set `Σ` of full tgds from the proof of Theorem 7 (the appendix's
//! "temporary" version, whose underlying shape is the one sketched in
//! Figure 2), such that
//!
//! * if the PCP instance has a solution `i1 … im`, then the acyclic *path
//!   query* spelling `w_{i1} … w_{im}` is Σ-equivalent to `q`
//!   ([`solution_path_query`] builds it, and the equivalence is checkable
//!   with the chase because full tgds always terminate);
//! * if the instance has no solution, no path query is Σ-equivalent to `q`.
//!
//! The tests exercise both directions on concrete instances, which is the
//! strongest executable evidence a library can give for a reduction used in
//! an undecidability proof.

use sac_common::{Atom, Error, Result, Term};
use sac_deps::Tgd;
use sac_query::ConjunctiveQuery;

/// A PCP instance: two equally long lists of non-empty words over `{a, b}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcpInstance {
    /// The first list `w_1, …, w_n`.
    pub top: Vec<String>,
    /// The second list `w'_1, …, w'_n`.
    pub bottom: Vec<String>,
}

impl PcpInstance {
    /// Creates an instance, validating the alphabet and the list lengths.
    pub fn new(top: Vec<&str>, bottom: Vec<&str>) -> Result<PcpInstance> {
        let top: Vec<String> = top.into_iter().map(str::to_owned).collect();
        let bottom: Vec<String> = bottom.into_iter().map(str::to_owned).collect();
        if top.len() != bottom.len() || top.is_empty() {
            return Err(Error::Malformed(
                "PCP lists must be non-empty and equally long".into(),
            ));
        }
        for w in top.iter().chain(bottom.iter()) {
            if w.is_empty() || !w.chars().all(|c| c == 'a' || c == 'b') {
                return Err(Error::Malformed(format!(
                    "PCP words must be non-empty words over {{a,b}}, got `{w}`"
                )));
            }
        }
        Ok(PcpInstance { top, bottom })
    }

    /// The even-length normalization used by the appendix proof (`a ↦ aa`,
    /// `b ↦ bb`), which does not change solvability.
    pub fn normalize_even(&self) -> PcpInstance {
        let double = |w: &String| w.chars().flat_map(|c| [c, c]).collect::<String>();
        PcpInstance {
            top: self.top.iter().map(double).collect(),
            bottom: self.bottom.iter().map(double).collect(),
        }
    }

    /// Checks whether an index sequence is a solution.
    pub fn is_solution(&self, indices: &[usize]) -> bool {
        if indices.is_empty() || indices.iter().any(|i| *i >= self.top.len()) {
            return false;
        }
        let top: String = indices.iter().map(|i| self.top[*i].as_str()).collect();
        let bottom: String = indices.iter().map(|i| self.bottom[*i].as_str()).collect();
        top == bottom
    }

    /// Brute-force search for a solution of length at most `max_len`
    /// (exponential; used only by tests and demos on tiny instances).
    pub fn find_solution(&self, max_len: usize) -> Option<Vec<usize>> {
        let n = self.top.len();
        let mut stack: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        while let Some(seq) = stack.pop() {
            if self.is_solution(&seq) {
                return Some(seq);
            }
            if seq.len() >= max_len {
                continue;
            }
            // Prune: one concatenation must be a prefix of the other.
            let top: String = seq.iter().map(|i| self.top[*i].as_str()).collect();
            let bottom: String = seq.iter().map(|i| self.bottom[*i].as_str()).collect();
            if !(top.starts_with(&bottom) || bottom.starts_with(&top)) {
                continue;
            }
            for i in 0..n {
                let mut next = seq.clone();
                next.push(i);
                stack.push(next);
            }
        }
        None
    }
}

/// A path of atoms spelling `word` from `from` to `to`, with fresh
/// intermediate variables derived from `prefix`.
fn word_path(word: &str, from: Term, to: Term, prefix: &str) -> Vec<Atom> {
    let letters: Vec<char> = word.chars().collect();
    let mut atoms = Vec::with_capacity(letters.len());
    let mut current = from;
    for (i, letter) in letters.iter().enumerate() {
        let next = if i + 1 == letters.len() {
            to
        } else {
            Term::variable(&format!("{prefix}_{i}"))
        };
        let predicate = match letter {
            'a' => "Pa",
            'b' => "Pb",
            other => unreachable!("validated alphabet, got {other}"),
        };
        atoms.push(Atom::from_parts(predicate, vec![current, next]));
        current = next;
    }
    atoms
}

/// The atoms of the "copy of q" gadget over variables `(x, y, z, u, v)` —
/// these are exactly the atoms the finalization rules add and the atoms the
/// query `q` consists of (besides the finalization body pattern itself).
fn gadget_atoms(x: Term, y: Term, z: Term, u: Term, v: Term) -> Vec<Atom> {
    let mut atoms = vec![
        Atom::from_parts("start", vec![x]),
        Atom::from_parts("end", vec![v]),
        Atom::from_parts("Phash", vec![x, y]),
        Atom::from_parts("Phash", vec![x, z]),
        Atom::from_parts("Phash", vec![x, u]),
        Atom::from_parts("Pa", vec![y, z]),
        Atom::from_parts("Pa", vec![z, u]),
        Atom::from_parts("Pa", vec![u, y]),
        Atom::from_parts("Pb", vec![z, y]),
        Atom::from_parts("Pb", vec![u, z]),
        Atom::from_parts("Pb", vec![y, u]),
        Atom::from_parts("Pstar", vec![y, v]),
        Atom::from_parts("Pstar", vec![z, v]),
        Atom::from_parts("Pstar", vec![u, v]),
    ];
    for s in [y, z, u] {
        for t in [y, z, u] {
            atoms.push(Atom::from_parts("sync", vec![s, t]));
        }
    }
    atoms
}

/// Builds the Theorem 7 reduction: the Boolean CQ `q` and the set `Σ` of full
/// tgds for a PCP instance.
pub fn build_pcp_reduction(instance: &PcpInstance) -> (ConjunctiveQuery, Vec<Tgd>) {
    let x = Term::variable("x");
    let y = Term::variable("y");
    let z = Term::variable("z");
    let u = Term::variable("u");
    let v = Term::variable("v");
    let q = ConjunctiveQuery::new_unchecked(Vec::new(), gadget_atoms(x, y, z, u, v));

    let mut tgds = Vec::new();

    // 1. Initialization: start(x), Phash(x,y) → sync(y,y).
    tgds.push(
        Tgd::new(
            vec![
                Atom::from_parts("start", vec![Term::variable("ix")]),
                Atom::from_parts("Phash", vec![Term::variable("ix"), Term::variable("iy")]),
            ],
            vec![Atom::from_parts(
                "sync",
                vec![Term::variable("iy"), Term::variable("iy")],
            )],
        )
        .expect("initialization tgd is well-formed"),
    );

    // 2. Synchronization, one rule per index.
    for (i, (w, w_prime)) in instance.top.iter().zip(instance.bottom.iter()).enumerate() {
        let sx = Term::variable(&format!("s{i}_x"));
        let sy = Term::variable(&format!("s{i}_y"));
        let sz = Term::variable(&format!("s{i}_z"));
        let su = Term::variable(&format!("s{i}_u"));
        let mut body = vec![Atom::from_parts("sync", vec![sx, sy])];
        body.extend(word_path(w, sx, sz, &format!("s{i}_top")));
        body.extend(word_path(w_prime, sy, su, &format!("s{i}_bot")));
        tgds.push(
            Tgd::new(body, vec![Atom::from_parts("sync", vec![sz, su])])
                .expect("synchronization tgd is well-formed"),
        );
    }

    // 3. Finalization, one rule per index.
    for (i, (w, w_prime)) in instance.top.iter().zip(instance.bottom.iter()).enumerate() {
        let fx = Term::variable(&format!("f{i}_x"));
        let fy = Term::variable(&format!("f{i}_y"));
        let fz = Term::variable(&format!("f{i}_z"));
        let fu = Term::variable(&format!("f{i}_u"));
        let fv = Term::variable(&format!("f{i}_v"));
        let fy1 = Term::variable(&format!("f{i}_y1"));
        let fy2 = Term::variable(&format!("f{i}_y2"));
        let mut body = vec![
            Atom::from_parts("start", vec![fx]),
            Atom::from_parts("Pa", vec![fy, fz]),
            Atom::from_parts("Pa", vec![fz, fu]),
            Atom::from_parts("Pstar", vec![fu, fv]),
            Atom::from_parts("end", vec![fv]),
            Atom::from_parts("sync", vec![fy1, fy2]),
        ];
        body.extend(word_path(w, fy1, fy, &format!("f{i}_top")));
        body.extend(word_path(w_prime, fy2, fy, &format!("f{i}_bot")));
        // Head: the full copy of the gadget minus the atoms already in the
        // body pattern (keeping them is harmless; we add the complete gadget
        // so the head literally contains a copy of q over (fx, fy, fz, fu, fv)).
        let head = gadget_atoms(fx, fy, fz, fu, fv);
        tgds.push(Tgd::new(body, head).expect("finalization tgd is well-formed"));
    }

    (q, tgds)
}

/// The acyclic *path query* associated with a candidate solution sequence:
/// `start → P# → (spell w_{i1}…w_{im}) → Pa → Pa → P* → end`.
///
/// Returns an error if the sequence is not a valid index sequence.
pub fn solution_path_query(instance: &PcpInstance, indices: &[usize]) -> Result<ConjunctiveQuery> {
    if indices.is_empty() || indices.iter().any(|i| *i >= instance.top.len()) {
        return Err(Error::Malformed("invalid PCP index sequence".into()));
    }
    let word: String = indices.iter().map(|i| instance.top[*i].as_str()).collect();
    let x = Term::variable("p_x");
    let first = Term::variable("p_0");
    let w_end = Term::variable("p_wend");
    let z = Term::variable("p_z");
    let u = Term::variable("p_u");
    let v = Term::variable("p_v");
    let mut atoms = vec![
        Atom::from_parts("start", vec![x]),
        Atom::from_parts("Phash", vec![x, first]),
    ];
    atoms.extend(word_path(&word, first, w_end, "p_w"));
    atoms.push(Atom::from_parts("Pa", vec![w_end, z]));
    atoms.push(Atom::from_parts("Pa", vec![z, u]));
    atoms.push(Atom::from_parts("Pstar", vec![u, v]));
    atoms.push(Atom::from_parts("end", vec![v]));
    Ok(ConjunctiveQuery::new_unchecked(Vec::new(), atoms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::{contained_under_tgds, equivalent_under_tgds, ContainmentAnswer};
    use sac_acyclic::is_acyclic_query;
    use sac_chase::ChaseBudget;
    use sac_deps::classify_tgds;

    fn budget() -> ChaseBudget {
        ChaseBudget::new(5_000, 100_000)
    }

    #[test]
    fn instance_validation_and_solutions() {
        assert!(PcpInstance::new(vec!["a"], vec!["a", "b"]).is_err());
        assert!(PcpInstance::new(vec!["ac"], vec!["a"]).is_err());
        let inst = PcpInstance::new(vec!["a", "ab"], vec!["aa", "b"]).unwrap();
        assert!(inst.is_solution(&[0, 1]));
        assert!(!inst.is_solution(&[1, 0]));
        assert!(!inst.is_solution(&[]));
        assert_eq!(inst.find_solution(3), Some(vec![0, 1]));
        let unsolvable = PcpInstance::new(vec!["a"], vec!["b"]).unwrap();
        assert_eq!(unsolvable.find_solution(4), None);
    }

    #[test]
    fn even_normalization_preserves_solvability() {
        let inst = PcpInstance::new(vec!["a", "ab"], vec!["aa", "b"]).unwrap();
        let even = inst.normalize_even();
        assert!(even.is_solution(&[0, 1]));
        assert!(even.top.iter().all(|w| w.len() % 2 == 0));
    }

    #[test]
    fn reduction_produces_full_body_connected_tgds_and_a_cyclic_query() {
        let inst = PcpInstance::new(vec!["a"], vec!["a"])
            .unwrap()
            .normalize_even();
        let (q, tgds) = build_pcp_reduction(&inst);
        let classification = classify_tgds(&tgds);
        assert!(classification.full, "Theorem 7 uses full tgds");
        // The initialization and synchronization rules are body-connected
        // (the finalization rules are not: `start(x)` floats freely, exactly
        // as in the paper's construction).
        assert!(tgds[0].is_body_connected());
        assert!(tgds[1].is_body_connected());
        assert!(!is_acyclic_query(&q), "the gadget query is cyclic");
        assert!(q.is_connected());
    }

    #[test]
    fn solvable_instance_yields_an_equivalent_acyclic_path_query() {
        // w1 = aa, w1' = aa: solution [0].
        let inst = PcpInstance::new(vec!["a"], vec!["a"])
            .unwrap()
            .normalize_even();
        let solution = inst.find_solution(2).expect("trivially solvable");
        let (q, tgds) = build_pcp_reduction(&inst);
        let path = solution_path_query(&inst, &solution).unwrap();
        assert!(is_acyclic_query(&path));
        // Full tgds terminate, so the chase-based equivalence test is exact.
        assert!(
            equivalent_under_tgds(&q, &path, &tgds, budget()).holds(),
            "the solution path query must be Σ-equivalent to q"
        );
    }

    #[test]
    fn path_query_of_a_non_solution_is_not_equivalent() {
        // Unsolvable instance: a / b.
        let inst = PcpInstance::new(vec!["a"], vec!["b"])
            .unwrap()
            .normalize_even();
        let (q, tgds) = build_pcp_reduction(&inst);
        // A candidate path spelling the top word of index 0 (not a solution).
        let path = solution_path_query(&inst, &[0]).unwrap();
        // q always maps into the chase of an acyclic path's canonical db only
        // if the finalization fires; here it must not.
        assert_eq!(
            contained_under_tgds(&path, &q, &tgds, budget()),
            ContainmentAnswer::Fails
        );
        assert!(!equivalent_under_tgds(&q, &path, &tgds, budget()).holds());
    }

    #[test]
    fn the_gadget_query_always_contains_the_path_query() {
        // Direction that holds regardless of solvability: q ⊆Σ path, because
        // the path maps homomorphically into q (wrap around the triangle).
        let inst = PcpInstance::new(vec!["ab"], vec!["ba"])
            .unwrap()
            .normalize_even();
        let (q, tgds) = build_pcp_reduction(&inst);
        let path = solution_path_query(&inst, &[0]).unwrap();
        assert!(contained_under_tgds(&q, &path, &tgds, budget()).holds());
    }

    #[test]
    fn two_index_solution_also_witnesses_equivalence() {
        let inst = PcpInstance::new(vec!["a", "ab"], vec!["aa", "b"])
            .unwrap()
            .normalize_even();
        let solution = inst.find_solution(3).expect("solvable");
        let (q, tgds) = build_pcp_reduction(&inst);
        let path = solution_path_query(&inst, &solution).unwrap();
        assert!(equivalent_under_tgds(&q, &path, &tgds, budget()).holds());
    }
}
