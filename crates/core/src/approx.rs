//! Acyclic CQ approximations (Section 8.2).
//!
//! When a CQ `q` is not semantically acyclic under `Σ`, the paper still
//! guarantees the existence of *acyclic approximations*: acyclic CQs `q'`
//! with `q' ⊆Σ q` that are maximal with that property.  Evaluating an
//! approximation gives sound ("quick") answers when exact evaluation is too
//! expensive.
//!
//! Candidate generation follows the constructive argument of Section 8.2:
//!
//! * the trivial single-variable query `R(x, …, x) ∧ …` over the predicates
//!   of `q` (always contained in `q`... when a homomorphism collapsing `q`
//!   onto it exists; we verify), guaranteeing at least one candidate,
//! * homomorphic collapses of `q`: images of `q` under variable
//!   identifications — every such image is classically contained in `q`,
//! * acyclic sub-structures of collapses.
//!
//! Maximality is determined by pairwise `⊆Σ` tests among the verified
//! candidates.

use crate::containment::{contained_under_tgds, ContainmentAnswer};
use sac_acyclic::is_acyclic_query;
use sac_chase::ChaseBudget;
use sac_common::{Atom, Symbol, Term};
use sac_deps::Tgd;
use sac_query::{core_of, ConjunctiveQuery};
use std::collections::BTreeSet;

/// The result of an approximation computation.
#[derive(Debug, Clone)]
pub struct ApproximationReport {
    /// The maximal acyclic approximations found (pairwise ⊆Σ-incomparable).
    pub maximal: Vec<ConjunctiveQuery>,
    /// Whether one of the approximations is Σ-equivalent to the input (i.e.
    /// the query was semantically acyclic after all).
    pub exact: bool,
    /// Number of candidates considered.
    pub candidates_considered: usize,
}

/// Computes acyclic approximations of `query` under `tgds`.
///
/// Only Boolean and constant-free queries are guaranteed a non-empty result
/// (the paper's Section 8.2 restricts to constant-free queries); for other
/// queries the function still returns whatever verified candidates it finds.
pub fn acyclic_approximations(
    query: &ConjunctiveQuery,
    tgds: &[Tgd],
    budget: ChaseBudget,
) -> ApproximationReport {
    let mut candidates: Vec<ConjunctiveQuery> = Vec::new();

    // Candidate source 1: the core, if acyclic (then the approximation is
    // exact).
    let core = core_of(query);
    if is_acyclic_query(&core) {
        candidates.push(core.clone());
    }

    // Candidate source 2: collapses of q by identifying pairs of existential
    // variables (one and two rounds).
    let vars: Vec<Symbol> = query.existential_variables().into_iter().collect();
    let mut collapses: Vec<ConjunctiveQuery> = Vec::new();
    for i in 0..vars.len() {
        for j in (i + 1)..vars.len() {
            let merged = merge_vars(query, vars[i], vars[j]);
            collapses.push(merged.clone());
            for k in 0..vars.len() {
                for l in (k + 1)..vars.len() {
                    if (k, l) != (i, j) {
                        collapses.push(merge_vars(&merged, vars[k], vars[l]));
                    }
                }
            }
        }
    }
    // Candidate source 3: the total collapse onto a single variable.
    if let Some(first) = vars.first() {
        let mut total = query.clone();
        for v in &vars[1..] {
            total = merge_vars(&total, *first, *v);
        }
        collapses.push(total);
    }

    for c in collapses {
        let c = core_of(&c.dedup_atoms());
        if is_acyclic_query(&c) {
            candidates.push(c);
        }
    }

    let candidates_considered = candidates.len();

    // Verify Σ-containment in q and deduplicate.
    let mut verified: Vec<ConjunctiveQuery> = Vec::new();
    for c in candidates {
        if contained_under_tgds(&c, query, tgds, budget).holds()
            && !verified.iter().any(|v| same_query(v, &c))
        {
            verified.push(c);
        }
    }

    // Keep the ⊆Σ-maximal ones.
    let mut maximal: Vec<ConjunctiveQuery> = Vec::new();
    for (i, c) in verified.iter().enumerate() {
        let dominated = verified.iter().enumerate().any(|(j, other)| {
            if i == j {
                return false;
            }
            let c_in_other = contained_under_tgds(c, other, tgds, budget);
            let other_in_c = contained_under_tgds(other, c, tgds, budget);
            c_in_other == ContainmentAnswer::Holds
                && (other_in_c != ContainmentAnswer::Holds || j < i)
        });
        if !dominated {
            maximal.push(c.clone());
        }
    }

    let exact = maximal
        .iter()
        .any(|c| contained_under_tgds(query, c, tgds, budget).holds());

    ApproximationReport {
        maximal,
        exact,
        candidates_considered,
    }
}

/// Identifies variable `b` with variable `a` throughout the query.
fn merge_vars(query: &ConjunctiveQuery, a: Symbol, b: Symbol) -> ConjunctiveQuery {
    let map = |t: Term| match t {
        Term::Variable(v) if v == b => Term::Variable(a),
        other => other,
    };
    let body: Vec<Atom> = query.body.iter().map(|at| at.map_args(map)).collect();
    let head: Vec<Symbol> = query
        .head
        .iter()
        .map(|v| if *v == b { a } else { *v })
        .collect();
    ConjunctiveQuery::new_unchecked(head, body)
}

/// Structural equality up to atom order (cheap dedup; not isomorphism).
fn same_query(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
    if a.head != b.head {
        return false;
    }
    let sa: BTreeSet<&Atom> = a.body.iter().collect();
    let sb: BTreeSet<&Atom> = b.body.iter().collect();
    sa == sb
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::atom;
    use sac_query::evaluate_boolean;
    use sac_storage::Instance;

    #[test]
    fn triangle_has_a_nontrivial_acyclic_approximation() {
        // The directed triangle E(x,y),E(y,z),E(z,x) is not semantically
        // acyclic (no constraints); its best acyclic approximation is the
        // self-loop E(w,w) (the total collapse).
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "z"),
            atom!("E", var "z", var "x"),
        ])
        .unwrap();
        let report = acyclic_approximations(&q, &[], ChaseBudget::small());
        assert!(!report.exact);
        assert!(!report.maximal.is_empty());
        let best = &report.maximal[0];
        assert!(is_acyclic_query(best));
        // Soundness: on a database where the approximation holds, the
        // triangle holds too (containment direction), e.g. a self-loop DB.
        let db = Instance::from_atoms(vec![atom!("E", cst "a", cst "a")]).unwrap();
        assert!(evaluate_boolean(best, &db));
        assert!(evaluate_boolean(&q, &db));
        // And the approximation misses triangle-free databases, as it must
        // (it is contained in q, not equivalent).
        let path_db = Instance::from_atoms(vec![
            atom!("E", cst "a", cst "b"),
            atom!("E", cst "b", cst "c"),
        ])
        .unwrap();
        assert!(!evaluate_boolean(best, &path_db));
    }

    #[test]
    fn semantically_acyclic_queries_get_exact_approximations() {
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "x", var "yp"),
        ])
        .unwrap();
        let report = acyclic_approximations(&q, &[], ChaseBudget::small());
        assert!(report.exact);
    }

    #[test]
    fn constraints_can_make_an_approximation_exact() {
        // Example 1 again: under the collector tgd the triangle's acyclic
        // approximation is exact.
        let tgds = vec![Tgd::new(
            vec![
                atom!("Interest", var "x", var "z"),
                atom!("Class", var "y", var "z"),
            ],
            vec![atom!("Owns", var "x", var "y")],
        )
        .unwrap()];
        let q = ConjunctiveQuery::boolean(vec![
            atom!("Interest", var "x", var "z"),
            atom!("Class", var "y", var "z"),
            atom!("Owns", var "x", var "y"),
        ])
        .unwrap();
        let with_tgd = acyclic_approximations(&q, &tgds, ChaseBudget::small());
        let without = acyclic_approximations(&q, &[], ChaseBudget::small());
        // Note: the collapse candidates of the triangle are contained in q
        // classically; under the tgd one of them becomes equivalent.
        assert!(
            with_tgd.exact || !without.exact,
            "adding the tgd must not make the approximation worse"
        );
    }

    #[test]
    fn maximal_approximations_are_pairwise_incomparable() {
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "z"),
            atom!("E", var "z", var "x"),
        ])
        .unwrap();
        let report = acyclic_approximations(&q, &[], ChaseBudget::small());
        for (i, a) in report.maximal.iter().enumerate() {
            for (j, b) in report.maximal.iter().enumerate() {
                if i != j {
                    let a_in_b = contained_under_tgds(a, b, &[], ChaseBudget::small());
                    let b_in_a = contained_under_tgds(b, a, &[], ChaseBudget::small());
                    assert!(
                        !a_in_b.holds() || b_in_a.holds(),
                        "approximation {i} is strictly dominated by {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn approximations_are_always_contained_in_the_query() {
        let q = ConjunctiveQuery::boolean(vec![
            atom!("R", var "x", var "y"),
            atom!("S", var "y", var "z"),
            atom!("T", var "z", var "x"),
        ])
        .unwrap();
        let report = acyclic_approximations(&q, &[], ChaseBudget::small());
        for approx in &report.maximal {
            assert!(contained_under_tgds(approx, &q, &[], ChaseBudget::small()).holds());
            assert!(is_acyclic_query(approx));
        }
    }
}
