//! The planner: compile a [`ConjunctiveQuery`] into an executable [`Plan`].
//!
//! The strategy lattice, from strongest guarantee to weakest:
//!
//! 1. **[`Strategy::YannakakisDirect`]** — the query itself is acyclic
//!    (admits a join tree): evaluate it with the hash-join Yannakakis
//!    executor in time `O(|q|·|D|)` plus output cost (the paper's Section 2
//!    baseline for acyclic CQs).
//! 2. **[`Strategy::YannakakisWitness`]** — the query is cyclic but
//!    *semantically* acyclic: without constraints iff its core is acyclic
//!    (exact), and under tgds via the witness search of
//!    [`semantic_acyclicity_under_tgds`] (Propositions 8/15).  The verified
//!    acyclic witness `q'` with `q ≡Σ q'` is planned in place of `q` — this
//!    is Proposition 24's fixed-parameter tractable evaluation, with the
//!    (query-only) witness search amortized by the engine's plan cache.
//! 3. **[`Strategy::IndexedSearch`]** — no acyclic reformulation: fall back
//!    to backtracking homomorphism search, with the atom order fixed at plan
//!    time from per-column distinct counts (most selective first) and each
//!    step's candidate lookups served by cached multi-column hash indexes.
//!
//! Every plan carries an [`Explain`] describing which rung was taken and why.

use crate::database::EngineConfig;
use sac_acyclic::{join_tree_of_atoms, JoinTree};
use sac_common::{Atom, Symbol, Term};
use sac_core::{
    is_semantically_acyclic_no_constraints, semantic_acyclicity_under_tgds, SemAcResult,
};
use sac_deps::Tgd;
use sac_query::ConjunctiveQuery;
use sac_storage::Instance;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Which execution strategy a plan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The query is acyclic: hash-join Yannakakis on the query itself.
    YannakakisDirect,
    /// The query is semantically acyclic: hash-join Yannakakis on a verified
    /// acyclic witness (the core, or a Σ-witness under the engine's tgds).
    YannakakisWitness,
    /// Fallback: stats-ordered, index-accelerated homomorphism search.
    IndexedSearch,
}

impl Strategy {
    /// The strategy's stable display name, as used in traces, telemetry
    /// events and bench JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Strategy::YannakakisDirect => "yannakakis-direct",
            Strategy::YannakakisWitness => "yannakakis-witness",
            Strategy::IndexedSearch => "indexed-search",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The shape of one atom, precomputed for the executor: distinct variables,
/// where they first occur, which positions must agree (repeated variables)
/// and which are pinned to constants.
#[derive(Debug, Clone)]
pub(crate) struct NodeShape {
    /// Distinct variables in first-occurrence order.
    pub vars: Vec<Symbol>,
    /// Position of the first occurrence of each variable (aligned with `vars`).
    pub var_first: Vec<usize>,
    /// `(later, first)` position pairs that must hold equal terms.
    pub eq_checks: Vec<(usize, usize)>,
    /// Positions holding a rigid (non-variable) term, ascending.
    pub const_positions: Vec<usize>,
    /// The rigid terms at `const_positions`, aligned.
    pub const_key: Vec<Term>,
}

impl NodeShape {
    pub(crate) fn of_atom(atom: &Atom) -> NodeShape {
        let mut vars = Vec::new();
        let mut var_first = Vec::new();
        let mut eq_checks = Vec::new();
        let mut const_positions = Vec::new();
        let mut const_key = Vec::new();
        for (pos, term) in atom.args.iter().enumerate() {
            match term {
                Term::Variable(v) => match vars.iter().position(|u| u == v) {
                    Some(i) => eq_checks.push((pos, var_first[i])),
                    None => {
                        vars.push(*v);
                        var_first.push(pos);
                    }
                },
                rigid => {
                    const_positions.push(pos);
                    const_key.push(*rigid);
                }
            }
        }
        NodeShape {
            vars,
            var_first,
            eq_checks,
            const_positions,
            const_key,
        }
    }
}

/// A compiled Yannakakis plan over an acyclic query (the input or a witness).
#[derive(Debug, Clone)]
pub(crate) struct YannakakisPlan {
    /// The acyclic query actually executed.
    pub query: ConjunctiveQuery,
    /// Its join tree (node `i` is `query.body[i]`).
    pub tree: JoinTree,
    /// Root-first preorder (parents before children).
    pub order: Vec<usize>,
    /// Children of each node.
    pub children: Vec<Vec<usize>>,
    /// Per-node atom shapes.
    pub shapes: Vec<NodeShape>,
    /// Variables each node's joined subtree table is projected onto: head
    /// variables of the subtree plus the join key shared with the parent.
    pub carry: Vec<Vec<Symbol>>,
}

/// A compiled fallback plan: fixed atom order + per-step index key columns.
#[derive(Debug, Clone)]
pub(crate) struct IndexedPlan {
    /// The query executed (always the input query).
    pub query: ConjunctiveQuery,
    /// Atom indices in evaluation order.
    pub order: Vec<usize>,
    /// For each step, the argument positions that are statically known to be
    /// bound when the step runs (constants, plus variables bound by earlier
    /// atoms), ascending — the key columns of the index used for the lookup.
    pub bound_positions: Vec<Vec<usize>>,
}

#[derive(Debug, Clone)]
pub(crate) enum ExecPlan {
    Yannakakis(YannakakisPlan),
    Indexed(IndexedPlan),
}

/// An executable physical plan, produced by the engine's planner and cached
/// by query fingerprint.
#[derive(Debug, Clone)]
pub struct Plan {
    pub(crate) exec: ExecPlan,
    pub(crate) explain: Explain,
    /// Result column names, resolved once from the *input* query's head at
    /// plan time so runs on a cached plan allocate nothing for them.
    pub(crate) columns: Arc<[String]>,
}

impl Plan {
    /// The strategy this plan executes.
    pub fn strategy(&self) -> Strategy {
        self.explain.strategy
    }

    /// The inspectable description of the planner's choice.
    pub fn explain(&self) -> &Explain {
        &self.explain
    }

    /// The result columns every execution produces (the input query's head
    /// variables, repeats preserved).
    pub fn columns(&self) -> &Arc<[String]> {
        &self.columns
    }

    /// The query the executor actually runs: the input query, or its
    /// acyclic witness on the [`Strategy::YannakakisWitness`] rung.  Growth
    /// on predicates outside this body can never change the plan's answers,
    /// which is what lets view maintenance skip irrelevant appends.
    pub(crate) fn exec_query(&self) -> &ConjunctiveQuery {
        match &self.exec {
            ExecPlan::Yannakakis(yp) => &yp.query,
            ExecPlan::Indexed(ip) => &ip.query,
        }
    }
}

/// The result column names of `query`: its head variables, resolved to
/// strings, repeats preserved.
pub(crate) fn head_columns(query: &ConjunctiveQuery) -> Arc<[String]> {
    query
        .head
        .iter()
        .map(|v| v.as_str())
        .collect::<Vec<String>>()
        .into()
}

/// Why the planner chose what it chose — the inspectable side of a [`Plan`].
#[derive(Debug, Clone)]
pub struct Explain {
    /// The chosen strategy.
    pub strategy: Strategy,
    /// Whether the input query was already acyclic.
    pub input_acyclic: bool,
    /// The acyclic witness executed instead of the input, when
    /// `strategy == YannakakisWitness`.
    pub witness: Option<ConjunctiveQuery>,
    /// Node/atom visit order: join-tree preorder for the Yannakakis
    /// strategies, the stats-driven atom order for the fallback.
    pub atom_order: Vec<usize>,
    /// A rough cost estimate from the database statistics at plan time
    /// (tuples touched; not a promise).
    pub estimated_cost: f64,
    /// The database epoch the plan (and its statistics) were computed at.
    pub planned_epoch: u64,
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "strategy={} input_acyclic={} order={:?} est_cost={:.0}",
            self.strategy, self.input_acyclic, self.atom_order, self.estimated_cost
        )?;
        if let Some(w) = &self.witness {
            write!(f, " witness=[{w}]")?;
        }
        Ok(())
    }
}

/// Compiles `query` into a plan against `db` (whose statistics drive the
/// fallback atom order) under the engine's constraint set.
pub(crate) fn plan_query(
    query: &ConjunctiveQuery,
    tgds: &[Tgd],
    db: &Instance,
    config: &EngineConfig,
) -> Plan {
    // Result column names always follow the *input* head (a verified witness
    // has the same head tuple, or it would not be answer-equivalent).
    let columns = head_columns(query);
    let input_tree = join_tree_of_atoms(&query.body);
    let input_acyclic = input_tree.is_some();
    if config.force_indexed {
        // Differential-testing knob: skip both Yannakakis rungs and compile
        // the fallback unconditionally (it is correct on every query).
        return indexed_plan(query, db, input_acyclic, columns);
    }
    if let Some(tree) = input_tree {
        return yannakakis_plan(
            query.clone(),
            tree,
            Strategy::YannakakisDirect,
            None,
            db,
            columns,
        );
    }

    if config.witness_search {
        let witness = if tgds.is_empty() {
            // Without constraints, semantic acyclicity is exactly "the core
            // is acyclic" — and core equivalence holds over every database.
            is_semantically_acyclic_no_constraints(query)
        } else if query.size() <= config.max_witness_atoms {
            match semantic_acyclicity_under_tgds(query, tgds, config.semac) {
                SemAcResult::Witness(w) => Some(w),
                SemAcResult::NoWitness { .. } => None,
            }
        } else {
            None
        };
        if let Some(w) = witness {
            if let Some(tree) = join_tree_of_atoms(&w.body) {
                return yannakakis_plan(
                    w.clone(),
                    tree,
                    Strategy::YannakakisWitness,
                    Some(w),
                    db,
                    columns,
                );
            }
        }
    }

    indexed_plan(query, db, input_acyclic, columns)
}

fn yannakakis_plan(
    exec_query: ConjunctiveQuery,
    tree: JoinTree,
    strategy: Strategy,
    witness: Option<ConjunctiveQuery>,
    db: &Instance,
    columns: Arc<[String]>,
) -> Plan {
    let n = tree.len();
    let children: Vec<Vec<usize>> = (0..n).map(|i| tree.children(i)).collect();
    let order = preorder(&tree, &children);
    let shapes: Vec<NodeShape> = exec_query.body.iter().map(NodeShape::of_atom).collect();

    // subtree_head[n] = head variables occurring anywhere in n's subtree.
    let head_set: BTreeSet<Symbol> = exec_query.head.iter().copied().collect();
    let mut subtree_head: Vec<BTreeSet<Symbol>> = shapes
        .iter()
        .map(|s| {
            s.vars
                .iter()
                .copied()
                .filter(|v| head_set.contains(v))
                .collect()
        })
        .collect();
    for &node in order.iter().rev() {
        if let Some(parent) = tree.parent[node] {
            let up = subtree_head[node].clone();
            subtree_head[parent].extend(up);
        }
    }
    // carry[n]: what n's joined subtree table keeps — its head variables plus
    // the join key with the parent (variables shared with the parent atom).
    let carry: Vec<Vec<Symbol>> = (0..n)
        .map(|node| {
            let mut keep = subtree_head[node].clone();
            if let Some(parent) = tree.parent[node] {
                let parent_vars: BTreeSet<Symbol> = shapes[parent].vars.iter().copied().collect();
                keep.extend(
                    shapes[node]
                        .vars
                        .iter()
                        .copied()
                        .filter(|v| parent_vars.contains(v)),
                );
            }
            keep.into_iter().collect()
        })
        .collect();

    // Yannakakis touches every relation a constant number of times.
    let estimated_cost: f64 = exec_query
        .body
        .iter()
        .map(|a| db.relation(a.predicate).map(|r| r.len()).unwrap_or(0) as f64)
        .sum();

    let explain = Explain {
        strategy,
        input_acyclic: strategy == Strategy::YannakakisDirect,
        witness,
        atom_order: order.clone(),
        estimated_cost,
        planned_epoch: db.epoch(),
    };
    Plan {
        exec: ExecPlan::Yannakakis(YannakakisPlan {
            query: exec_query,
            tree,
            order,
            children,
            shapes,
            carry,
        }),
        explain,
        columns,
    }
}

/// Root-first preorder: every parent before its children, roots in index
/// order, children left to right (deterministic).
fn preorder(tree: &JoinTree, children: &[Vec<usize>]) -> Vec<usize> {
    let mut order = Vec::with_capacity(tree.len());
    let mut stack: Vec<usize> = tree.roots();
    stack.reverse();
    while let Some(node) = stack.pop() {
        order.push(node);
        for &c in children[node].iter().rev() {
            stack.push(c);
        }
    }
    order
}

/// Greedy stats-driven atom ordering for the fallback strategy: repeatedly
/// pick the unplanned atom with the smallest estimated candidate count given
/// the variables bound so far (relation cardinality divided by the distinct
/// count of every bound column), tie-breaking towards more bound positions.
fn indexed_plan(
    query: &ConjunctiveQuery,
    db: &Instance,
    input_acyclic: bool,
    columns: Arc<[String]>,
) -> Plan {
    let n = query.body.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut bound_vars: BTreeSet<Symbol> = BTreeSet::new();
    let mut order = Vec::with_capacity(n);
    let mut bound_positions = Vec::with_capacity(n);
    let mut estimated_cost = 0.0f64;
    let mut frontier = 1.0f64;

    while !remaining.is_empty() {
        let mut best: Option<(usize, Vec<usize>, f64, usize)> = None;
        for (slot, &atom_idx) in remaining.iter().enumerate() {
            let atom = &query.body[atom_idx];
            let bp: Vec<usize> = atom
                .args
                .iter()
                .enumerate()
                .filter(|(_, t)| match t {
                    Term::Variable(v) => bound_vars.contains(v),
                    _ => true,
                })
                .map(|(pos, _)| pos)
                .collect();
            let est = match db.relation(atom.predicate) {
                Some(rel) if rel.arity() == atom.arity() => {
                    let mut e = rel.len() as f64;
                    for &pos in &bp {
                        let d = rel.distinct_at(pos);
                        if d > 0 {
                            e /= d as f64;
                        }
                    }
                    e
                }
                // Missing relation (or arity clash): zero candidates — the
                // best possible atom to run first.
                _ => 0.0,
            };
            let better = match &best {
                None => true,
                Some((_, best_bp, best_est, _)) => {
                    est < *best_est || (est == *best_est && bp.len() > best_bp.len())
                }
            };
            if better {
                best = Some((slot, bp, est, atom_idx));
            }
        }
        let (slot, bp, est, atom_idx) = best.expect("remaining is non-empty");
        remaining.swap_remove(slot);
        order.push(atom_idx);
        bound_positions.push(bp);
        frontier *= est;
        estimated_cost += frontier;
        bound_vars.extend(query.body[atom_idx].variables_iter());
    }

    let explain = Explain {
        strategy: Strategy::IndexedSearch,
        input_acyclic,
        witness: None,
        atom_order: order.clone(),
        estimated_cost,
        planned_epoch: db.epoch(),
    };
    Plan {
        exec: ExecPlan::Indexed(IndexedPlan {
            query: query.clone(),
            order,
            bound_positions,
        }),
        explain,
        columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::EngineConfig;
    use sac_common::{atom, intern};

    fn config() -> EngineConfig {
        EngineConfig::default()
    }

    fn graph_db(edges: &[(&str, &str)]) -> Instance {
        Instance::from_atoms(
            edges
                .iter()
                .map(|(s, t)| Atom::from_parts("E", vec![Term::constant(s), Term::constant(t)])),
        )
        .unwrap()
    }

    #[test]
    fn acyclic_queries_plan_as_direct_yannakakis() {
        let q = sac_gen::path_query(3);
        let db = graph_db(&[("a", "b")]);
        let plan = plan_query(&q, &[], &db, &config());
        assert_eq!(plan.strategy(), Strategy::YannakakisDirect);
        assert!(plan.explain().input_acyclic);
        assert!(plan.explain().witness.is_none());
    }

    #[test]
    fn cyclic_query_with_acyclic_core_plans_as_witness() {
        // R(x,y), R(x,y'), S(y,z), S(y',z'): hom-equivalent to its acyclic
        // core — actually take the classic redundant-triangle-free example:
        // E(x,y), E(x,y') has core E(x,y).
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x1", var "x2"),
            atom!("E", var "x2", var "x3"),
            atom!("E", var "x3", var "x1"),
        ])
        .unwrap();
        let db = graph_db(&[("a", "a")]);
        let plan = plan_query(&q, &[], &db, &config());
        // The triangle is its own core and stays cyclic: fallback.
        assert_eq!(plan.strategy(), Strategy::IndexedSearch);
        assert!(!plan.explain().input_acyclic);
    }

    #[test]
    fn collector_tgd_turns_example1_into_a_witness_plan() {
        let q = sac_gen::example1_triangle();
        let tgds = vec![sac_gen::collector_tgd()];
        let db = sac_gen::music_database(5, 10, 2);
        let plan = plan_query(&q, &tgds, &db, &config());
        assert_eq!(plan.strategy(), Strategy::YannakakisWitness);
        let w = plan.explain().witness.as_ref().expect("witness recorded");
        assert!(w.size() <= 2);
        assert!(format!("{}", plan.explain()).contains("yannakakis-witness"));
    }

    #[test]
    fn witness_search_respects_the_size_cap() {
        let q = sac_gen::example1_triangle();
        let tgds = vec![sac_gen::collector_tgd()];
        let db = sac_gen::music_database(5, 10, 2);
        let mut cfg = config();
        cfg.max_witness_atoms = 2; // triangle has 3 atoms: skip the search
        let plan = plan_query(&q, &tgds, &db, &cfg);
        assert_eq!(plan.strategy(), Strategy::IndexedSearch);
    }

    #[test]
    fn stats_ordering_starts_with_the_most_selective_atom() {
        // Small relation S (1 tuple) vs large relation E (many tuples): the
        // fallback order should begin with the S-atom.
        let mut db = Instance::new();
        for i in 0..50 {
            db.insert(Atom::from_parts(
                "E",
                vec![
                    Term::constant(&format!("a{i}")),
                    Term::constant(&format!("a{}", (i + 1) % 50)),
                ],
            ))
            .unwrap();
        }
        db.insert(atom!("S", cst "a0")).unwrap();
        // Cyclic query so planning falls through to the indexed strategy.
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "z"),
            atom!("E", var "z", var "x"),
            atom!("S", var "x"),
        ])
        .unwrap();
        let plan = plan_query(&q, &[], &db, &config());
        assert_eq!(plan.strategy(), Strategy::IndexedSearch);
        assert_eq!(plan.explain().atom_order[0], 3, "S-atom drives the search");
    }

    #[test]
    fn bound_positions_grow_as_variables_are_bound() {
        let db = graph_db(&[("a", "b"), ("b", "c")]);
        let q = ConjunctiveQuery::boolean(vec![
            atom!("E", var "x", var "y"),
            atom!("E", var "y", var "z"),
            atom!("E", var "z", var "x"),
        ])
        .unwrap();
        let plan = plan_query(&q, &[], &db, &config());
        let ExecPlan::Indexed(ip) = &plan.exec else {
            panic!("triangle must fall back to indexed search");
        };
        assert!(ip.bound_positions[0].is_empty(), "first atom scans");
        // Every later atom has at least one bound (index-keyed) position.
        assert!(ip.bound_positions[1..].iter().all(|bp| !bp.is_empty()));
    }

    #[test]
    fn force_indexed_compiles_the_fallback_even_for_acyclic_queries() {
        let db = graph_db(&[("a", "b"), ("b", "c")]);
        let q = sac_gen::path_query(3);
        let mut cfg = config();
        cfg.force_indexed = true;
        let plan = plan_query(&q, &[], &db, &cfg);
        assert_eq!(plan.strategy(), Strategy::IndexedSearch);
        assert!(
            plan.explain().input_acyclic,
            "the explain still reports the true shape"
        );
    }

    #[test]
    fn node_shape_captures_constants_and_repetitions() {
        let shape = NodeShape::of_atom(&atom!("R", var "x", cst "a", var "x", var "y"));
        assert_eq!(shape.vars, vec![intern("x"), intern("y")]);
        assert_eq!(shape.var_first, vec![0, 3]);
        assert_eq!(shape.eq_checks, vec![(2, 0)]);
        assert_eq!(shape.const_positions, vec![1]);
        assert_eq!(shape.const_key, vec![Term::constant("a")]);
    }
}
