//! The [`Engine`] session: a database plus plan and index caches, built for
//! many-query workloads.

use crate::exec;
use crate::index::IndexCache;
use crate::plan::{plan_query, Explain, Plan, Strategy};
use sac_common::{Atom, Result, Symbol, Term};
use sac_core::SemAcConfig;
use sac_deps::Tgd;
use sac_query::ConjunctiveQuery;
use sac_storage::Instance;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Planner knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Configuration for the semantic-acyclicity witness search.
    pub semac: SemAcConfig,
    /// Whether to look for acyclic reformulations of cyclic queries at all.
    pub witness_search: bool,
    /// Skip the (query-exponential) witness search under tgds for queries
    /// with more body atoms than this.  The constraint-free core check is
    /// cheap and always runs.
    pub max_witness_atoms: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            semac: SemAcConfig::default(),
            witness_search: true,
            max_witness_atoms: 12,
        }
    }
}

/// Counters describing an engine session's workload so far.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Queries executed (batch and single runs alike).
    pub queries_run: usize,
    /// Plans compiled from scratch (plan-cache misses, whether the request
    /// came from [`Engine::run`], [`Engine::plan`] or [`Engine::explain`]).
    pub plans_built: usize,
    /// Plan requests served from the cache.
    pub plan_cache_hits: usize,
    /// Runs executed with [`Strategy::YannakakisDirect`].
    pub runs_yannakakis_direct: usize,
    /// Runs executed with [`Strategy::YannakakisWitness`].
    pub runs_yannakakis_witness: usize,
    /// Runs executed with [`Strategy::IndexedSearch`].
    pub runs_indexed_search: usize,
    /// Join-key indexes built over the session's lifetime.
    pub indexes_built: usize,
}

impl EngineMetrics {
    /// Fraction of plan requests served from the cache: hits over hits plus
    /// compilations (0 before the first request).  `plan` and `explain`
    /// requests count like `run` ones — each either hits the cache or builds.
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let requests = self.plan_cache_hits + self.plans_built;
        if requests == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / requests as f64
        }
    }
}

impl fmt::Display for EngineMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs ({} planned, {} cache hits, {:.0}% hit rate); strategies: {} direct / {} witness / {} fallback; {} indexes built",
            self.queries_run,
            self.plans_built,
            self.plan_cache_hits,
            100.0 * self.plan_cache_hit_rate(),
            self.runs_yannakakis_direct,
            self.runs_yannakakis_witness,
            self.runs_indexed_search,
            self.indexes_built,
        )
    }
}

/// Plans are keyed by the query's semantic identity (head + body), ignoring
/// its display name.
type PlanKey = (Vec<Symbol>, Vec<Atom>);

/// A query execution session over one database.
///
/// The engine owns its [`Instance`] so that every mutation flows through it:
/// inserts invalidate exactly the touched predicate's cached indexes (using
/// [`Instance::insert`]'s was-it-new result and the instance epoch) instead
/// of rebuilding everything.  Plans are cached by query fingerprint, so
/// repeated or batched queries amortize both planning and the
/// semantic-acyclicity witness search.
///
/// **Constraint contract:** when the engine is given tgds
/// ([`Engine::with_tgds`]), cyclic queries may be answered through a
/// Σ-equivalent acyclic witness.  That reformulation is only valid on
/// databases satisfying the constraints — the same promise as the paper's
/// `SemAcEval` problem; the engine does not verify it.  Without tgds every
/// strategy is unconditionally equivalent to naive evaluation.
#[derive(Debug)]
pub struct Engine {
    db: Instance,
    tgds: Vec<Tgd>,
    config: EngineConfig,
    plans: HashMap<PlanKey, Arc<Plan>>,
    indexes: IndexCache,
    metrics: EngineMetrics,
}

impl Engine {
    /// Creates an engine session over `db` with no constraints.
    pub fn new(db: Instance) -> Engine {
        let indexes = IndexCache::new(&db);
        Engine {
            db,
            tgds: Vec::new(),
            config: EngineConfig::default(),
            plans: HashMap::new(),
            indexes,
            metrics: EngineMetrics::default(),
        }
    }

    /// Sets the constraint set the planner may reformulate under
    /// (builder-style).  See the type-level docs for the satisfaction
    /// contract.
    pub fn with_tgds(mut self, tgds: Vec<Tgd>) -> Engine {
        self.set_tgds(tgds);
        self
    }

    /// Overrides the planner configuration (builder-style).
    pub fn with_config(mut self, config: EngineConfig) -> Engine {
        self.config = config;
        self.plans.clear();
        self
    }

    /// Replaces the constraint set, invalidating every cached plan (their
    /// witnesses were found under the old constraints).
    pub fn set_tgds(&mut self, tgds: Vec<Tgd>) {
        self.tgds = tgds;
        self.plans.clear();
    }

    /// The underlying database.
    pub fn database(&self) -> &Instance {
        &self.db
    }

    /// Consumes the engine, returning the database.
    pub fn into_database(self) -> Instance {
        self.db
    }

    /// The constraints the planner reformulates under.
    pub fn tgds(&self) -> &[Tgd] {
        &self.tgds
    }

    /// Session counters (plan-cache hit rate, per-strategy runs, …).
    pub fn metrics(&self) -> EngineMetrics {
        let mut m = self.metrics.clone();
        m.indexes_built = self.indexes.built();
        m
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }

    /// Inserts an atom into the database.  Returns whether it was new; only
    /// a genuinely new atom invalidates (precisely, per predicate) the index
    /// cache.  Cached plans survive — a plan's strategy choice never depends
    /// on the data, only its fallback atom order does, and a stale order is
    /// a performance matter, not a correctness one.
    pub fn insert(&mut self, atom: Atom) -> Result<bool> {
        let predicate = atom.predicate;
        let added = self.db.insert(atom)?;
        if added {
            self.indexes.note_insert(&self.db, predicate);
        }
        Ok(added)
    }

    /// Bulk-inserts every atom of `other`; returns how many were new.
    pub fn extend_from(&mut self, other: &Instance) -> Result<usize> {
        let mut added = 0;
        for atom in other.atoms() {
            if self.insert(atom)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Plans `query` (or fetches the cached plan) without executing it.
    pub fn plan(&mut self, query: &ConjunctiveQuery) -> Arc<Plan> {
        let key: PlanKey = (query.head.clone(), query.body.clone());
        if let Some(plan) = self.plans.get(&key) {
            self.metrics.plan_cache_hits += 1;
            return Arc::clone(plan);
        }
        let plan = Arc::new(plan_query(query, &self.tgds, &self.db, &self.config));
        self.metrics.plans_built += 1;
        self.plans.insert(key, Arc::clone(&plan));
        plan
    }

    /// The planner's decision for `query`, for inspection.
    pub fn explain(&mut self, query: &ConjunctiveQuery) -> Explain {
        self.plan(query).explain().clone()
    }

    /// Evaluates `query`, returning the answer set (for a Boolean query:
    /// `{()}` or `{}`).
    pub fn run(&mut self, query: &ConjunctiveQuery) -> BTreeSet<Vec<Term>> {
        let plan = self.plan(query);
        self.metrics.queries_run += 1;
        match plan.strategy() {
            Strategy::YannakakisDirect => self.metrics.runs_yannakakis_direct += 1,
            Strategy::YannakakisWitness => self.metrics.runs_yannakakis_witness += 1,
            Strategy::IndexedSearch => self.metrics.runs_indexed_search += 1,
        }
        exec::execute(&plan, &self.db, &mut self.indexes)
    }

    /// Evaluates a Boolean query (or the Boolean shadow of a non-Boolean
    /// one): whether the answer set is non-empty.
    pub fn run_boolean(&mut self, query: &ConjunctiveQuery) -> bool {
        !self.run(query).is_empty()
    }

    /// Evaluates a batch of queries, amortizing planning and index building
    /// across the whole workload.
    pub fn run_batch(&mut self, queries: &[ConjunctiveQuery]) -> Vec<BTreeSet<Vec<Term>>> {
        queries.iter().map(|q| self.run(q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::atom;
    use sac_query::evaluate;

    fn graph_engine() -> Engine {
        Engine::new(sac_gen::random_graph_database(10, 30, 3))
    }

    #[test]
    fn run_agrees_with_naive_evaluation_across_strategies() {
        let mut engine = graph_engine();
        let db = engine.database().clone();
        for q in [
            sac_gen::path_query(2),   // acyclic → direct
            sac_gen::cycle_query(3),  // cyclic core → fallback
            sac_gen::clique_query(3), // cyclic core → fallback
        ] {
            assert_eq!(engine.run(&q), evaluate(&q, &db), "disagreement on {q}");
        }
    }

    #[test]
    fn plan_cache_hits_on_repeated_queries() {
        let mut engine = graph_engine();
        let q = sac_gen::path_query(3);
        engine.run(&q);
        engine.run(&q);
        engine.run(&q);
        let m = engine.metrics();
        assert_eq!(m.queries_run, 3);
        assert_eq!(m.plans_built, 1);
        assert_eq!(m.plan_cache_hits, 2);
        assert_eq!(m.runs_yannakakis_direct, 3);
        assert_eq!(engine.cached_plans(), 1);
    }

    #[test]
    fn query_names_do_not_fragment_the_plan_cache() {
        let mut engine = graph_engine();
        let q = sac_gen::path_query(3);
        engine.run(&q.clone().named("first"));
        engine.run(&q.named("second"));
        assert_eq!(engine.metrics().plans_built, 1);
    }

    #[test]
    fn inserts_invalidate_results_precisely() {
        let mut engine =
            Engine::new(Instance::from_atoms(vec![atom!("E", cst "a", cst "b")]).unwrap());
        let q = sac_gen::path_query(2); // E(x0,x1), E(x1,x2)
        assert!(!engine.run_boolean(&q));
        // Closing the path makes the query true; the engine must see the new
        // atom even though a plan and indexes were already cached.
        assert!(engine.insert(atom!("E", cst "b", cst "c")).unwrap());
        assert!(engine.run_boolean(&q));
        // Duplicate inserts are reported as such and invalidate nothing.
        let before = engine.metrics().indexes_built;
        assert!(!engine.insert(atom!("E", cst "b", cst "c")).unwrap());
        assert!(engine.run_boolean(&q));
        assert_eq!(engine.metrics().indexes_built, before);
    }

    #[test]
    fn witness_strategy_is_used_and_correct_on_constraint_closed_data() {
        let q = sac_gen::example1_triangle();
        let tgds = vec![sac_gen::collector_tgd()];
        // music_database is closed under the collector tgd by construction.
        let db = sac_gen::music_database(30, 60, 5);
        let mut engine = Engine::new(db.clone()).with_tgds(tgds);
        assert_eq!(engine.explain(&q).strategy, Strategy::YannakakisWitness);
        assert_eq!(engine.run(&q), evaluate(&q, &db));
        assert_eq!(engine.metrics().runs_yannakakis_witness, 1);
    }

    #[test]
    fn changing_constraints_clears_cached_plans() {
        let q = sac_gen::example1_triangle();
        let db = sac_gen::music_database(5, 10, 2);
        let mut engine = Engine::new(db);
        assert_eq!(engine.explain(&q).strategy, Strategy::IndexedSearch);
        engine.set_tgds(vec![sac_gen::collector_tgd()]);
        assert_eq!(engine.explain(&q).strategy, Strategy::YannakakisWitness);
    }

    #[test]
    fn run_batch_amortizes_planning() {
        let mut engine = graph_engine();
        let workload: Vec<_> = (0..4)
            .flat_map(|_| [sac_gen::path_query(3), sac_gen::star_query(3)])
            .collect();
        let results = engine.run_batch(&workload);
        assert_eq!(results.len(), 8);
        let m = engine.metrics();
        assert_eq!(m.queries_run, 8);
        assert_eq!(m.plans_built, 2);
        assert_eq!(m.plan_cache_hits, 6);
        assert!(m.plan_cache_hit_rate() > 0.7);
        // Identical queries return identical answers.
        assert_eq!(results[0], results[2]);
        assert_eq!(results[1], results[3]);
    }

    #[test]
    fn metrics_display_is_informative() {
        let mut engine = graph_engine();
        engine.run(&sac_gen::path_query(2));
        let text = format!("{}", engine.metrics());
        assert!(text.contains("1 runs"));
        assert!(text.contains("direct"));
    }
}
