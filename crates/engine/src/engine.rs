//! The legacy [`Engine`] session: a thin single-owner shim over
//! [`Database`].
//!
//! `Engine` was the crate's original `&mut self` API.  It survives as a
//! deprecated wrapper so existing call sites keep compiling, but every call
//! now routes through the concurrent [`Database`] core — the shim adds
//! nothing but the old signatures (raw `BTreeSet<Vec<Term>>` answers,
//! exclusive borrows), with two narrowings forced by the lock-protected
//! core: [`Engine::database`] now takes `&mut self` (it bypasses the lock
//! through exclusive access) and [`Engine::tgds`] returns an owned
//! `Vec<Tgd>` instead of a slice.  New code should use [`Database`]
//! directly:
//!
//! | old | new |
//! |---|---|
//! | `Engine::new(instance)` | [`Database::from_instance`] |
//! | `engine.run(&q)` | [`Database::run`] (typed [`crate::ResultSet`]) |
//! | `engine.run(&q)` raw tuples | `db.run(&q).into_tuples()` |
//! | `engine.run_batch(&qs)` | [`Database::run_batch`] |
//! | repeated runs of one query | [`Database::prepare`] |

use crate::database::{Database, EngineConfig, EngineMetrics};
use crate::plan::{Explain, Plan};
use sac_common::{Atom, Result, Term};
use sac_deps::Tgd;
use sac_query::ConjunctiveQuery;
use sac_storage::Instance;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Deprecated single-owner façade over [`Database`].
///
/// See the [module docs](self) for the migration table.  Semantics are
/// identical to the pre-`Database` engine: same strategy lattice, same plan
/// cache, same epoch-based index invalidation — the state simply lives in
/// the shared core now.
#[deprecated(
    since = "0.1.0",
    note = "use `Database`: it serves `&self` (thread-safe), returns typed `ResultSet`s and unifies errors as `SacError`"
)]
#[derive(Debug, Default)]
pub struct Engine {
    core: Database,
}

#[allow(deprecated)]
impl Engine {
    /// Creates an engine session over `db` with no constraints.
    pub fn new(db: Instance) -> Engine {
        Engine {
            core: Database::from_instance(db),
        }
    }

    /// Sets the constraint set the planner may reformulate under
    /// (builder-style).
    pub fn with_tgds(self, tgds: Vec<Tgd>) -> Engine {
        Engine {
            core: self.core.with_tgds(tgds),
        }
    }

    /// Overrides the planner configuration (builder-style).
    pub fn with_config(self, config: EngineConfig) -> Engine {
        Engine {
            core: self.core.with_config(config),
        }
    }

    /// Replaces the constraint set, invalidating every cached plan.
    pub fn set_tgds(&mut self, tgds: Vec<Tgd>) {
        self.core.set_tgds(tgds);
    }

    /// The underlying database.
    pub fn database(&mut self) -> &Instance {
        self.core.instance_mut()
    }

    /// Consumes the engine, returning the database.
    pub fn into_database(self) -> Instance {
        self.core.into_instance()
    }

    /// The constraints the planner reformulates under.
    pub fn tgds(&self) -> Vec<Tgd> {
        self.core.tgds()
    }

    /// Session counters (plan-cache hit rate, per-strategy runs, …).
    pub fn metrics(&self) -> EngineMetrics {
        self.core.metrics()
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.core.cached_plans()
    }

    /// Inserts an atom.  Returns whether it was new.
    pub fn insert(&mut self, atom: Atom) -> Result<bool> {
        self.core.insert_common(atom)
    }

    /// Bulk-inserts every atom of `other`; returns how many were new.
    pub fn extend_from(&mut self, other: &Instance) -> Result<usize> {
        self.core.extend_from_common(other)
    }

    /// Plans `query` (or fetches the cached plan) without executing it.
    pub fn plan(&mut self, query: &ConjunctiveQuery) -> Arc<Plan> {
        self.core.plan_arc(query)
    }

    /// The planner's decision for `query`, for inspection.
    pub fn explain(&mut self, query: &ConjunctiveQuery) -> Explain {
        self.core.explain(query)
    }

    /// Evaluates `query`, returning the answer set (for a Boolean query:
    /// `{()}` or `{}`).
    pub fn run(&mut self, query: &ConjunctiveQuery) -> BTreeSet<Vec<Term>> {
        self.core.run(query).into_tuples()
    }

    /// Evaluates a Boolean query (or the Boolean shadow of a non-Boolean
    /// one): whether the answer set is non-empty.
    pub fn run_boolean(&mut self, query: &ConjunctiveQuery) -> bool {
        self.core.run_boolean(query)
    }

    /// Evaluates a batch of queries, amortizing planning and index building
    /// across the whole workload.
    pub fn run_batch(&mut self, queries: &[ConjunctiveQuery]) -> Vec<BTreeSet<Vec<Term>>> {
        queries.iter().map(|q| self.run(q)).collect()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use sac_common::atom;
    use sac_query::evaluate;

    // The deprecated shim must behave exactly like the core it wraps; the
    // thorough behavioural suite lives in `crate::database::tests`.

    #[test]
    fn shim_round_trips_runs_metrics_and_mutations() {
        let mut engine = Engine::new(sac_gen::random_graph_database(10, 30, 3));
        let db = engine.database().clone();
        let q = sac_gen::path_query(3);
        assert_eq!(engine.run(&q), evaluate(&q, &db));
        engine.run(&q);
        let m = engine.metrics();
        assert_eq!(m.queries_run, 2);
        assert_eq!(m.plans_built, 1);
        assert_eq!(m.plan_cache_hits, 1);
        assert_eq!(engine.cached_plans(), 1);
    }

    #[test]
    fn shim_inserts_invalidate_results_precisely() {
        let mut engine =
            Engine::new(Instance::from_atoms(vec![atom!("E", cst "a", cst "b")]).unwrap());
        let q = sac_gen::path_query(2);
        assert!(!engine.run_boolean(&q));
        assert!(engine.insert(atom!("E", cst "b", cst "c")).unwrap());
        assert!(engine.run_boolean(&q));
        let before = engine.metrics().indexes_built;
        assert!(!engine.insert(atom!("E", cst "b", cst "c")).unwrap());
        assert!(engine.run_boolean(&q));
        assert_eq!(engine.metrics().indexes_built, before);
    }

    #[test]
    fn shim_witness_strategy_matches_core() {
        let q = sac_gen::example1_triangle();
        let db = sac_gen::music_database(30, 60, 5);
        let mut engine = Engine::new(db.clone()).with_tgds(vec![sac_gen::collector_tgd()]);
        assert_eq!(
            engine.explain(&q).strategy,
            crate::plan::Strategy::YannakakisWitness
        );
        assert_eq!(engine.run(&q), evaluate(&q, &db));
        assert_eq!(engine.into_database().len(), db.len());
    }
}
