//! A persistent, morsel-driven worker pool for the parallel execution
//! paths.
//!
//! Std-only by design (no rayon, no global registry).  A [`WorkerPool`] is
//! created lazily by the `Database` at its first `parallelism > 1` run,
//! spawns `parallelism - 1` OS threads **once**, parks them when idle, and
//! joins them when the database drops.  Parallel regions — match-set
//! construction, semijoin sweeps, fallback shard search, batch fan-out —
//! submit *morsels* (index-addressed work units over a borrowed slice) and
//! block until their region completes, with the submitting thread claiming
//! morsels itself while it waits, so the effective width of a region is
//! the configured parallelism.
//!
//! ## Scheduling: injector + per-worker deques, claim-locally-then-steal
//!
//! Submitted morsels are dealt round-robin across the per-worker deques
//! plus a shared injector (the submitter's share).  A worker claims from
//! the **front of its own deque** first, then the injector, and only then
//! steals from the **back of another worker's deque** (counted in
//! [`WorkerPool::steals`]).  All queues live behind one mutex paired with
//! a condvar — uncontended in practice because a claim is a deque pop,
//! orders of magnitude shorter than a morsel — which keeps the
//! implementation auditable while preserving the locality/steal shape of
//! a lock-free scheduler.
//!
//! ## Regions: borrowed state, lock-free result slots
//!
//! A region's state (`&[T]` items, the closure, one result slot per
//! morsel) lives on the **submitter's stack**; morsels carry a type-erased
//! pointer to it.  This is sound for the same reason `thread::scope` is:
//! the submitter does not return until the region's `remaining` counter
//! hits zero, and a worker's decrement of that counter is its last access
//! to region memory.  Results land in pre-sized [`Slot`]s — an
//! `UnsafeCell<MaybeUninit<R>>` guarded by a per-slot `AtomicBool` — so
//! there is no per-task `Mutex` and no allocation on the claim path.
//! Results come back **in item order**, regardless of which worker ran
//! what, so parallel regions stay deterministic for everything downstream.
//!
//! ## Panics
//!
//! A panicking morsel does **not** take a worker down: each morsel runs
//! under `catch_unwind`, the first payload is parked in the region, and
//! the submitter re-raises it with `resume_unwind` after the region
//! drains.  The pool stays healthy for subsequent runs.

use sac_telemetry::{bus, Event};
use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// One unit of schedulable work: "run morsel `index` of the region behind
/// `region`".  The pointer is type-erased so the scheduler stays
/// monomorphization-free; `run` is the monomorphized entry that knows the
/// real `Region<T, R, F>` type.
#[derive(Clone, Copy)]
struct Morsel {
    region: *const (),
    run: unsafe fn(*const (), usize),
    index: usize,
    enqueued: Instant,
}

// SAFETY: a `Morsel` is only ever executed while its submitting thread is
// blocked in `WorkerPool::run`, which keeps the pointed-to `Region` (and
// everything it borrows) alive; the region's fields are all safe to reach
// from another thread for the access pattern `run_one` performs (disjoint
// slot writes, atomic counter, mutex-guarded panic cell).
unsafe impl Send for Morsel {}

/// One pre-sized result cell, written by exactly one morsel.
struct Slot<R> {
    filled: AtomicBool,
    value: UnsafeCell<MaybeUninit<R>>,
}

// SAFETY: distinct morsels write distinct slots (one writer per slot,
// ever), and the submitter only reads a slot after the region's
// `remaining` counter — an acquire/release chain through every worker's
// decrement — reaches zero.
unsafe impl<R: Send> Sync for Slot<R> {}

impl<R> Slot<R> {
    fn new() -> Slot<R> {
        Slot {
            filled: AtomicBool::new(false),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    /// Moves the result out.  Panics if the morsel never wrote it (which
    /// the completion protocol rules out on the non-panic path).
    fn take(mut self) -> R {
        assert!(
            *self.filled.get_mut(),
            "every morsel slot is filled before its region completes"
        );
        *self.filled.get_mut() = false;
        // SAFETY: the flag said the value is initialized, and we just
        // cleared it so `Drop` won't double-free.
        unsafe { (*self.value.get()).assume_init_read() }
    }
}

impl<R> Drop for Slot<R> {
    fn drop(&mut self) {
        if *self.filled.get_mut() {
            // SAFETY: `filled` is only set after the value is written.
            unsafe { self.value.get_mut().assume_init_drop() };
        }
    }
}

/// The region state a submitter parks on its stack for the duration of
/// one `WorkerPool::run` call.  Morsels reach it through the erased
/// pointer in [`Morsel`].
struct Region<'a, T, R, F> {
    items: &'a [T],
    f: &'a F,
    slots: &'a [Slot<R>],
    remaining: &'a AtomicUsize,
    panic: &'a Mutex<Option<Box<dyn Any + Send>>>,
    shared: &'a Shared,
}

/// Monomorphized morsel entry: applies the region's closure to item
/// `index`, stores the result (or parks the panic payload), and retires
/// the morsel.  The decrement of `remaining` is the **last** access to
/// region memory — after it, the submitter may return and pop its stack.
///
/// SAFETY contract (upheld by `WorkerPool::run`): `region` points to a
/// live `Region<'_, T, R, F>` whose slice has more than `index` items,
/// and no other morsel carries the same `index` for this region.
unsafe fn run_one<T, R, F>(region: *const (), index: usize)
where
    F: Fn(&T) -> R,
{
    // SAFETY: per the contract above, the pointer is valid for the whole
    // body of this call (the submitter is blocked until we decrement).
    let region = unsafe { &*region.cast::<Region<'_, T, R, F>>() };
    match catch_unwind(AssertUnwindSafe(|| (region.f)(&region.items[index]))) {
        Ok(value) => {
            // SAFETY: this morsel is the only writer of slot `index`.
            unsafe { (*region.slots[index].value.get()).write(value) };
            region.slots[index].filled.store(true, Ordering::Release);
        }
        Err(payload) => {
            let mut first = region
                .panic
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            first.get_or_insert(payload);
        }
    }
    // Copy the pool reference out *before* retiring: `shared` outlives the
    // region (the pool keeps it in an `Arc`), but `region` itself may be
    // freed the instant the submitter observes `remaining == 0`.
    let shared: &Shared = region.shared;
    if region.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Last morsel of the region: wake the submitter.  Locking the done
        // mutex before notifying closes the lost-wakeup window against a
        // submitter that checked `remaining` and is about to wait.
        let _guard = shared
            .region_done
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        shared.region_done_cv.notify_all();
    }
}

/// Everything the queue mutex protects: the shared injector plus one
/// deque per worker.
struct Queues {
    injector: VecDeque<Morsel>,
    locals: Vec<VecDeque<Morsel>>,
}

/// Pool state shared between workers, submitters, and the owner.  Lives in
/// an `Arc` so it strictly outlives every region.
struct Shared {
    queues: Mutex<Queues>,
    /// Signaled when morsels arrive or shutdown begins.
    work_ready: Condvar,
    /// Region-completion handshake: submitters wait here; the worker that
    /// retires a region's last morsel locks + notifies.
    region_done: Mutex<()>,
    region_done_cv: Condvar,
    shutdown: AtomicBool,
    /// Morsels claimed from another worker's deque (scheduler-dependent —
    /// excluded from determinism-sensitive metric comparisons).
    steals: AtomicUsize,
    /// Cumulative morsels submitted over the pool's lifetime.
    dispatched: AtomicUsize,
    /// Cumulative enqueue→claim latency, nanoseconds (scheduler-dependent).
    queue_wait_ns: AtomicU64,
}

impl Shared {
    /// Claims one morsel for `who` (`Some(worker)` or `None` for a helping
    /// submitter): own deque front, then injector, then steal from the
    /// back of the longest other deque.
    fn claim(&self, queues: &mut Queues, who: Option<usize>) -> Option<Morsel> {
        if let Some(id) = who {
            if let Some(morsel) = queues.locals[id].pop_front() {
                return Some(morsel);
            }
        }
        if let Some(morsel) = queues.injector.pop_front() {
            return Some(morsel);
        }
        let victim = (0..queues.locals.len())
            .filter(|&j| who != Some(j) && !queues.locals[j].is_empty())
            .max_by_key(|&j| queues.locals[j].len())?;
        let stolen = queues.locals[victim].pop_back();
        if stolen.is_some() {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
        stolen
    }

    fn lock_queues(&self) -> MutexGuard<'_, Queues> {
        self.queues
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Charges the morsel's queue-wait to the pool counters, then runs it.
fn run_morsel(shared: &Shared, morsel: Morsel) {
    shared.queue_wait_ns.fetch_add(
        morsel.enqueued.elapsed().as_nanos() as u64,
        Ordering::Relaxed,
    );
    // SAFETY: the morsel was produced by `WorkerPool::run`, whose region
    // is still alive (its submitter is blocked on `remaining`).
    unsafe { (morsel.run)(morsel.region, morsel.index) };
}

fn worker_loop(shared: Arc<Shared>, id: usize) {
    loop {
        let claimed = {
            let mut queues = shared.lock_queues();
            loop {
                if let Some(morsel) = shared.claim(&mut queues, Some(id)) {
                    break Some(morsel);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queues = shared
                    .work_ready
                    .wait(queues)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        match claimed {
            Some(morsel) => run_morsel(&shared, morsel),
            None => return,
        }
    }
}

/// The persistent pool.  One per `Database`, created at the first
/// `parallelism > 1` run; dropping it flags shutdown and joins every
/// worker.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.workers.len())
            .field("dispatched", &self.morsels_dispatched())
            .field("steals", &self.steals())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool for the given region width: `parallelism - 1` worker
    /// threads, because the submitting thread claims morsels too while it
    /// waits for its region.
    pub(crate) fn new(parallelism: usize) -> WorkerPool {
        let workers = parallelism.saturating_sub(1).max(1);
        let shared = Arc::new(Shared {
            queues: Mutex::new(Queues {
                injector: VecDeque::new(),
                locals: (0..workers).map(|_| VecDeque::new()).collect(),
            }),
            work_ready: Condvar::new(),
            region_done: Mutex::new(()),
            region_done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            steals: AtomicUsize::new(0),
            dispatched: AtomicUsize::new(0),
            queue_wait_ns: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("sac-pool-{id}"))
                    .spawn(move || worker_loop(shared, id))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// Number of OS threads the pool spawned (the submitter is not
    /// counted; a region's effective width is `size() + 1`).
    pub(crate) fn size(&self) -> usize {
        self.workers.len()
    }

    /// Cumulative morsels claimed from another worker's deque.  Depends on
    /// scheduling, so it never participates in determinism comparisons.
    pub(crate) fn steals(&self) -> usize {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Cumulative morsels submitted over the pool's lifetime.
    pub(crate) fn morsels_dispatched(&self) -> usize {
        self.shared.dispatched.load(Ordering::Relaxed)
    }

    /// Cumulative enqueue→claim wait, in nanoseconds.
    pub(crate) fn queue_wait_ns(&self) -> u64 {
        self.shared.queue_wait_ns.load(Ordering::Relaxed)
    }

    /// Runs one parallel region: applies `f` to every item, one morsel per
    /// item, and returns the results in item order.  Blocks until the
    /// region completes, claiming morsels on the calling thread while it
    /// waits.  Re-raises the first morsel panic after the region drains.
    pub(crate) fn run<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        if n <= 1 {
            return items.iter().map(f).collect();
        }
        bus::emit(|| Event::ParallelRegion {
            tasks: n,
            threads: self.size(),
        });
        let slots: Vec<Slot<R>> = (0..n).map(|_| Slot::new()).collect();
        let remaining = AtomicUsize::new(n);
        let panic_cell: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let region = Region {
            items,
            f: &f,
            slots: &slots,
            remaining: &remaining,
            panic: &panic_cell,
            shared: &self.shared,
        };
        let region_ptr = (&raw const region).cast::<()>();
        let run = run_one::<T, R, F> as unsafe fn(*const (), usize);
        let now = Instant::now();
        {
            // Deal morsels round-robin across the worker deques and the
            // injector (the submitter's share), then wake everyone.
            let mut queues = self.shared.lock_queues();
            let lanes = self.workers.len() + 1;
            for index in 0..n {
                let morsel = Morsel {
                    region: region_ptr,
                    run,
                    index,
                    enqueued: now,
                };
                match index % lanes {
                    lane if lane == lanes - 1 => queues.injector.push_back(morsel),
                    lane => queues.locals[lane].push_back(morsel),
                }
            }
            self.shared.work_ready.notify_all();
        }
        self.shared.dispatched.fetch_add(n, Ordering::Relaxed);

        // Help until the region drains: claim morsels like a worker, and
        // only park on the completion condvar when nothing is claimable
        // (at that point every outstanding morsel is already running on a
        // worker, so progress is guaranteed).
        loop {
            if remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            let claimed = {
                let mut queues = self.shared.lock_queues();
                self.shared.claim(&mut queues, None)
            };
            match claimed {
                Some(morsel) => run_morsel(&self.shared, morsel),
                None => {
                    let guard = self
                        .shared
                        .region_done
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    if remaining.load(Ordering::Acquire) > 0 {
                        drop(
                            self.shared
                                .region_done_cv
                                .wait(guard)
                                .unwrap_or_else(|poisoned| poisoned.into_inner()),
                        );
                    }
                }
            }
        }

        let first_panic = panic_cell
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take();
        if let Some(payload) = first_panic {
            drop(slots); // drop the results that did land
            resume_unwind(payload);
        }
        slots.into_iter().map(Slot::take).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Take the queue lock before notifying so no worker can re-check
        // the flag and park between our store and the wakeup.
        drop(self.shared.lock_queues());
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.size(), 3);
        let items: Vec<usize> = (0..1000).collect();
        let doubled = pool.run(&items, |n| n * 2);
        assert_eq!(doubled, (0..1000).map(|n| n * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_and_empty_regions_run_inline() {
        let pool = WorkerPool::new(4);
        let one = [7];
        assert_eq!(pool.run(&one, |n| n + 1), vec![8]);
        let empty: [i32; 0] = [];
        assert_eq!(pool.run(&empty, |n| n + 1), Vec::<i32>::new());
        assert_eq!(pool.morsels_dispatched(), 0);
    }

    #[test]
    fn the_pool_is_reused_across_regions_without_respawning() {
        let pool = WorkerPool::new(3);
        let before = pool.size();
        for round in 0..50usize {
            let items: Vec<usize> = (0..40).collect();
            let sums = pool.run(&items, |n| n + round);
            assert_eq!(sums[0], round);
        }
        assert_eq!(pool.size(), before, "no respawn across regions");
        assert_eq!(pool.morsels_dispatched(), 50 * 40);
    }

    #[test]
    fn workers_share_borrowed_state() {
        let pool = WorkerPool::new(3);
        let base: Vec<String> = (0..200).map(|i| format!("v{i}")).collect();
        let items: Vec<usize> = (0..200).collect();
        let lens = pool.run(&items, |i| base[*i].len());
        assert_eq!(
            lens.iter().sum::<usize>(),
            base.iter().map(|s| s.len()).sum::<usize>()
        );
    }

    #[test]
    fn a_panicking_morsel_propagates_without_poisoning_the_pool() {
        let pool = WorkerPool::new(2);
        let items: Vec<usize> = (0..64).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&items, |n| {
                if *n == 33 {
                    panic!("morsel 33 exploded");
                }
                *n
            })
        }));
        let payload = caught.expect_err("the morsel panic must reach the submitter");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("payload is the original panic message");
        assert_eq!(message, "morsel 33 exploded");
        // The pool survives and runs the next region normally.
        let ok = pool.run(&items, |n| n * 3);
        assert_eq!(ok, (0..64).map(|n| n * 3).collect::<Vec<_>>());
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(8);
        let items: Vec<usize> = (0..100).collect();
        let _ = pool.run(&items, |n| *n);
        drop(pool); // hangs (test timeout) if a worker fails to exit
    }

    #[test]
    fn non_copy_results_and_drops_are_balanced() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..128).collect();
        let strings = pool.run(&items, |n| format!("row-{n}"));
        assert_eq!(strings.len(), 128);
        assert_eq!(strings[127], "row-127");
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = WorkerPool::new(4);
        thread::scope(|scope| {
            for offset in 0..4usize {
                let pool = &pool;
                scope.spawn(move || {
                    let items: Vec<usize> = (0..256).collect();
                    let out = pool.run(&items, |n| n + offset);
                    assert_eq!(out[10], 10 + offset);
                });
            }
        });
    }
}
