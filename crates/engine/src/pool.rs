//! A scoped-thread worker pool for the parallel execution paths.
//!
//! Std-only by design (no rayon, no global registry): each parallel region
//! spawns at most `threads` scoped workers that pull tasks from a shared
//! atomic cursor, and joins them before returning — so borrowed data
//! (`&Instance`, plan structures, index snapshots) flows into workers
//! without `Arc`s, and a panicking task propagates to the caller like any
//! serial panic.
//!
//! Work distribution is dynamic (claim-next-index), which keeps skewed
//! shards — a hash partition of a star graph puts the hub's tuples in one
//! shard — from serializing the whole region behind one slow worker as long
//! as there are more tasks than threads.
//!
//! Results come back **in task order**, regardless of which worker ran
//! what, so parallel regions stay deterministic for everything downstream.

use sac_telemetry::{bus, Event};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Applies `f` to every item, using up to `threads` scoped workers, and
/// returns the results in item order plus how many worker threads were
/// actually spawned (0 when the region ran serially).
///
/// Runs serially when `threads <= 1` or there is at most one item; callers
/// can rely on `parallel_map(1, ..)` being exactly a `map`.
pub(crate) fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> (Vec<R>, usize)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return (items.iter().map(f).collect(), 0);
    }
    let workers = threads.min(items.len());
    bus::emit(|| Event::ParallelRegion {
        tasks: items.len(),
        threads: workers,
    });
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
            });
        }
    });
    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every task slot is filled before the scope joins")
        })
        .collect();
    (results, workers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let (doubled, workers) = parallel_map(4, &items, |n| n * 2);
        assert_eq!(workers, 4);
        assert_eq!(doubled, (0..100).map(|n| n * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_fallbacks_spawn_no_threads() {
        let items = [1, 2, 3];
        let (r, workers) = parallel_map(1, &items, |n| n + 1);
        assert_eq!((r, workers), (vec![2, 3, 4], 0));
        let one = [7];
        let (r, workers) = parallel_map(8, &one, |n| n + 1);
        assert_eq!((r, workers), (vec![8], 0));
        let empty: [i32; 0] = [];
        let (r, workers) = parallel_map(8, &empty, |n| n + 1);
        assert_eq!((r, workers), (Vec::new(), 0));
    }

    #[test]
    fn worker_count_is_capped_by_task_count() {
        let items = [10, 20];
        let (r, workers) = parallel_map(8, &items, |n| n / 10);
        assert_eq!(r, vec![1, 2]);
        assert_eq!(workers, 2);
    }

    #[test]
    fn workers_share_borrowed_state() {
        let base: Vec<String> = (0..20).map(|i| format!("v{i}")).collect();
        let items: Vec<usize> = (0..20).collect();
        let (r, _) = parallel_map(3, &items, |i| base[*i].len());
        assert_eq!(r.iter().sum::<usize>(), base.iter().map(|s| s.len()).sum());
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate_to_the_caller() {
        let items: Vec<usize> = (0..8).collect();
        let _ = parallel_map(2, &items, |n| {
            if *n == 5 {
                panic!("boom");
            }
            *n
        });
    }
}
