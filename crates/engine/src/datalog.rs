//! Semi-naive evaluation of stratified Datalog programs on the engine's
//! execution machinery.
//!
//! The language, certificates and the fail-closed checker live in
//! [`sac_datalog`]; this module is the *performance* side: it compiles each
//! rule's positive body into an ordinary conjunctive-query [`Plan`] (so
//! every rule ride the same strategy lattice as one-shot queries —
//! Yannakakis on acyclic bodies, a verified acyclic Σ-witness on
//! semantically acyclic ones, indexed search otherwise) and drives the
//! classic stratum-by-stratum semi-naive fixpoint over the storage layer's
//! append-only delta logs:
//!
//! - **Iteration 1** of a stratum evaluates every rule body in full with
//!   `exec::execute_with`.
//! - **Iteration k+1** evaluates only against the rows appended by
//!   iteration k.  Yannakakis-rung rules reuse the *view maintenance* delta
//!   executor (`exec::execute_delta`): delta match sets at the dirty join
//!   tree nodes, index-driven restriction outward, then the ordinary
//!   sweeps.  Fallback-rung rules seed a homomorphism search from each
//!   delta row at each body-atom occurrence.
//! - Consequences are collected per iteration and applied **after** the
//!   iteration (Jacobi style), in rule order then tuple order, so the
//!   derivation log — and therefore the [`Certificate`] — is byte-identical
//!   across strategies and parallelism levels.
//!
//! Rule bodies are planned with the *full* variable set as their head (one
//! answer row per body substitution), which is what lets each answer carry
//! provenance: the row *is* the substitution, and every premise resolves to
//! a stable base row id or an earlier derivation step.
//!
//! Parallelism reuses the database's persistent morsel pool at two
//! granularities without nesting regions: a multi-rule stratum fans out one
//! morsel per rule (each rule executing serially), while a single-rule
//! stratum gives that rule the full intra-query fan-out.

use crate::database::{Database, EngineConfig, ExecOptions};
use crate::error::{SacError, SacResult};
use crate::exec;
use crate::index::{IndexCache, PlanShards};
use crate::plan::{plan_query, Plan, Strategy};
use crate::pool::WorkerPool;
use sac_common::{Atom, Error, FxHashMap, Result, Substitution, Symbol, Term};
use sac_datalog::{Certificate, DatalogProgram, DerivationStep, Premise, Rule};
use sac_deps::Tgd;
use sac_query::{ConjunctiveQuery, HomomorphismSearch};
use sac_storage::{DeltaCursor, Instance};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Per-run knobs for [`Database::run_datalog_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatalogOptions {
    /// Record a replayable [`Certificate`] alongside the answers (the
    /// default).  Disable to skip provenance bookkeeping on runs where only
    /// the fixpoint matters.
    pub certificate: bool,
    /// Plan rule bodies under the database's tgds, enabling the
    /// [`Strategy::YannakakisWitness`] rung for cyclic-but-semantically-
    /// acyclic bodies.  Sound when the tgds mention only extensional
    /// predicates and the base instance satisfies them: derived facts only
    /// touch rule-head predicates, so they can never violate such
    /// constraints mid-fixpoint.  Off by default — without constraints
    /// every rung is unconditionally equivalent.
    pub use_constraints: bool,
}

impl Default for DatalogOptions {
    fn default() -> DatalogOptions {
        DatalogOptions {
            certificate: true,
            use_constraints: false,
        }
    }
}

/// What one Datalog evaluation did, beyond its answers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatalogStats {
    /// Rules in the evaluated program.
    pub rules: usize,
    /// Strata the program stratified into.
    pub strata: usize,
    /// Fixpoint iterations across all strata (each stratum contributes at
    /// least its full first pass plus one empty confirming pass when it
    /// derived anything).
    pub iterations: usize,
    /// New facts derived on top of the base instance.
    pub facts_derived: usize,
    /// Rule evaluations executed on [`Strategy::YannakakisDirect`] plans.
    pub rule_runs_yannakakis_direct: usize,
    /// Rule evaluations executed on [`Strategy::YannakakisWitness`] plans.
    pub rule_runs_yannakakis_witness: usize,
    /// Rule evaluations executed on [`Strategy::IndexedSearch`] plans.
    pub rule_runs_indexed_search: usize,
    /// Rule evaluations served by the Yannakakis delta executor (the
    /// remaining delta passes used seeded homomorphism search).
    pub delta_rule_runs: usize,
}

impl DatalogStats {
    /// Rule evaluations by strategy rung, as `(direct, witness, fallback)`.
    pub fn rule_runs(&self) -> (usize, usize, usize) {
        (
            self.rule_runs_yannakakis_direct,
            self.rule_runs_yannakakis_witness,
            self.rule_runs_indexed_search,
        )
    }
}

/// The result of one Datalog fixpoint evaluation.
#[derive(Debug, Clone)]
pub struct DatalogRun {
    /// The saturated instance: the base facts plus every derived fact.
    pub fixpoint: Instance,
    /// The derived facts only, in derivation order.
    pub derived: Vec<Atom>,
    /// The derivation log, when [`DatalogOptions::certificate`] was set:
    /// replayable by the engine-independent [`sac_datalog::check`] module.
    pub certificate: Option<Certificate>,
    /// Evaluation statistics.
    pub stats: DatalogStats,
}

impl DatalogRun {
    /// The derived facts of one predicate, in derivation order.
    pub fn derived_for(&self, predicate: &str) -> Vec<Atom> {
        let symbol = sac_common::intern(predicate);
        self.derived
            .iter()
            .filter(|fact| fact.predicate == symbol)
            .cloned()
            .collect()
    }
}

/// Anything [`Database::run_datalog`] accepts as a program: a parsed
/// [`DatalogProgram`] (owned or borrowed) or program text in the
/// workspace's rule syntax (`T(X, Z) :- E(X, Y), T(Y, Z).`).
pub trait DatalogSource {
    /// Converts the source into a validated, stratified program.
    fn into_program(self) -> SacResult<DatalogProgram>;
}

impl DatalogSource for DatalogProgram {
    fn into_program(self) -> SacResult<DatalogProgram> {
        Ok(self)
    }
}

impl DatalogSource for &DatalogProgram {
    fn into_program(self) -> SacResult<DatalogProgram> {
        Ok(self.clone())
    }
}

impl DatalogSource for &str {
    fn into_program(self) -> SacResult<DatalogProgram> {
        self.parse::<DatalogProgram>().map_err(SacError::from)
    }
}

impl DatalogSource for &String {
    fn into_program(self) -> SacResult<DatalogProgram> {
        self.as_str().into_program()
    }
}

impl DatalogSource for String {
    fn into_program(self) -> SacResult<DatalogProgram> {
        self.as_str().into_program()
    }
}

/// A program parsed and stratified once, pinned to a database for repeated
/// evaluation (the Datalog analogue of [`crate::PreparedQuery`]).
#[derive(Debug, Clone)]
pub struct PreparedDatalog<'db> {
    pub(crate) db: &'db Database,
    pub(crate) program: Arc<DatalogProgram>,
    pub(crate) options: DatalogOptions,
}

impl PreparedDatalog<'_> {
    /// Evaluates the program against the database's current facts.
    pub fn run(&self) -> SacResult<DatalogRun> {
        self.db.run_datalog_program(&self.program, self.options)
    }

    /// The validated program.
    pub fn program(&self) -> &DatalogProgram {
        &self.program
    }

    /// Overrides the evaluation options (builder-style).
    pub fn with_options(mut self, options: DatalogOptions) -> Self {
        self.options = options;
        self
    }
}

/// One rule compiled for the evaluation loop: its positive body planned as
/// a conjunctive query whose head is **every** distinct body variable, so
/// each answer row is a full substitution.
struct CompiledRule<'p> {
    index: usize,
    rule: &'p Rule,
    vars: Vec<Symbol>,
    plan: Plan,
}

/// Distinct positive-body variables in first-occurrence order — the answer
/// row layout of the rule's body query.
fn body_variables(rule: &Rule) -> Vec<Symbol> {
    let mut vars = Vec::new();
    for atom in &rule.body {
        for term in &atom.args {
            if let Term::Variable(v) = term {
                if !vars.contains(v) {
                    vars.push(*v);
                }
            }
        }
    }
    vars
}

/// Evaluates `program` to fixpoint over the owned working instance `work`
/// (a snapshot of the database), semi-naively, stratum by stratum.
pub(crate) fn evaluate(
    program: &DatalogProgram,
    mut work: Instance,
    tgds: &[Tgd],
    config: &EngineConfig,
    exec_options: ExecOptions,
    pool: Option<Arc<WorkerPool>>,
    options: DatalogOptions,
) -> Result<DatalogRun> {
    // Everything at or below this cursor is a base fact: certificate
    // premises below it use stable row ids, above it derivation steps.
    let base_cursor = work.delta_cursor();
    let planning_tgds: &[Tgd] = if options.use_constraints { tgds } else { &[] };

    let compiled = program
        .rules()
        .iter()
        .enumerate()
        .map(|(index, rule)| {
            let vars = body_variables(rule);
            let query = ConjunctiveQuery::new(vars.clone(), rule.body.clone())?;
            let plan = plan_query(&query, planning_tgds, &work, config);
            Ok(CompiledRule {
                index,
                rule,
                vars,
                plan,
            })
        })
        .collect::<Result<Vec<CompiledRule<'_>>>>()?;

    let mut stats = DatalogStats {
        rules: program.rule_count(),
        strata: program.strata().len(),
        ..DatalogStats::default()
    };
    // A private index cache over the working instance, extended in place
    // after every apply phase — the database's own cache never sees the
    // intermediate fixpoint states.
    let mut cache = IndexCache::new(&work);
    let mut derived: Vec<Atom> = Vec::new();
    let mut derived_step: FxHashMap<Atom, usize> = FxHashMap::default();
    let mut certificate = options.certificate.then(Certificate::default);

    for stratum in program.strata() {
        let rules: Vec<&CompiledRule<'_>> = stratum.iter().map(|&i| &compiled[i]).collect();
        // A single-rule stratum keeps the full intra-query fan-out; a
        // multi-rule stratum fans out one morsel per rule instead (each
        // rule serial), so pool regions never nest.
        let single = rules.len() == 1;
        let inner_parallelism = if single { exec_options.parallelism } else { 1 };
        let inner_pool = if single { pool.clone() } else { None };

        let mut delta_from = work.delta_cursor();
        let mut full_pass = true;
        loop {
            stats.iterations += 1;
            let watermarks: HashMap<Symbol, usize> = if full_pass {
                HashMap::new()
            } else {
                work.delta_since(&delta_from)
                    .iter()
                    .map(|delta| (delta.predicate, delta.from_row))
                    .collect()
            };

            // Snapshot one execution context per rule up front (the cache
            // needs `&mut`), then fan the evaluations out.
            let contexts: Vec<exec::ExecContext> = rules
                .iter()
                .map(|cr| {
                    let mut needed = exec::required_indexes(&cr.plan);
                    if !full_pass {
                        needed.extend(exec::delta_edge_indexes(&cr.plan));
                    }
                    let indexes = cache.snapshot(&work, &needed);
                    let shards = if inner_parallelism > 1 {
                        cache.snapshot_shards(
                            &work,
                            &exec::required_shards(&cr.plan),
                            inner_parallelism,
                            exec_options.min_parallel_rows,
                        )
                    } else {
                        PlanShards::new()
                    };
                    exec::ExecContext::new(
                        indexes,
                        shards,
                        inner_parallelism,
                        exec_options.min_parallel_rows,
                    )
                    .with_pool(inner_pool.clone())
                })
                .collect();

            let run_one = |slot: &usize| -> (BTreeSet<Vec<Term>>, bool) {
                let (cr, ctx) = (rules[*slot], &contexts[*slot]);
                if full_pass {
                    (exec::execute_with(&cr.plan, &work, ctx), false)
                } else {
                    match exec::execute_delta(&cr.plan, &work, &watermarks, ctx) {
                        Some(rows) => (rows, true),
                        None => (seeded_delta(cr, &work, &watermarks), false),
                    }
                }
            };
            let slots: Vec<usize> = (0..rules.len()).collect();
            let outputs: Vec<(BTreeSet<Vec<Term>>, bool)> = match &pool {
                Some(pool) if !single => pool.run(&slots, run_one),
                _ => slots.iter().map(run_one).collect(),
            };

            for (cr, (_, via_delta_exec)) in rules.iter().zip(outputs.iter()) {
                match cr.plan.strategy() {
                    Strategy::YannakakisDirect => stats.rule_runs_yannakakis_direct += 1,
                    Strategy::YannakakisWitness => stats.rule_runs_yannakakis_witness += 1,
                    Strategy::IndexedSearch => stats.rule_runs_indexed_search += 1,
                }
                if *via_delta_exec {
                    stats.delta_rule_runs += 1;
                }
            }

            // Apply phase: rule order, then the body query's sorted answer
            // order — the derivation log never depends on how the rows
            // were computed.
            let before_apply = work.delta_cursor();
            let mut changed = false;
            for (cr, (rows, _)) in rules.iter().zip(outputs.iter()) {
                for row in rows {
                    let lookup = |term: Term| match term {
                        Term::Variable(v) => {
                            let slot = cr
                                .vars
                                .iter()
                                .position(|&u| u == v)
                                .expect("safe rules only use positive body variables");
                            row[slot]
                        }
                        rigid => rigid,
                    };
                    let negated: Vec<Atom> = cr
                        .rule
                        .negated
                        .iter()
                        .map(|literal| literal.map_args(lookup))
                        .collect();
                    // Negated predicates sit in strictly lower strata, so
                    // their extent is already final here.
                    if negated.iter().any(|literal| work.contains(literal)) {
                        continue;
                    }
                    let fact = cr.rule.head.map_args(lookup);
                    if !work.insert(fact.clone())? {
                        continue;
                    }
                    changed = true;
                    stats.facts_derived += 1;
                    if let Some(cert) = &mut certificate {
                        let premises = cr
                            .rule
                            .body
                            .iter()
                            .map(|atom| {
                                resolve_premise(
                                    &work,
                                    &base_cursor,
                                    &derived_step,
                                    &atom.map_args(lookup),
                                )
                            })
                            .collect::<Result<Vec<Premise>>>()?;
                        derived_step.insert(fact.clone(), cert.steps.len());
                        cert.steps.push(DerivationStep {
                            rule: cr.index,
                            fact: fact.clone(),
                            premises,
                            negated,
                        });
                    }
                    derived.push(fact);
                }
            }
            cache.note_growth(&work);
            delta_from = before_apply;
            if !changed {
                break;
            }
            full_pass = false;
        }
    }

    Ok(DatalogRun {
        fixpoint: work,
        derived,
        certificate,
        stats,
    })
}

/// Delta evaluation for rules whose plan has no Yannakakis delta executor:
/// seed a full-body homomorphism search from every appended row at every
/// body-atom occurrence.  Complete because any new body match must use at
/// least one appended row at some occurrence; the result may repeat older
/// matches, which the apply phase's insert dedup absorbs.
fn seeded_delta(
    cr: &CompiledRule<'_>,
    work: &Instance,
    watermarks: &HashMap<Symbol, usize>,
) -> BTreeSet<Vec<Term>> {
    let mut out = BTreeSet::new();
    for atom in &cr.rule.body {
        let Some(&from_row) = watermarks.get(&atom.predicate) else {
            continue;
        };
        let Some(relation) = work.relation(atom.predicate) else {
            continue;
        };
        if relation.arity() != atom.arity() {
            continue;
        }
        for tuple in relation.rows_from(from_row) {
            let target = Atom::new(atom.predicate, tuple);
            let mut seed = Substitution::new();
            if !seed.match_atom(atom, &target) {
                continue;
            }
            for sub in HomomorphismSearch::new(&cr.rule.body, work)
                .with_initial(seed)
                .all()
            {
                out.insert(
                    cr.vars
                        .iter()
                        .map(|&v| sub.apply(Term::Variable(v)))
                        .collect::<Vec<Term>>(),
                );
            }
        }
    }
    out
}

/// Resolves a ground premise fact to its certificate reference: a stable
/// base row id when the fact predates the fixpoint, otherwise the step that
/// derived it.
fn resolve_premise(
    work: &Instance,
    base_cursor: &DeltaCursor,
    derived_step: &FxHashMap<Atom, usize>,
    fact: &Atom,
) -> Result<Premise> {
    if let Some(relation) = work.relation(fact.predicate) {
        if let Some(row) = relation.find_row(&fact.args) {
            if row < base_cursor.rows_covered(fact.predicate) {
                return Ok(Premise::Base {
                    predicate: fact.predicate,
                    row,
                });
            }
        }
    }
    derived_step
        .get(fact)
        .copied()
        .map(Premise::Derived)
        .ok_or_else(|| {
            Error::Malformed(format!(
                "internal: premise {fact} is neither a base fact nor a recorded derivation"
            ))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_datalog::{check, naive};
    use std::collections::BTreeSet as Set;

    fn atoms(instance: &Instance) -> Set<Atom> {
        instance.atoms().collect()
    }

    #[test]
    fn semi_naive_matches_the_naive_reference() {
        let db = Database::from_facts("E(a, b). E(b, c). E(c, d). E(d, b).").unwrap();
        let program: DatalogProgram = "T(X, Y) :- E(X, Y).\nT(X, Z) :- E(X, Y), T(Y, Z)."
            .parse()
            .unwrap();
        let run = db.run_datalog(&program).unwrap();
        let (reference, _) = naive::naive_fixpoint(&program, &db.snapshot()).unwrap();
        assert_eq!(atoms(&run.fixpoint), atoms(&reference));
        assert!(run.stats.iterations >= 3, "recursion needs delta passes");
        assert!(
            run.stats.delta_rule_runs > 0,
            "acyclic bodies take the delta executor"
        );

        let certificate = run.certificate.expect("certificates are on by default");
        assert_eq!(certificate.len(), run.derived.len());
        db.read(|base| check::check_certificate(&program, base, &certificate))
            .unwrap();
    }

    #[test]
    fn stratified_negation_agrees_with_the_reference() {
        let db = Database::from_facts("E(a, b). E(b, c). N(a). N(b). N(c).").unwrap();
        let program: DatalogProgram = "T(X, Y) :- E(X, Y).\n\
                                       T(X, Z) :- E(X, Y), T(Y, Z).\n\
                                       Un(X, Y) :- N(X), N(Y), not T(X, Y)."
            .parse()
            .unwrap();
        let run = db.run_datalog(&program).unwrap();
        let (reference, _) = naive::naive_fixpoint(&program, &db.snapshot()).unwrap();
        assert_eq!(atoms(&run.fixpoint), atoms(&reference));
        assert_eq!(run.stats.strata, 2);
        let certificate = run.certificate.unwrap();
        db.read(|base| check::check_certificate(&program, base, &certificate))
            .unwrap();
    }

    #[test]
    fn parallel_runs_are_byte_identical_to_serial() {
        let mut facts = String::new();
        for i in 0..40 {
            facts.push_str(&format!("E(n{}, n{}). ", i, (i * 7 + 3) % 40));
        }
        let program: DatalogProgram = "T(X, Y) :- E(X, Y).\n\
                                       T(X, Z) :- E(X, Y), T(Y, Z).\n\
                                       S(X) :- T(X, X)."
            .parse()
            .unwrap();
        let serial = Database::from_facts(&facts)
            .unwrap()
            .run_datalog(&program)
            .unwrap();
        for parallelism in [2, 4] {
            let db = Database::from_facts(&facts)
                .unwrap()
                .with_exec_options(ExecOptions {
                    parallelism,
                    min_parallel_rows: 0,
                });
            let run = db.run_datalog(&program).unwrap();
            assert_eq!(run.derived, serial.derived, "parallelism {parallelism}");
            assert_eq!(run.certificate, serial.certificate);
        }
    }

    #[test]
    fn options_disable_certificates_and_metrics_count_runs() {
        let db = Database::from_facts("E(a, b). E(b, c).").unwrap();
        let run = db
            .run_datalog_with(
                "T(X, Y) :- E(X, Y).\nT(X, Z) :- E(X, Y), T(Y, Z).",
                DatalogOptions {
                    certificate: false,
                    ..DatalogOptions::default()
                },
            )
            .unwrap();
        assert!(run.certificate.is_none());
        assert_eq!(run.derived_for("T").len(), 3);
        let metrics = db.metrics();
        assert_eq!(metrics.datalog_runs, 1);
        assert_eq!(metrics.datalog_facts_derived, 3);
        assert!(metrics.datalog_iterations >= run.stats.iterations);
        assert!(!metrics.datalog_latency.is_empty());
    }

    #[test]
    fn prepared_programs_rerun_against_new_facts() {
        let db = Database::from_facts("E(a, b).").unwrap();
        let prepared = db
            .prepare_datalog("T(X, Y) :- E(X, Y).\nT(X, Z) :- E(X, Y), T(Y, Z).")
            .unwrap();
        assert_eq!(prepared.run().unwrap().derived.len(), 1);
        db.insert(Atom::from_parts(
            "E",
            vec![Term::constant("b"), Term::constant("c")],
        ))
        .unwrap();
        assert_eq!(prepared.run().unwrap().derived.len(), 3);
    }

    #[test]
    fn constraint_planning_can_take_the_witness_rung() {
        // The cyclic rule body E(X,Y), E(Y,Z), C(X,Z) is semantically
        // acyclic under the collector tgd, so with `use_constraints` its
        // rule runs on the witness rung; without it, the fallback.
        let db = Database::from_instance(sac_gen::music_database(30, 60, 7))
            .with_tgds(vec![sac_gen::collector_tgd()]);
        let triangle = sac_gen::example1_triangle();
        let head_var = triangle.body[0].args[0];
        let rule = sac_datalog::Rule::positive(
            Atom::from_parts("Tri", vec![head_var]),
            triangle.body.clone(),
        )
        .unwrap();
        let program = sac_datalog::DatalogProgram::new(vec![rule]).unwrap();
        let witness = db
            .run_datalog_with(
                &program,
                DatalogOptions {
                    use_constraints: true,
                    ..DatalogOptions::default()
                },
            )
            .unwrap();
        assert!(witness.stats.rule_runs_yannakakis_witness > 0);
        let fallback = db.run_datalog(&program).unwrap();
        assert!(fallback.stats.rule_runs_yannakakis_witness == 0);
        assert_eq!(witness.derived, fallback.derived);
    }
}
