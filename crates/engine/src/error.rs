//! The unified service-level error type.
//!
//! Every layer a [`crate::Database`] call can pass through — the parser
//! (`sac-parser` / the `FromStr` impls), the storage layer (arity checks),
//! the chase (failure and budget exhaustion) and the engine itself — reports
//! failures as [`sac_common::Error`] values with layer-specific variants.
//! [`SacError`] folds them into one service-facing enum (hand-rolled
//! `thiserror` style: `Display` + `std::error::Error` + `From`), so callers
//! of [`crate::Database::query`] handle exactly one error type with `?`.

use std::fmt;

/// Result alias using [`SacError`].
pub type SacResult<T> = std::result::Result<T, SacError>;

/// Anything that can go wrong while serving a request through
/// [`crate::Database`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SacError {
    /// The query / program text did not parse.  Positions are 1-based.
    Parse {
        /// Explanation of what went wrong.
        message: String,
        /// Line of the error.
        line: usize,
        /// Column (in characters) of the error.
        column: usize,
        /// Byte offset into the input.
        offset: usize,
    },
    /// An atom used a predicate not declared in the schema.
    UnknownPredicate {
        /// The offending predicate name.
        predicate: String,
    },
    /// A predicate was used with two different arities.
    ArityMismatch {
        /// The offending predicate name.
        predicate: String,
        /// The arity the database knows.
        expected: usize,
        /// The arity the request used.
        found: usize,
    },
    /// A query, dependency or fact was structurally invalid.
    InvalidInput {
        /// Explanation of the structural problem.
        message: String,
    },
    /// The egd chase failed by equating two distinct constants.
    ChaseFailure {
        /// Explanation from the chase.
        message: String,
    },
    /// A resource budget (chase steps, rewriting candidates, …) ran out
    /// before a definite answer was reached.
    BudgetExhausted {
        /// Which budget, and where.
        message: String,
    },
    /// A procedure was invoked on a dependency class it does not support.
    Unsupported {
        /// The unsupported feature or class.
        message: String,
    },
    /// The durability layer failed: a WAL or snapshot I/O error, or
    /// corruption in the on-disk state that the torn-tail repair rule
    /// cannot absorb (see [`crate::durability`]).
    Persistence {
        /// What failed, with the underlying cause folded in.
        message: String,
    },
}

impl fmt::Display for SacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SacError::Parse {
                message,
                line,
                column,
                ..
            } => write!(f, "parse error at line {line}, column {column}: {message}"),
            SacError::UnknownPredicate { predicate } => {
                write!(f, "unknown predicate `{predicate}`")
            }
            SacError::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch for `{predicate}`: expected {expected}, found {found}"
            ),
            SacError::InvalidInput { message } => write!(f, "invalid input: {message}"),
            SacError::ChaseFailure { message } => write!(f, "chase failure: {message}"),
            SacError::BudgetExhausted { message } => write!(f, "budget exhausted: {message}"),
            SacError::Unsupported { message } => write!(f, "unsupported: {message}"),
            SacError::Persistence { message } => write!(f, "persistence failure: {message}"),
        }
    }
}

impl std::error::Error for SacError {}

impl From<sac_common::Error> for SacError {
    fn from(e: sac_common::Error) -> SacError {
        match e {
            sac_common::Error::Parse {
                message,
                line,
                column,
                offset,
            } => SacError::Parse {
                message,
                line,
                column,
                offset,
            },
            sac_common::Error::UnknownPredicate(predicate) => {
                SacError::UnknownPredicate { predicate }
            }
            sac_common::Error::ArityMismatch {
                predicate,
                expected,
                found,
            } => SacError::ArityMismatch {
                predicate,
                expected,
                found,
            },
            sac_common::Error::Malformed(message) => SacError::InvalidInput { message },
            sac_common::Error::ChaseFailure(message) => SacError::ChaseFailure { message },
            sac_common::Error::BudgetExhausted(message) => SacError::BudgetExhausted { message },
            sac_common::Error::UnsupportedClass(message) => SacError::Unsupported { message },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_common_variant_folds_into_sac_error() {
        let cases: Vec<(sac_common::Error, &str)> = vec![
            (
                sac_common::Error::parse_at("expected `)`", "q(X\n :- R", 4),
                "line 2",
            ),
            (
                sac_common::Error::UnknownPredicate("R".into()),
                "unknown predicate",
            ),
            (
                sac_common::Error::ArityMismatch {
                    predicate: "R".into(),
                    expected: 2,
                    found: 3,
                },
                "arity mismatch",
            ),
            (sac_common::Error::Malformed("m".into()), "invalid input"),
            (sac_common::Error::ChaseFailure("c".into()), "chase failure"),
            (
                sac_common::Error::BudgetExhausted("b".into()),
                "budget exhausted",
            ),
            (
                sac_common::Error::UnsupportedClass("u".into()),
                "unsupported",
            ),
        ];
        for (source, needle) in cases {
            let folded: SacError = source.into();
            let text = folded.to_string();
            assert!(text.contains(needle), "`{text}` misses `{needle}`");
        }
    }

    #[test]
    fn parse_errors_keep_their_positions() {
        let folded: SacError = sac_common::Error::parse_at("boom", "ab\ncd", 4).into();
        let SacError::Parse {
            line,
            column,
            offset,
            ..
        } = folded
        else {
            panic!("expected a parse variant");
        };
        assert_eq!((line, column, offset), (2, 2, 4));
    }

    #[test]
    fn sac_error_is_a_std_error() {
        fn check<E: std::error::Error + Send + Sync + 'static>(_: &E) {}
        check(&SacError::InvalidInput {
            message: "x".into(),
        });
    }
}
