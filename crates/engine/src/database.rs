//! [`Database`]: the concurrent, prepared-query service façade.
//!
//! Where the legacy [`crate::Engine`] was a single-owner session
//! (`&mut self` everywhere), a `Database` is `Send + Sync` and serves every
//! request through `&self`, so one instance behind an `Arc` — or plain
//! borrows into scoped threads — can absorb traffic from many threads at
//! once:
//!
//! * the **instance** sits behind an `RwLock`: queries share a read guard
//!   for their whole execution, inserts take the write guard;
//! * the **plan cache** sits behind its own `RwLock`: hits are shared reads,
//!   planning happens outside any lock and the compiled [`Plan`] is
//!   published with a brief write;
//! * the **index cache** sits behind a `Mutex`, but is only locked for the
//!   short moment a run snapshots (and lazily builds) exactly the indexes
//!   its plan needs — execution itself works off the immutable
//!   [`Arc`]-backed snapshot with no lock held;
//! * **metrics** are atomics.
//!
//! Epoch tracking is preserved exactly: inserts advance the instance epoch
//! under the write guard and incrementally extend the touched predicate's
//! cached indexes and shards before the guard is released (copy-on-write
//! against in-flight snapshots), so a snapshot taken under any read guard
//! is always consistent with the data it runs against.
//!
//! Lock order (outer to inner): `tgds` → `instance` → `views` registry →
//! per-view state → `indexes`, and `tgds` → `plans`; the plan cache is
//! never held while acquiring another lock.  Planning publishes into the
//! cache while still holding the tgds read guard, so [`Database::set_tgds`]
//! (write guard held across its cache clear) can never observe — or be
//! overtaken by — a plan compiled under constraints it just replaced.
//! Materialized-view maintenance runs under the same write guard as the
//! data change (see [`crate::view`]), so freshness is atomic with
//! visibility.
//!
//! The **worker pool** sits outside that order entirely: its queue mutex
//! is leaf-level (the pool never takes an engine lock, and morsel closures
//! only ever read the immutable snapshots they captured), so submitting a
//! region while holding the instance *read* guard — what every parallel
//! run does — cannot participate in a lock cycle.  The pool is created
//! lazily at the first `parallelism > 1` run (a `OnceLock`), parked while
//! idle, and joined when the database drops.

use crate::datalog::{self, DatalogOptions, DatalogRun, DatalogSource, PreparedDatalog};
use crate::durability::{
    self, CheckpointReport, DurabilityCore, DurabilityOptions, DurableState, RecoveryReport,
};
use crate::error::{SacError, SacResult};
use crate::exec;
use crate::index::{IndexCache, PlanShards};
use crate::plan::{plan_query, Explain, Plan, Strategy};
use crate::pool::WorkerPool;
use crate::result::ResultSet;
use crate::view::{MaterializedView, RefreshMode, ViewCore, ViewOptions, ViewRefresh};
use sac_common::{Atom, Symbol};
use sac_core::SemAcConfig;
use sac_datalog::Certificate;
use sac_deps::Tgd;
use sac_query::ConjunctiveQuery;
use sac_storage::{Instance, InstanceStats};
use sac_telemetry::{bus, Event, Histogram, HistogramSnapshot, Phase, Probe, QueryTrace};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, Weak};
use std::time::Instant;

/// Planner knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Configuration for the semantic-acyclicity witness search.
    pub semac: SemAcConfig,
    /// Whether to look for acyclic reformulations of cyclic queries at all.
    pub witness_search: bool,
    /// Skip the (query-exponential) witness search under tgds for queries
    /// with more body atoms than this.  The constraint-free core check is
    /// cheap and always runs.
    pub max_witness_atoms: usize,
    /// Compile every query with [`Strategy::IndexedSearch`], skipping both
    /// Yannakakis rungs.  A differential-testing knob: the fallback is
    /// correct on every query, so a forced-fallback database is an
    /// independent second opinion on any planner decision.
    pub force_indexed: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            semac: SemAcConfig::default(),
            witness_search: true,
            max_witness_atoms: 12,
            force_indexed: false,
        }
    }
}

/// Execution-layer knobs, fixed per [`Database`].
///
/// `parallelism` is the width of the **persistent worker pool** used by
/// [`Database::run_batch`] (queries fan out across workers) and by single
/// runs (match sets, semijoin sweeps and fallback searches fan out across
/// cached relation shards as morsels).  The pool is created lazily at the
/// first `parallelism > 1` run — `parallelism - 1` OS threads, because the
/// submitting thread executes morsels too while it waits — then reused for
/// every subsequent region and joined when the database drops.  `1` (the
/// default) is the plain serial path — no pool is ever created, no thread
/// is ever spawned, no shard decompositions are built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Effective threads per parallel region (pool workers + the
    /// submitting thread); clamped to at least 1.
    pub parallelism: usize,
    /// Minimum table/relation size (in tuples) before a parallel region
    /// fans out, and the target **rows per morsel** once it does: a region
    /// over `n` rows splits into roughly `n / min_parallel_rows` morsels
    /// (clamped to `[2, 4 * parallelism]` for sweeps, `[parallelism,
    /// 4 * parallelism]` for shard decompositions).  Below this bound the
    /// dispatch cost exceeds the scan, so the run stays serial (and no
    /// shard decomposition is built or maintained for the relation).  The
    /// default keeps small-data workloads on the serial fast path; tests
    /// set it to 0 to force the parallel machinery on tiny fixtures.
    pub min_parallel_rows: usize,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            parallelism: 1,
            min_parallel_rows: 512,
        }
    }
}

/// Counters describing a session's workload so far.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Queries executed (batch and single runs alike).
    pub queries_run: usize,
    /// Plans compiled from scratch (plan-cache misses, whether the request
    /// came from [`Database::run`], [`Database::prepare`] or
    /// [`Database::explain`]).
    pub plans_built: usize,
    /// Plan requests served from the cache.
    pub plan_cache_hits: usize,
    /// Runs executed with [`Strategy::YannakakisDirect`].
    pub runs_yannakakis_direct: usize,
    /// Runs executed with [`Strategy::YannakakisWitness`].
    pub runs_yannakakis_witness: usize,
    /// Runs executed with [`Strategy::IndexedSearch`].
    pub runs_indexed_search: usize,
    /// Join-key indexes built over the session's lifetime.
    pub indexes_built: usize,
    /// Relation shard decompositions built over the session's lifetime.
    pub shard_sets_built: usize,
    /// Per-shard parallel work items executed (match-set shards, semijoin
    /// chunks, fallback-search shards).  Zero on the serial path.
    pub shard_tasks: usize,
    /// Worker threads alive in the persistent pool — reported **once**
    /// (the live pool size, `parallelism - 1`), not accumulated per
    /// region, and surviving [`Database::reset_metrics`] like
    /// [`EngineMetrics::indexes_built`] the pool itself does.  Zero until
    /// the first `parallelism > 1` run creates the pool, and always zero
    /// on a serial database.
    pub threads_spawned: usize,
    /// Morsels submitted to the worker pool (batch queries, match-set
    /// shards, semijoin chunks, fallback-search shards).  Zero on the
    /// serial path.  Deterministic for a given workload.
    pub morsels_dispatched: usize,
    /// Morsels a pool thread claimed from another worker's deque.  Purely
    /// scheduler-dependent — two identical runs steal different amounts —
    /// so [`EngineMetrics::counters_only`] clears it alongside the latency
    /// histograms.
    pub morsel_steals: usize,
    /// Total enqueue→claim wait across all morsels, nanoseconds.  Like
    /// `morsel_steals`, scheduler-dependent and cleared by
    /// [`EngineMetrics::counters_only`].
    pub pool_queue_wait_ns: u64,
    /// Materialized views registered over the session's lifetime
    /// ([`Database::materialize`] calls).
    pub views_registered: usize,
    /// View refreshes served by the incremental path (delta pushed through
    /// the cached join tree).
    pub view_refreshes_incremental: usize,
    /// View refreshes served by full recompute (initial materializations,
    /// witness/indexed-rung plans, oversized deltas).
    pub view_refreshes_full: usize,
    /// Appended rows consumed by incremental view refreshes — the total
    /// "Δ" that maintenance was proportional to instead of the database.
    pub view_delta_rows: usize,
    /// Datalog fixpoint evaluations ([`Database::run_datalog`] /
    /// [`crate::PreparedDatalog::run`] calls).
    pub datalog_runs: usize,
    /// Semi-naive iterations across every Datalog run (all strata).
    pub datalog_iterations: usize,
    /// Facts derived on top of base instances across every Datalog run.
    pub datalog_facts_derived: usize,
    /// WAL records appended (durable databases only; see
    /// [`Database::open`]).
    pub wal_appends: usize,
    /// Framed WAL bytes written (headers included).
    pub wal_bytes: usize,
    /// Compacted snapshots written ([`Database::checkpoint`] calls plus
    /// automatic checkpoints).
    pub snapshots_written: usize,
    /// WAL records replayed during this database's recovery (0 on a fresh
    /// or non-durable database).
    pub recovery_replayed_batches: usize,
    /// Latency distribution of query runs (every [`Database::run`] /
    /// [`PreparedQuery::execute`] / batch-worker execution), excluding
    /// planning: `p50()` / `p90()` / `p99()` answer in nanoseconds.
    pub run_latency: HistogramSnapshot,
    /// Latency distribution of plan compilations (plan-cache misses only —
    /// cache hits are not planning work).
    pub prepare_latency: HistogramSnapshot,
    /// Latency distribution of view refreshes that did work (incremental
    /// delta pushes and full recomputes; already-fresh no-ops are skipped).
    pub view_refresh_latency: HistogramSnapshot,
    /// Latency distribution of whole Datalog fixpoint evaluations
    /// (planning, every iteration and certificate bookkeeping included).
    pub datalog_latency: HistogramSnapshot,
}

impl EngineMetrics {
    /// Fraction of plan requests served from the cache: hits over hits plus
    /// compilations (0 before the first request).  `prepare` and `explain`
    /// requests count like `run` ones — each either hits the cache or builds.
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let requests = self.plan_cache_hits + self.plans_built;
        if requests == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / requests as f64
        }
    }

    /// Zeroes every counter, so a fresh measurement window can start without
    /// recreating the session ([`Database::reset_metrics`] does this for a
    /// live database).
    pub fn reset(&mut self) {
        *self = EngineMetrics::default();
    }

    /// This snapshot with the latency histograms and the
    /// scheduler-dependent pool counters (`morsel_steals`,
    /// `pool_queue_wait_ns`) cleared — the plain deterministic counters,
    /// for comparisons where wall-clock and scheduling are expected to
    /// differ (two sessions running the same workload take different
    /// times and steal different morsels but must count the same work).
    pub fn counters_only(&self) -> EngineMetrics {
        EngineMetrics {
            run_latency: HistogramSnapshot::default(),
            prepare_latency: HistogramSnapshot::default(),
            view_refresh_latency: HistogramSnapshot::default(),
            datalog_latency: HistogramSnapshot::default(),
            morsel_steals: 0,
            pool_queue_wait_ns: 0,
            ..self.clone()
        }
    }
}

impl fmt::Display for EngineMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs ({} planned, {} cache hits, {:.0}% hit rate); strategies: {} direct / {} witness / {} fallback; {} indexes + {} shard sets built; {} shard tasks / {} morsels ({} stolen) on a {}-thread pool; {} views ({} incremental / {} full refreshes, {} delta rows)",
            self.queries_run,
            self.plans_built,
            self.plan_cache_hits,
            100.0 * self.plan_cache_hit_rate(),
            self.runs_yannakakis_direct,
            self.runs_yannakakis_witness,
            self.runs_indexed_search,
            self.indexes_built,
            self.shard_sets_built,
            self.shard_tasks,
            self.morsels_dispatched,
            self.morsel_steals,
            self.threads_spawned,
            self.views_registered,
            self.view_refreshes_incremental,
            self.view_refreshes_full,
            self.view_delta_rows,
        )?;
        if self.datalog_runs > 0 {
            write!(
                f,
                "; datalog: {} runs, {} iterations, {} facts derived",
                self.datalog_runs, self.datalog_iterations, self.datalog_facts_derived,
            )?;
        }
        if self.wal_appends > 0 || self.snapshots_written > 0 || self.recovery_replayed_batches > 0
        {
            write!(
                f,
                "; durability: {} WAL appends ({} bytes), {} snapshots, {} batches replayed",
                self.wal_appends,
                self.wal_bytes,
                self.snapshots_written,
                self.recovery_replayed_batches,
            )?;
        }
        if !self.run_latency.is_empty() {
            write!(f, "; run latency: {}", self.run_latency)?;
        }
        if !self.prepare_latency.is_empty() {
            write!(f, "; prepare latency: {}", self.prepare_latency)?;
        }
        if !self.view_refresh_latency.is_empty() {
            write!(f, "; view refresh latency: {}", self.view_refresh_latency)?;
        }
        if !self.datalog_latency.is_empty() {
            write!(f, "; datalog latency: {}", self.datalog_latency)?;
        }
        Ok(())
    }
}

/// Live worker-pool readings [`Database::metrics`] folds into a snapshot
/// (zeroes when no pool exists).
#[derive(Debug, Default, Clone, Copy)]
struct PoolStats {
    threads: usize,
    steals: usize,
    queue_wait_ns: u64,
}

/// Lock-free counters backing [`Database::metrics`].
#[derive(Debug, Default)]
struct MetricCounters {
    queries_run: AtomicUsize,
    plans_built: AtomicUsize,
    plan_cache_hits: AtomicUsize,
    runs_yannakakis_direct: AtomicUsize,
    runs_yannakakis_witness: AtomicUsize,
    runs_indexed_search: AtomicUsize,
    shard_tasks: AtomicUsize,
    morsels_dispatched: AtomicUsize,
    /// Pool-lifetime readings at the last [`Database::reset_metrics`]:
    /// the pool's own counters are cumulative (they outlive metric
    /// windows), so a snapshot reports `live - baseline`.
    steals_baseline: AtomicUsize,
    queue_wait_baseline_ns: AtomicU64,
    views_registered: AtomicUsize,
    view_refreshes_incremental: AtomicUsize,
    view_refreshes_full: AtomicUsize,
    view_delta_rows: AtomicUsize,
    datalog_runs: AtomicUsize,
    datalog_iterations: AtomicUsize,
    datalog_facts_derived: AtomicUsize,
    wal_appends: AtomicUsize,
    wal_bytes: AtomicUsize,
    snapshots_written: AtomicUsize,
    recovery_replayed_batches: AtomicUsize,
}

impl MetricCounters {
    fn record_run(&self, strategy: Strategy) {
        self.queries_run.fetch_add(1, Ordering::Relaxed);
        match strategy {
            Strategy::YannakakisDirect => &self.runs_yannakakis_direct,
            Strategy::YannakakisWitness => &self.runs_yannakakis_witness,
            Strategy::IndexedSearch => &self.runs_indexed_search,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(
        &self,
        indexes_built: usize,
        shard_sets_built: usize,
        pool: PoolStats,
    ) -> EngineMetrics {
        EngineMetrics {
            queries_run: self.queries_run.load(Ordering::Relaxed),
            plans_built: self.plans_built.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            runs_yannakakis_direct: self.runs_yannakakis_direct.load(Ordering::Relaxed),
            runs_yannakakis_witness: self.runs_yannakakis_witness.load(Ordering::Relaxed),
            runs_indexed_search: self.runs_indexed_search.load(Ordering::Relaxed),
            indexes_built,
            shard_sets_built,
            shard_tasks: self.shard_tasks.load(Ordering::Relaxed),
            threads_spawned: pool.threads,
            morsels_dispatched: self.morsels_dispatched.load(Ordering::Relaxed),
            morsel_steals: pool
                .steals
                .saturating_sub(self.steals_baseline.load(Ordering::Relaxed)),
            pool_queue_wait_ns: pool
                .queue_wait_ns
                .saturating_sub(self.queue_wait_baseline_ns.load(Ordering::Relaxed)),
            views_registered: self.views_registered.load(Ordering::Relaxed),
            view_refreshes_incremental: self.view_refreshes_incremental.load(Ordering::Relaxed),
            view_refreshes_full: self.view_refreshes_full.load(Ordering::Relaxed),
            view_delta_rows: self.view_delta_rows.load(Ordering::Relaxed),
            datalog_runs: self.datalog_runs.load(Ordering::Relaxed),
            datalog_iterations: self.datalog_iterations.load(Ordering::Relaxed),
            datalog_facts_derived: self.datalog_facts_derived.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            recovery_replayed_batches: self.recovery_replayed_batches.load(Ordering::Relaxed),
            // Filled in by `Database::metrics` from the live histograms.
            run_latency: HistogramSnapshot::default(),
            prepare_latency: HistogramSnapshot::default(),
            view_refresh_latency: HistogramSnapshot::default(),
            datalog_latency: HistogramSnapshot::default(),
        }
    }

    /// Zeroes the window, re-anchoring the pool baselines at the pool's
    /// current lifetime readings.
    fn reset(&self, pool: PoolStats) {
        self.queries_run.store(0, Ordering::Relaxed);
        self.plans_built.store(0, Ordering::Relaxed);
        self.plan_cache_hits.store(0, Ordering::Relaxed);
        self.runs_yannakakis_direct.store(0, Ordering::Relaxed);
        self.runs_yannakakis_witness.store(0, Ordering::Relaxed);
        self.runs_indexed_search.store(0, Ordering::Relaxed);
        self.shard_tasks.store(0, Ordering::Relaxed);
        self.morsels_dispatched.store(0, Ordering::Relaxed);
        self.steals_baseline.store(pool.steals, Ordering::Relaxed);
        self.queue_wait_baseline_ns
            .store(pool.queue_wait_ns, Ordering::Relaxed);
        self.views_registered.store(0, Ordering::Relaxed);
        self.view_refreshes_incremental.store(0, Ordering::Relaxed);
        self.view_refreshes_full.store(0, Ordering::Relaxed);
        self.view_delta_rows.store(0, Ordering::Relaxed);
        self.datalog_runs.store(0, Ordering::Relaxed);
        self.datalog_iterations.store(0, Ordering::Relaxed);
        self.datalog_facts_derived.store(0, Ordering::Relaxed);
        self.wal_appends.store(0, Ordering::Relaxed);
        self.wal_bytes.store(0, Ordering::Relaxed);
        self.snapshots_written.store(0, Ordering::Relaxed);
        self.recovery_replayed_batches.store(0, Ordering::Relaxed);
    }
}

/// The session's lock-free latency histograms (see
/// [`sac_telemetry::Histogram`]): recorded unconditionally — a record is
/// three relaxed atomic adds — and snapshotted into [`EngineMetrics`].
#[derive(Debug, Default)]
struct LatencyRecorders {
    run: Histogram,
    prepare: Histogram,
    view_refresh: Histogram,
    datalog: Histogram,
}

/// Everything a traced run carries from its entry point into
/// [`Database::run_plan_core`]: the already-started probe, the plan-cache
/// outcome, and the query's display form for the trace.
struct TraceStart {
    probe: Probe,
    plan_cache_hit: bool,
    query: String,
}

/// Plans are keyed by the query's semantic identity (head + body), ignoring
/// its display name.
type PlanKey = (Vec<Symbol>, Vec<Atom>);

/// Anything [`Database::query`] and [`Database::prepare`] accept as a query:
/// an owned or borrowed [`ConjunctiveQuery`], or query text in the
/// workspace's Datalog-style syntax.
pub trait QuerySource {
    /// Converts the source into a validated query.
    fn into_query(self) -> SacResult<ConjunctiveQuery>;
}

impl QuerySource for ConjunctiveQuery {
    fn into_query(self) -> SacResult<ConjunctiveQuery> {
        Ok(self)
    }
}

impl QuerySource for &ConjunctiveQuery {
    fn into_query(self) -> SacResult<ConjunctiveQuery> {
        Ok(self.clone())
    }
}

impl QuerySource for &str {
    fn into_query(self) -> SacResult<ConjunctiveQuery> {
        self.parse::<ConjunctiveQuery>().map_err(SacError::from)
    }
}

impl QuerySource for &String {
    fn into_query(self) -> SacResult<ConjunctiveQuery> {
        self.as_str().into_query()
    }
}

impl QuerySource for String {
    fn into_query(self) -> SacResult<ConjunctiveQuery> {
        self.as_str().into_query()
    }
}

/// A concurrent query-serving session over one database.
///
/// See the [module docs](self) for the locking design.  The constraint
/// contract is unchanged from the paper: when tgds are set
/// ([`Database::with_tgds`] / [`Database::set_tgds`]), cyclic queries may be
/// answered through a Σ-equivalent acyclic witness, which is only valid on
/// databases satisfying the constraints — the promise of the paper's
/// `SemAcEval` problem; the engine does not verify it.  Without tgds every
/// strategy is unconditionally equivalent to naive evaluation.
///
/// ```
/// use sac_engine::Database;
///
/// let db = Database::from_facts("E(a, b). E(b, c).").unwrap();
/// let results = db.query("q(X) :- E(X, Y), E(Y, Z).").unwrap();
/// assert_eq!(results.len(), 1);
/// assert_eq!(results.rows()[0]["X"], sac_common::Term::constant("a"));
/// ```
#[derive(Debug)]
pub struct Database {
    instance: RwLock<Instance>,
    tgds: RwLock<Vec<Tgd>>,
    config: EngineConfig,
    exec: ExecOptions,
    plans: RwLock<HashMap<PlanKey, Arc<Plan>>>,
    indexes: Mutex<IndexCache>,
    /// Registered materialized views, held weakly: dropping every
    /// [`MaterializedView`] handle unregisters its view (dead entries are
    /// pruned on the next registration or growth).
    views: RwLock<Vec<Weak<ViewCore>>>,
    /// Strong pins for views recovered from disk: the weak registry alone
    /// would unregister them the moment the recovery-time handle dropped.
    /// [`Database::durable_views`] hands out fresh handles over these.
    pinned_views: Mutex<Vec<Arc<ViewCore>>>,
    /// The persistence engine; `None` on non-durable databases (including
    /// every database the legacy [`crate::Engine`] shim creates).
    durability: Option<DurabilityCore>,
    /// What recovery found, for databases created by [`Database::open`].
    recovery: Option<RecoveryReport>,
    /// The persistent worker pool, created at the first `parallelism > 1`
    /// run and joined when the database drops (the pool's `Drop` flags
    /// shutdown and joins its threads).  Never populated on a serial
    /// database.  Leaf-level locking: see the module docs.
    pool: OnceLock<Arc<WorkerPool>>,
    metrics: MetricCounters,
    latency: LatencyRecorders,
}

impl Default for Database {
    fn default() -> Database {
        Database::new()
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::from_instance(Instance::new())
    }

    /// Wraps an existing [`Instance`].
    pub fn from_instance(instance: Instance) -> Database {
        let indexes = Mutex::new(IndexCache::new(&instance));
        Database {
            instance: RwLock::new(instance),
            tgds: RwLock::new(Vec::new()),
            config: EngineConfig::default(),
            exec: ExecOptions::default(),
            plans: RwLock::new(HashMap::new()),
            indexes,
            views: RwLock::new(Vec::new()),
            pinned_views: Mutex::new(Vec::new()),
            durability: None,
            recovery: None,
            pool: OnceLock::new(),
            metrics: MetricCounters::default(),
            latency: LatencyRecorders::default(),
        }
    }

    /// The worker pool for `parallelism > 1` runs, creating it on first
    /// use; `None` exactly when the database is serial, so parallelism-1
    /// sessions never spawn a thread.
    pub(crate) fn pool_handle(&self) -> Option<Arc<WorkerPool>> {
        if self.exec.parallelism <= 1 {
            return None;
        }
        Some(Arc::clone(self.pool.get_or_init(|| {
            Arc::new(WorkerPool::new(self.exec.parallelism))
        })))
    }

    /// Live pool readings for metric snapshots (zeroes before the pool
    /// exists and on serial databases).
    fn pool_stats(&self) -> PoolStats {
        self.pool
            .get()
            .map_or(PoolStats::default(), |pool| PoolStats {
                threads: pool.size(),
                steals: pool.steals(),
                queue_wait_ns: pool.queue_wait_ns(),
            })
    }

    /// Parses a list of ground facts into a fresh database.
    pub fn from_facts(text: &str) -> SacResult<Database> {
        let instance: Instance = text.parse()?;
        Ok(Database::from_instance(instance))
    }

    /// Sets the constraint set the planner may reformulate under
    /// (builder-style).  See the type-level docs for the satisfaction
    /// contract.
    pub fn with_tgds(self, tgds: Vec<Tgd>) -> Database {
        self.set_tgds(tgds);
        self
    }

    /// Overrides the planner configuration (builder-style).
    pub fn with_config(mut self, config: EngineConfig) -> Database {
        self.config = config;
        self.plans
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self
    }

    /// Sets the worker-pool width for batch fan-out and per-shard sweeps
    /// (builder-style).  `1` keeps the plain serial path; values are clamped
    /// to at least 1.  See [`ExecOptions`].
    pub fn with_parallelism(mut self, parallelism: usize) -> Database {
        self.exec.parallelism = parallelism.max(1);
        self
    }

    /// Overrides every execution-layer option (builder-style).
    pub fn with_exec_options(mut self, options: ExecOptions) -> Database {
        self.exec = ExecOptions {
            parallelism: options.parallelism.max(1),
            min_parallel_rows: options.min_parallel_rows,
        };
        self
    }

    /// The execution-layer options.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec
    }

    /// The configured worker-pool width (1 = serial).
    pub fn parallelism(&self) -> usize {
        self.exec.parallelism
    }

    /// Replaces the constraint set, invalidating every cached plan (their
    /// witnesses were found under the old constraints).  Prepared queries
    /// keep the plan they were compiled with — re-prepare after changing
    /// constraints.
    pub fn set_tgds(&self, tgds: Vec<Tgd>) {
        // The tgds write guard is held across the clear, pairing with
        // `plan_arc` (which publishes under the tgds read guard): no plan
        // compiled under the old constraints can slip into the cache after
        // this clear.
        {
            let mut guard = self.write_tgds();
            *guard = tgds.clone();
            self.write_plans().clear();
        }
        if let Some(core) = &self.durability {
            // Checkpoints read this cached structural copy instead of the
            // tgds lock (which sits *before* the instance guard in the lock
            // order; see `crate::durability`).
            *core.lock_tgds_repr() = tgds.iter().map(durability::tgd_repr).collect();
        }
    }

    /// The constraints the planner reformulates under.
    pub fn tgds(&self) -> Vec<Tgd> {
        self.read_tgds().clone()
    }

    /// The planner configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Consumes the database, returning the instance.
    pub fn into_instance(self) -> Instance {
        self.instance
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Runs `f` over the current instance under the read lock.  Keep `f`
    /// short: inserts wait while it runs.
    pub fn read<R>(&self, f: impl FnOnce(&Instance) -> R) -> R {
        f(&self.read_instance())
    }

    /// A point-in-time copy of the stored instance.
    pub fn snapshot(&self) -> Instance {
        self.read_instance().clone()
    }

    /// Total number of stored atoms.
    pub fn len(&self) -> usize {
        self.read_instance().len()
    }

    /// Whether no atoms are stored.
    pub fn is_empty(&self) -> bool {
        self.read_instance().is_empty()
    }

    /// Estimated heap footprint of the stored instance, dictionary
    /// included (see [`Instance::heap_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        self.read_instance().heap_bytes()
    }

    /// Whether `atom` is stored.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.read_instance().contains(atom)
    }

    /// The instance's mutation epoch (see [`Instance::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.read_instance().epoch()
    }

    /// Summary statistics of the stored instance.
    pub fn stats(&self) -> InstanceStats {
        self.read_instance().stats()
    }

    /// Inserts an atom.  Returns whether it was new; a genuinely new atom
    /// **extends** the touched predicate's cached indexes and shards in
    /// place (relations are append-only, so incremental maintenance is a
    /// handful of hash inserts — nothing is invalidated or rebuilt).  Cached
    /// plans survive — a plan's strategy choice never depends on the data,
    /// only its fallback atom order does, and a stale order is a performance
    /// matter, not a correctness one.
    ///
    /// On a durable database ([`Database::open`]) a new atom is appended to
    /// the write-ahead log before the instance write guard is released, so
    /// durability is atomic with visibility; see [`crate::durability`].
    pub fn insert(&self, atom: Atom) -> SacResult<bool> {
        if self.durability.is_none() {
            return Ok(self.insert_common(atom)?);
        }
        let mut instance = self.write_instance();
        let cursor = instance.delta_cursor();
        let added = instance.insert(atom)?;
        if added {
            self.lock_indexes().note_growth(&instance);
            self.refresh_auto_views(&instance);
            self.persist_growth(&instance, &cursor)?;
        }
        Ok(added)
    }

    /// [`Database::insert`] with the workspace-internal error type, for the
    /// legacy [`crate::Engine`] shim.
    pub(crate) fn insert_common(&self, atom: Atom) -> sac_common::Result<bool> {
        let mut instance = self.write_instance();
        let added = instance.insert(atom)?;
        if added {
            // Extend the caches under the instance write guard, so no
            // concurrent run can snapshot between the data change and the
            // maintenance.
            self.lock_indexes().note_growth(&instance);
            self.refresh_auto_views(&instance);
        }
        Ok(added)
    }

    /// Bulk-inserts every atom of `other`; returns how many were new.
    ///
    /// The whole batch is applied under one instance write guard, so
    /// concurrent queries observe either the pre-load or the post-load
    /// state, never a half-loaded prefix, and the incremental cache
    /// maintenance happens once for the whole batch instead of once per
    /// atom.  On error (e.g. an arity clash part-way through) the
    /// already-inserted prefix **remains** — there is no rollback; the index
    /// cache is resynchronized before the error is returned.
    ///
    /// On a durable database the whole batch lands as **one** WAL record,
    /// appended under the same write guard — so one fsync (and one replay
    /// step) covers the entire load.
    pub fn extend_from(&self, other: &Instance) -> SacResult<usize> {
        if self.durability.is_none() {
            return Ok(self.extend_from_common(other)?);
        }
        let mut instance = self.write_instance();
        let cursor = instance.delta_cursor();
        let mut added = 0;
        for atom in other.atoms() {
            match instance.insert(atom) {
                Ok(true) => added += 1,
                Ok(false) => {}
                Err(e) => {
                    // Partial batch: catch the caches up AND persist the
                    // applied prefix — it is visible, so it must survive a
                    // crash like any other visible state.
                    self.lock_indexes().note_growth(&instance);
                    self.refresh_auto_views(&instance);
                    self.persist_growth(&instance, &cursor)?;
                    return Err(e.into());
                }
            }
        }
        if added > 0 {
            self.lock_indexes().note_growth(&instance);
            self.refresh_auto_views(&instance);
            self.persist_growth(&instance, &cursor)?;
        }
        Ok(added)
    }

    /// [`Database::extend_from`] with the workspace-internal error type, for
    /// the legacy [`crate::Engine`] shim.
    pub(crate) fn extend_from_common(&self, other: &Instance) -> sac_common::Result<usize> {
        let mut instance = self.write_instance();
        let mut added = 0;
        for atom in other.atoms() {
            match instance.insert(atom) {
                Ok(true) => added += 1,
                Ok(false) => {}
                Err(e) => {
                    // Partial batch: catch the caches (and auto views) up
                    // with whatever was applied before surfacing the error.
                    self.lock_indexes().note_growth(&instance);
                    self.refresh_auto_views(&instance);
                    return Err(e);
                }
            }
        }
        if added > 0 {
            self.lock_indexes().note_growth(&instance);
            self.refresh_auto_views(&instance);
        }
        Ok(added)
    }

    /// Parses `text` as ground facts and inserts them all; returns how many
    /// were new.
    pub fn load_facts(&self, text: &str) -> SacResult<usize> {
        let parsed: Instance = text.parse()?;
        self.extend_from(&parsed)
    }

    /// Compiles (or fetches from the plan cache) the plan for `query`.
    pub(crate) fn plan_arc(&self, query: &ConjunctiveQuery) -> Arc<Plan> {
        self.plan_arc_cached(query).0
    }

    /// [`Database::plan_arc`] plus whether the plan came from the cache.
    /// Cache misses time the compilation into the prepare-latency histogram
    /// and emit a [`Event::PlanBuilt`].
    fn plan_arc_cached(&self, query: &ConjunctiveQuery) -> (Arc<Plan>, bool) {
        let key: PlanKey = (query.head.clone(), query.body.clone());
        if let Some(plan) = self.read_plans().get(&key) {
            self.metrics.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(plan), true);
        }
        // Plan outside the plan-cache lock: the witness search can be
        // expensive and must not block concurrent cache hits.  Two threads
        // racing on the same cold query both plan; the first publication
        // wins and both count as builds (honest accounting).
        //
        // The tgds read guard is held across the publication below: this
        // orders every publication of a plan compiled under the old
        // constraints strictly before `set_tgds` can swap them and clear the
        // cache — a stale witness plan can never be re-published after the
        // invalidation.
        let tgds = self.read_tgds();
        let planning_started = Instant::now();
        let plan = {
            let instance = self.read_instance();
            Arc::new(plan_query(query, &tgds, &instance, &self.config))
        };
        let planning_elapsed = planning_started.elapsed();
        self.latency.prepare.record(planning_elapsed);
        bus::emit(|| Event::PlanBuilt {
            query: query.to_string(),
            strategy: plan.strategy().as_str().to_owned(),
            micros: u64::try_from(planning_elapsed.as_micros()).unwrap_or(u64::MAX),
        });
        self.metrics.plans_built.fetch_add(1, Ordering::Relaxed);
        let published = Arc::clone(
            self.write_plans()
                .entry(key)
                .or_insert_with(|| Arc::clone(&plan)),
        );
        drop(tgds);
        (published, false)
    }

    /// The planner's decision for `query`, for inspection.
    pub fn explain(&self, query: &ConjunctiveQuery) -> Explain {
        self.plan_arc(query).explain().clone()
    }

    /// Prepares `source` for repeated execution: parse (if text), plan (or
    /// hit the plan cache), and return a cheap, cloneable handle bound to
    /// this database.
    pub fn prepare<Q: QuerySource>(&self, source: Q) -> SacResult<PreparedQuery<'_>> {
        let query = source.into_query()?;
        let plan = self.plan_arc(&query);
        Ok(PreparedQuery {
            database: self,
            query: Arc::new(query),
            plan,
        })
    }

    /// One-call text-to-results: parse (or take) a query, plan or reuse the
    /// cached plan, execute, and return a typed [`ResultSet`].
    pub fn query<Q: QuerySource>(&self, source: Q) -> SacResult<ResultSet> {
        let query = source.into_query()?;
        Ok(self.run(&query))
    }

    /// The Boolean reading of [`Database::query`].
    pub fn query_boolean<Q: QuerySource>(&self, source: Q) -> SacResult<bool> {
        Ok(self.query(source)?.is_true())
    }

    /// Evaluates an already-validated query.
    pub fn run(&self, query: &ConjunctiveQuery) -> ResultSet {
        let plan = self.plan_arc(query);
        self.run_plan(&plan)
    }

    /// [`Database::run`] with a [`QueryTrace`] alongside the results: the
    /// rung chosen, plan- and index-cache outcomes, per-phase wall times
    /// (which sum to the recorded total by construction — see
    /// [`sac_telemetry::Probe`]), per-join-tree-node rows in/out, and the
    /// run's parallel fan-out.  Tracing adds a handful of `Instant` reads
    /// to this run only; untraced runs are unaffected.
    pub fn run_traced(&self, query: &ConjunctiveQuery) -> (ResultSet, QueryTrace) {
        let mut probe = Probe::start();
        let (plan, plan_cache_hit) = self.plan_arc_cached(query);
        probe.mark(Phase::Plan);
        let start = TraceStart {
            probe,
            plan_cache_hit,
            query: query.to_string(),
        };
        let (result, trace) = self.run_plan_core(&plan, self.exec.parallelism, Some(start));
        (result, trace.expect("traced runs always produce a trace"))
    }

    /// Evaluates a Boolean query (or the Boolean shadow of a non-Boolean
    /// one): whether the answer set is non-empty.
    pub fn run_boolean(&self, query: &ConjunctiveQuery) -> bool {
        self.run(query).is_true()
    }

    /// Evaluates a batch of queries, amortizing planning and index building
    /// across the whole workload.  With [`Database::with_parallelism`] above
    /// 1, the queries fan out over the persistent worker pool, one morsel
    /// per query — results still come back in input order, identical to the
    /// serial batch.
    ///
    /// The parallelism budget is spent once: when the batch itself fans
    /// out, each morsel executes its query serially (per-shard parallelism
    /// applies to single [`Database::run`] / [`PreparedQuery::execute`]
    /// calls), so batch morsels never submit nested regions.
    pub fn run_batch(&self, queries: &[ConjunctiveQuery]) -> Vec<ResultSet> {
        let Some(pool) = self.pool_handle().filter(|_| queries.len() > 1) else {
            return queries.iter().map(|q| self.run(q)).collect();
        };
        // Resolve every plan serially first: duplicate queries in the batch
        // would otherwise race the cold plan cache and re-run the expensive
        // witness search once per worker instead of once per shape.
        let plans: Vec<Arc<Plan>> = queries.iter().map(|q| self.plan_arc(q)).collect();
        let results = pool.run(&plans, |plan| self.run_plan_at(plan, 1));
        self.metrics
            .morsels_dispatched
            .fetch_add(plans.len(), Ordering::Relaxed);
        results
    }

    /// Evaluates a stratified Datalog program to fixpoint over the current
    /// facts with default [`DatalogOptions`] (certificate recording on,
    /// constraint-free rule planning).
    ///
    /// The evaluation is semi-naive on a point-in-time snapshot: each
    /// rule's positive body is compiled through the ordinary strategy
    /// lattice, and iterations past the first evaluate only against the
    /// rows the previous iteration appended (see [`crate::datalog`]).  The
    /// database's own facts are untouched — the saturated instance comes
    /// back in [`DatalogRun::fixpoint`].
    ///
    /// ```
    /// use sac_engine::Database;
    ///
    /// let db = Database::from_facts("E(a, b). E(b, c).").unwrap();
    /// let run = db
    ///     .run_datalog("T(X, Y) :- E(X, Y).\nT(X, Z) :- E(X, Y), T(Y, Z).")
    ///     .unwrap();
    /// assert_eq!(run.derived_for("T").len(), 3);
    /// // Every answer ships with a replayable, engine-independent proof.
    /// let cert = run.certificate.as_ref().unwrap();
    /// let program = "T(X, Y) :- E(X, Y).\nT(X, Z) :- E(X, Y), T(Y, Z)."
    ///     .parse()
    ///     .unwrap();
    /// db.read(|base| sac_datalog::check::check_certificate(&program, base, cert))
    ///     .unwrap();
    /// ```
    pub fn run_datalog<P: DatalogSource>(&self, source: P) -> SacResult<DatalogRun> {
        self.run_datalog_with(source, DatalogOptions::default())
    }

    /// [`Database::run_datalog`] with explicit options.
    pub fn run_datalog_with<P: DatalogSource>(
        &self,
        source: P,
        options: DatalogOptions,
    ) -> SacResult<DatalogRun> {
        let program = source.into_program()?;
        self.run_datalog_program(&program, options)
    }

    /// Parses and stratifies a program once for repeated evaluation.
    pub fn prepare_datalog<P: DatalogSource>(&self, source: P) -> SacResult<PreparedDatalog<'_>> {
        Ok(PreparedDatalog {
            db: self,
            program: Arc::new(source.into_program()?),
            options: DatalogOptions::default(),
        })
    }

    /// The shared evaluation entry: snapshots the instance, runs the
    /// semi-naive loop, and folds the run into metrics, the latency
    /// histogram and the event bus.
    pub(crate) fn run_datalog_program(
        &self,
        program: &sac_datalog::DatalogProgram,
        options: DatalogOptions,
    ) -> SacResult<DatalogRun> {
        let started = Instant::now();
        let work = self.snapshot();
        let tgds = if options.use_constraints {
            self.tgds()
        } else {
            Vec::new()
        };
        let run = datalog::evaluate(
            program,
            work,
            &tgds,
            &self.config,
            self.exec,
            self.pool_handle(),
            options,
        )?;
        let elapsed = started.elapsed();
        self.latency.datalog.record(elapsed);
        self.metrics.datalog_runs.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .datalog_iterations
            .fetch_add(run.stats.iterations, Ordering::Relaxed);
        self.metrics
            .datalog_facts_derived
            .fetch_add(run.stats.facts_derived, Ordering::Relaxed);
        bus::emit(|| Event::DatalogCompleted {
            rules: run.stats.rules,
            strata: run.stats.strata,
            iterations: run.stats.iterations,
            facts_derived: run.stats.facts_derived,
            certificate_steps: run.certificate.as_ref().map_or(0, Certificate::len),
            micros: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        });
        Ok(run)
    }

    fn run_plan(&self, plan: &Plan) -> ResultSet {
        self.run_plan_at(plan, self.exec.parallelism)
    }

    fn run_plan_at(&self, plan: &Plan, parallelism: usize) -> ResultSet {
        self.run_plan_core(plan, parallelism, None).0
    }

    /// The single execution funnel.  Every run records its wall time into
    /// the run-latency histogram and announces itself on the event bus;
    /// with `trace` set, the attached probe additionally collects phase
    /// boundaries, cache outcomes and per-node rows into a [`QueryTrace`].
    fn run_plan_core(
        &self,
        plan: &Plan,
        parallelism: usize,
        trace: Option<TraceStart>,
    ) -> (ResultSet, Option<QueryTrace>) {
        self.metrics.record_run(plan.strategy());
        let run_started = Instant::now();
        let instance = self.read_instance();
        // Short locked section: build/fetch exactly the plan's indexes and —
        // for a parallel run — the shard decompositions of the relations it
        // scans…
        let required = exec::required_indexes(plan);
        let requested = if trace.is_some() {
            required.len()
                + if parallelism > 1 {
                    exec::required_shards(plan).len()
                } else {
                    0
                }
        } else {
            0
        };
        let (indexes, shards, cache_misses) = {
            let mut cache = self.lock_indexes();
            let built_before = cache.built() + cache.shard_sets_built();
            let indexes = cache.snapshot(&instance, &required);
            let shards = if parallelism > 1 {
                cache.snapshot_shards(
                    &instance,
                    &exec::required_shards(plan),
                    parallelism,
                    self.exec.min_parallel_rows,
                )
            } else {
                PlanShards::new()
            };
            let misses = cache.built() + cache.shard_sets_built() - built_before;
            (indexes, shards, misses)
        };
        // …then execute lock-free (the instance read guard is still held, so
        // the snapshots stay consistent with the data for the whole run).
        let pool = if parallelism > 1 {
            self.pool_handle()
        } else {
            None
        };
        let mut ctx =
            exec::ExecContext::new(indexes, shards, parallelism, self.exec.min_parallel_rows)
                .with_pool(pool);
        let (plan_cache_hit, query_text) = match trace {
            Some(TraceStart {
                mut probe,
                plan_cache_hit,
                query,
            }) => {
                probe.mark(Phase::Snapshot);
                ctx = ctx.with_probe(probe);
                (plan_cache_hit, query)
            }
            None => (false, String::new()),
        };
        let tuples = exec::execute_with(plan, &instance, &ctx);
        self.note_exec_work(&ctx);
        let result = ResultSet::from_tuples(Arc::clone(plan.columns()), tuples);
        let elapsed = run_started.elapsed();
        self.latency.run.record(elapsed);
        bus::emit(|| Event::RunCompleted {
            strategy: plan.strategy().as_str().to_owned(),
            answers: result.len(),
            micros: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        });
        let trace = ctx.take_probe().map(|mut probe| {
            // Charge result materialization to the decode phase, keeping the
            // boundary chain contiguous through to the final total.
            probe.mark(Phase::Decode);
            let (phases, node_rows, total_ns) = probe.finish();
            QueryTrace {
                query: query_text,
                strategy: plan.strategy().as_str().to_owned(),
                plan_cache_hit,
                index_cache_hits: requested.saturating_sub(cache_misses),
                index_cache_misses: cache_misses,
                phases,
                total_ns,
                node_rows,
                shard_tasks: ctx.shard_tasks(),
                threads_spawned: ctx.threads_spawned(),
                answers: result.len(),
                refresh_mode: None,
                delta_rows: None,
            }
        });
        (result, trace)
    }

    /// Registers `source` as a [`MaterializedView`] with default
    /// [`ViewOptions`]: the answer set is computed now, stored, and then
    /// **maintained** under every append — incrementally (delta push
    /// through the cached join tree) on the [`Strategy::YannakakisDirect`]
    /// rung, by recompute otherwise.  See [`crate::view`] for the
    /// maintenance model.
    ///
    /// Cost shape to be aware of: with the default `auto_refresh`, a view
    /// whose plan is **not** on the direct rung pays a full recompute on
    /// every mutation call, under the instance write guard.  For such
    /// views — or for per-fact `insert` loops generally — prefer batched
    /// appends ([`Database::load_facts`] / [`Database::extend_from`]
    /// refresh once per batch) or [`Database::materialize_with`] with
    /// `auto_refresh: false` and one explicit refresh per batch.
    pub fn materialize<Q: QuerySource>(&self, source: Q) -> SacResult<MaterializedView<'_>> {
        self.materialize_with(source, ViewOptions::default())
    }

    /// [`Database::materialize`] with explicit maintenance options — e.g.
    /// `auto_refresh: false` for batch ingestion, where one explicit
    /// [`MaterializedView::refresh`] per append batch replaces per-insert
    /// maintenance.
    pub fn materialize_with<Q: QuerySource>(
        &self,
        source: Q,
        options: ViewOptions,
    ) -> SacResult<MaterializedView<'_>> {
        let query = source.into_query()?;
        let plan = self.plan_arc(&query);
        let core = Arc::new(ViewCore::new(query, plan, options));
        {
            // Initial materialization AND registration under one instance
            // read guard: an append between the two would run its
            // auto-refresh pass without seeing the view, leaving an
            // auto_refresh view silently stale at birth.
            let instance = self.read_instance();
            self.refresh_core(&core, &instance);
            let mut views = self.write_views();
            views.retain(|weak| weak.strong_count() > 0);
            views.push(Arc::downgrade(&core));
        }
        self.metrics
            .views_registered
            .fetch_add(1, Ordering::Relaxed);
        bus::emit(|| Event::ViewRegistered {
            query: core.query.to_string(),
            strategy: core.plan.strategy().as_str().to_owned(),
        });
        if self.durability.is_some() {
            // View definitions live in snapshots, not the fact WAL; a
            // checkpoint here makes the registration itself durable.
            self.checkpoint()?;
        }
        Ok(MaterializedView::new(self, core))
    }

    /// Number of currently registered (live) materialized views.
    pub fn registered_views(&self) -> usize {
        self.read_views()
            .iter()
            .filter(|weak| weak.strong_count() > 0)
            .count()
    }

    /// [`MaterializedView::refresh`]: catch one view up with the current
    /// data.
    pub(crate) fn view_refresh(&self, core: &ViewCore) -> ViewRefresh {
        let instance = self.read_instance();
        self.refresh_core(core, &instance)
    }

    /// [`MaterializedView::refresh_traced`]: the refresh report plus a
    /// [`QueryTrace`] over the maintenance work (phases of the delta push
    /// or recompute, refresh mode, delta rows).
    pub(crate) fn view_refresh_traced(&self, core: &ViewCore) -> (ViewRefresh, QueryTrace) {
        let instance = self.read_instance();
        let (refresh, trace) = self.refresh_core_traced(core, &instance, Some(Probe::start()));
        (
            refresh,
            trace.expect("traced refreshes always produce a trace"),
        )
    }

    /// [`MaterializedView::is_fresh`]: whether no relation the view reads
    /// has grown past the view's cursor.
    pub(crate) fn view_is_fresh(&self, core: &ViewCore) -> bool {
        let instance = self.read_instance();
        let state = core.lock_state();
        let Some(cursor) = &state.cursor else {
            return false;
        };
        if cursor.epoch() == instance.epoch() {
            return true;
        }
        instance
            .delta_since(cursor)
            .iter()
            .all(|delta| !core.relevant.contains(&delta.predicate))
    }

    /// Catches every live auto-refresh view up with `instance`.  Called by
    /// the mutation paths under the instance write guard, so a reader that
    /// can observe the new facts can also observe the refreshed views.
    fn refresh_auto_views(&self, instance: &Instance) {
        // Read lock only on the hot path; the registry is rewritten (to
        // prune) only when a dead weak was actually observed.
        let (cores, saw_dead) = {
            let views = self.read_views();
            if views.is_empty() {
                return; // the common no-views case: one read lock, no scan
            }
            let mut cores: Vec<Arc<ViewCore>> = Vec::with_capacity(views.len());
            let mut saw_dead = false;
            for weak in views.iter() {
                match weak.upgrade() {
                    Some(core) => cores.push(core),
                    None => saw_dead = true,
                }
            }
            (cores, saw_dead)
        };
        if saw_dead {
            self.write_views().retain(|weak| weak.strong_count() > 0);
        }
        for core in cores {
            if core.options.auto_refresh {
                self.refresh_core(&core, instance);
            }
        }
    }

    /// The maintenance workhorse: brings `core` up to date with `instance`
    /// (which the caller holds a guard over) and records what that took.
    ///
    /// Refresh decision, in order: not grown (or grown only off the view's
    /// schema) → nothing; an already-true Boolean view → nothing (CQs are
    /// monotone, true stays true); a direct-rung plan with a delta under
    /// [`ViewOptions::max_incremental_fraction`] → push the delta through
    /// the join tree; otherwise → recompute.
    fn refresh_core(&self, core: &ViewCore, instance: &Instance) -> ViewRefresh {
        self.refresh_core_traced(core, instance, None).0
    }

    /// [`Database::refresh_core`] with an optional probe: refreshes that do
    /// work (delta push or recompute) are timed into the view-refresh
    /// histogram and announced on the event bus; with a probe attached the
    /// maintenance run additionally yields a [`QueryTrace`] carrying the
    /// refresh mode and delta rows.
    fn refresh_core_traced(
        &self,
        core: &ViewCore,
        instance: &Instance,
        probe: Option<Probe>,
    ) -> (ViewRefresh, Option<QueryTrace>) {
        // Assembles the trace for the no-work shortcuts below: no phases
        // beyond whatever the probe accumulated, current answer count.
        let fresh_trace = |probe: Option<Probe>, refresh: &ViewRefresh, answers: usize| {
            probe.map(|p| {
                let (phases, node_rows, total_ns) = p.finish();
                self.view_query_trace(core, refresh, phases, node_rows, total_ns, 0, 0, answers)
            })
        };
        let mut state = core.lock_state();
        if let Some(cursor) = &state.cursor {
            if cursor.epoch() == instance.epoch() {
                let answers = state.answers.len();
                drop(state);
                let trace = fresh_trace(probe, &ViewRefresh::FRESH, answers);
                return (ViewRefresh::FRESH, trace);
            }
        }
        let initialized = state.cursor.is_some();
        let mut watermarks: HashMap<Symbol, usize> = HashMap::new();
        let mut delta_rows = 0usize;
        if let Some(cursor) = &state.cursor {
            for delta in instance.delta_since(cursor) {
                if core.relevant.contains(&delta.predicate) {
                    delta_rows += delta.len();
                    watermarks.insert(delta.predicate, delta.from_row);
                }
            }
        }
        if initialized && watermarks.is_empty() {
            // Growth only on predicates the view never reads.
            state.cursor = Some(instance.delta_cursor());
            let answers = state.answers.len();
            drop(state);
            let trace = fresh_trace(probe, &ViewRefresh::FRESH, answers);
            return (ViewRefresh::FRESH, trace);
        }
        if initialized && core.plan.columns().is_empty() && !state.answers.is_empty() {
            // A satisfied Boolean view can never become unsatisfied under
            // appends: skip the evaluation entirely.
            state.cursor = Some(instance.delta_cursor());
            let refresh = ViewRefresh {
                mode: RefreshMode::Fresh,
                delta_rows,
                rows_added: 0,
            };
            let answers = state.answers.len();
            drop(state);
            let trace = fresh_trace(probe, &refresh, answers);
            return (refresh, trace);
        }

        let refresh_started = Instant::now();
        let relevant_rows: usize = core
            .relevant
            .iter()
            .filter_map(|p| instance.relation(*p))
            .map(|rel| rel.len())
            .sum();
        let incremental = initialized
            && core.plan.strategy() == Strategy::YannakakisDirect
            && (delta_rows as f64) <= core.options.max_incremental_fraction * relevant_rows as f64;
        let before = state.answers.len();
        let parallelism = self.exec.parallelism;
        let attach = |mut ctx: exec::ExecContext, probe: Option<Probe>| match probe {
            Some(mut p) => {
                p.mark(Phase::Snapshot);
                ctx = ctx.with_probe(p);
                ctx
            }
            None => ctx,
        };
        let (mode, mut ctx) = if incremental {
            let indexes = self
                .lock_indexes()
                .snapshot(instance, &core.incremental_indexes);
            let ctx = attach(
                exec::ExecContext::new(
                    indexes,
                    PlanShards::new(),
                    parallelism,
                    self.exec.min_parallel_rows,
                )
                .with_pool(self.pool_handle()),
                probe,
            );
            let delta = exec::execute_delta(&core.plan, instance, &watermarks, &ctx)
                .expect("the direct rung compiles to a Yannakakis plan");
            Arc::make_mut(&mut state.answers).extend(delta);
            self.note_exec_work(&ctx);
            self.metrics
                .view_refreshes_incremental
                .fetch_add(1, Ordering::Relaxed);
            self.metrics
                .view_delta_rows
                .fetch_add(delta_rows, Ordering::Relaxed);
            (RefreshMode::Incremental, ctx)
        } else {
            let (indexes, shards) = {
                let mut cache = self.lock_indexes();
                let indexes = cache.snapshot(instance, &exec::required_indexes(&core.plan));
                let shards = if parallelism > 1 {
                    cache.snapshot_shards(
                        instance,
                        &exec::required_shards(&core.plan),
                        parallelism,
                        self.exec.min_parallel_rows,
                    )
                } else {
                    PlanShards::new()
                };
                (indexes, shards)
            };
            let ctx = attach(
                exec::ExecContext::new(indexes, shards, parallelism, self.exec.min_parallel_rows)
                    .with_pool(self.pool_handle()),
                probe,
            );
            state.answers = Arc::new(exec::execute_with(&core.plan, instance, &ctx));
            self.note_exec_work(&ctx);
            self.metrics
                .view_refreshes_full
                .fetch_add(1, Ordering::Relaxed);
            (RefreshMode::Full, ctx)
        };
        state.cursor = Some(instance.delta_cursor());
        let refresh = ViewRefresh {
            mode,
            delta_rows,
            // Appends are monotone so this never truncates; saturate anyway
            // rather than panic if an oracle recompute ever shrinks.
            rows_added: state.answers.len().saturating_sub(before),
        };
        let answers = state.answers.len();
        drop(state);
        let elapsed = refresh_started.elapsed();
        self.latency.view_refresh.record(elapsed);
        bus::emit(|| Event::ViewRefreshed {
            mode: refresh.mode.to_string(),
            delta_rows: refresh.delta_rows,
            rows_added: refresh.rows_added,
            micros: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        });
        let trace = ctx.take_probe().map(|probe| {
            let (phases, node_rows, total_ns) = probe.finish();
            self.view_query_trace(
                core,
                &refresh,
                phases,
                node_rows,
                total_ns,
                ctx.shard_tasks(),
                ctx.threads_spawned(),
                answers,
            )
        });
        (refresh, trace)
    }

    /// Assembles the [`QueryTrace`] for one view maintenance pass.
    #[allow(clippy::too_many_arguments)]
    fn view_query_trace(
        &self,
        core: &ViewCore,
        refresh: &ViewRefresh,
        phases: sac_telemetry::PhaseTimes,
        node_rows: Vec<sac_telemetry::NodeRows>,
        total_ns: u64,
        shard_tasks: usize,
        threads_spawned: usize,
        answers: usize,
    ) -> QueryTrace {
        QueryTrace {
            query: core.query.to_string(),
            strategy: core.plan.strategy().as_str().to_owned(),
            // The view's plan was pinned at materialization: by definition
            // every maintenance pass reuses it.
            plan_cache_hit: true,
            index_cache_hits: 0,
            index_cache_misses: 0,
            phases,
            total_ns,
            node_rows,
            shard_tasks,
            threads_spawned,
            answers,
            refresh_mode: Some(refresh.mode.to_string()),
            delta_rows: Some(refresh.delta_rows),
        }
    }

    /// Folds one execution context's parallel-work counters into the
    /// session metrics.
    fn note_exec_work(&self, ctx: &exec::ExecContext) {
        self.metrics
            .shard_tasks
            .fetch_add(ctx.shard_tasks(), Ordering::Relaxed);
        self.metrics
            .morsels_dispatched
            .fetch_add(ctx.morsels_dispatched(), Ordering::Relaxed);
    }

    /// Session counters (plan-cache hit rate, per-strategy runs, …).
    /// `threads_spawned` reads the live pool size; `morsel_steals` and
    /// `pool_queue_wait_ns` read the pool's counters relative to the last
    /// [`Database::reset_metrics`].
    pub fn metrics(&self) -> EngineMetrics {
        let (indexes_built, shard_sets_built) = {
            let cache = self.lock_indexes();
            (cache.built(), cache.shard_sets_built())
        };
        let mut m = self
            .metrics
            .snapshot(indexes_built, shard_sets_built, self.pool_stats());
        m.run_latency = self.latency.run.snapshot();
        m.prepare_latency = self.latency.prepare.snapshot();
        m.view_refresh_latency = self.latency.view_refresh.snapshot();
        m.datalog_latency = self.latency.datalog.snapshot();
        m
    }

    /// Zeroes every metric counter, including the index-build counter.  The
    /// caches themselves are untouched (see [`Database::clear_caches`]),
    /// and so is the worker pool — `threads_spawned` keeps reporting its
    /// live size, while the steal/queue-wait readings restart from zero.
    pub fn reset_metrics(&self) {
        self.metrics.reset(self.pool_stats());
        self.lock_indexes().reset_built();
        self.latency.run.reset();
        self.latency.prepare.reset();
        self.latency.view_refresh.reset();
        self.latency.datalog.reset();
    }

    /// Maintenance hook: drops every cached plan and join index.  Subsequent
    /// queries replan and rebuild from the live data — correctness never
    /// depends on this, but it bounds memory after a schema or workload
    /// shift.  Metrics are untouched (see [`Database::reset_metrics`]).
    pub fn clear_caches(&self) {
        self.write_plans().clear();
        let instance = self.read_instance();
        self.lock_indexes().invalidate_all(&instance);
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.read_plans().len()
    }

    // ------------------------------------------------------------------
    // Durable persistence (see `crate::durability` for the model).
    // ------------------------------------------------------------------

    /// Opens (or creates) a durable database in directory `path` with
    /// default [`DurabilityOptions`]: every append fsynced, automatic
    /// snapshots.
    ///
    /// Recovery loads the newest valid snapshot, replays the WAL tail
    /// (truncating a torn final record), re-registers and refreshes every
    /// persisted materialized view, warms the plan cache from the persisted
    /// query fingerprints, and checkpoints the rebuilt state so this
    /// process's dictionary codes become the on-disk baseline.  The
    /// constraint set is restored before any plan is warmed.
    pub fn open(path: impl AsRef<Path>) -> SacResult<Database> {
        Database::open_with(path, DurabilityOptions::default())
    }

    /// [`Database::open`] with explicit durability options.
    pub fn open_with(path: impl AsRef<Path>, options: DurabilityOptions) -> SacResult<Database> {
        let started = Instant::now();
        let dir = path.as_ref().to_path_buf();
        let disk = durability::load_disk_state(&dir, options)?;
        let mut report = disk.report;

        let mut db = Database::from_instance(disk.instance);
        let tgds = disk
            .tgds
            .iter()
            .map(durability::tgd_from_repr)
            .collect::<SacResult<Vec<_>>>()?;
        db.durability = Some(DurabilityCore {
            dir,
            options,
            state: Mutex::new(DurableState {
                wal: disk.wal,
                next_seq: disk.last_seq + 1,
                // 0 until the checkpoint below re-baselines: the persisted
                // dictionary codes belong to the dead process, not this one.
                dict_mark: 0,
                since_snapshot: 0,
            }),
            tgds_repr: Mutex::new(disk.tgds.clone()),
        });
        db.set_tgds(tgds);
        db.metrics
            .recovery_replayed_batches
            .fetch_add(report.replayed_batches, Ordering::Relaxed);

        // Re-register the persisted views (initial refresh included) and
        // pin them: the recovery-time handles drop right here, and the weak
        // registry alone would unregister the views with them.
        for view in &disk.views {
            let query = durability::query_from_repr(&view.query)?;
            let options = ViewOptions {
                auto_refresh: view.auto_refresh,
                max_incremental_fraction: view.max_incremental_fraction,
            };
            let handle = db.materialize_with(query, options)?;
            let core = handle.core_arc();
            drop(handle);
            db.pinned_views
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(core);
            report.views += 1;
        }

        // Warm the plan cache from the persisted fingerprints.  A repr the
        // current validation rejects (e.g. written by a newer build) is
        // skipped, not fatal: the cache is an optimization.
        for repr in &disk.plans {
            if let Ok(query) = durability::query_from_repr(repr) {
                db.plan_arc(&query);
                report.plans += 1;
            }
        }

        // Checkpoint the rebuilt state: the WAL is compacted away and the
        // dictionary watermark re-baselines to this process's codes.
        db.checkpoint()?;

        report.micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        bus::emit(|| Event::RecoveryCompleted {
            replayed_batches: report.replayed_batches,
            replayed_rows: report.replayed_rows,
            views: report.views,
            plans: report.plans,
            micros: report.micros,
        });
        db.recovery = Some(report);
        Ok(db)
    }

    /// Whether this database persists its mutations (created by
    /// [`Database::open`]).
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durability options this database was opened with, if durable.
    pub fn durability_options(&self) -> Option<DurabilityOptions> {
        self.durability.as_ref().map(|core| core.options)
    }

    /// What recovery found and did, for databases created by
    /// [`Database::open`]; `None` on non-durable databases.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Fresh handles over the materialized views recovered from disk, in
    /// their persisted registration order.  Empty on non-durable databases
    /// and on durable ones that had no views.
    pub fn durable_views(&self) -> Vec<MaterializedView<'_>> {
        self.pinned_views
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|core| MaterializedView::new(self, Arc::clone(core)))
            .collect()
    }

    /// Writes a compacted snapshot covering every append so far and
    /// truncates the WAL it covers.  Errors on a non-durable database.
    pub fn checkpoint(&self) -> SacResult<CheckpointReport> {
        let core = self
            .durability
            .as_ref()
            .ok_or_else(|| SacError::Persistence {
                message: "checkpoint on a non-durable database (use Database::open)".to_owned(),
            })?;
        // Same lock order as the append path: instance guard, then the
        // durability state.  A read guard suffices — appends (which hold
        // the write guard) serialize against us on the state mutex.
        let instance = self.read_instance();
        let mut state = core.lock_state();
        self.checkpoint_locked(core, &instance, &mut state)
    }

    /// Forces every WAL byte written so far to disk, regardless of the
    /// sync mode — the graceful-shutdown companion of
    /// [`SyncMode::Never`](sac_wal::SyncMode::Never).  No-op answer on a
    /// non-durable database.
    pub fn sync_wal(&self) -> SacResult<()> {
        if let Some(core) = &self.durability {
            core.lock_state().wal.sync()?;
        }
        Ok(())
    }

    /// The append-path durability hook: called by [`Database::insert`] /
    /// [`Database::extend_from`] **under the instance write guard** with
    /// the pre-mutation cursor; appends one WAL record covering exactly
    /// the growth, then checkpoints if the auto-snapshot threshold is hit.
    fn persist_growth(
        &self,
        instance: &Instance,
        cursor: &sac_storage::DeltaCursor,
    ) -> SacResult<()> {
        let core = self
            .durability
            .as_ref()
            .expect("persist_growth on a non-durable database");
        let mut state = core.lock_state();
        let seq = state.next_seq;
        let Some((batch, dict_len)) =
            durability::delta_batch(instance, cursor, seq, state.dict_mark)
        else {
            return Ok(());
        };
        let bytes = state.wal.append(&batch)?;
        state.next_seq += 1;
        state.dict_mark = dict_len;
        state.since_snapshot += 1;
        self.metrics.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.metrics.wal_bytes.fetch_add(
            usize::try_from(bytes).unwrap_or(usize::MAX),
            Ordering::Relaxed,
        );
        bus::emit(|| Event::WalAppended {
            seq,
            bytes,
            rows: batch.rows(),
        });
        if core.options.snapshot_every > 0 && state.since_snapshot >= core.options.snapshot_every {
            self.checkpoint_locked(core, instance, &mut state)?;
        }
        Ok(())
    }

    /// The checkpoint workhorse; the caller holds an instance guard (read
    /// or write) and the durability state lock.
    fn checkpoint_locked(
        &self,
        core: &DurabilityCore,
        instance: &Instance,
        state: &mut DurableState,
    ) -> SacResult<CheckpointReport> {
        let started = Instant::now();
        let tgds = core.lock_tgds_repr().clone();
        // Live views (upgradable weaks), in registration order.  `views`
        // comes after `instance` in the lock order, so this is safe from
        // both checkpoint entry points.
        let views: Vec<_> = self
            .read_views()
            .iter()
            .filter_map(|weak| weak.upgrade())
            .map(|view| durability::view_repr(&view.query, view.options))
            .collect();
        // The plan cache is last and released before any I/O.
        let plans: Vec<_> = self
            .read_plans()
            .keys()
            .map(|(head, body)| durability::query_repr(None, head, body))
            .collect();
        let last_seq = state.next_seq.saturating_sub(1);
        let (snapshot, dict_len) = durability::snapshot_of(instance, last_seq, tgds, views, plans);
        let atoms = snapshot.atoms();
        let (path, bytes) = durability::persist_snapshot(&core.dir, &snapshot)?;
        state.wal.reset()?;
        state.dict_mark = dict_len;
        state.since_snapshot = 0;
        self.metrics
            .snapshots_written
            .fetch_add(1, Ordering::Relaxed);
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        bus::emit(|| Event::SnapshotWritten {
            seq: last_seq,
            bytes,
            atoms,
            micros,
        });
        Ok(CheckpointReport {
            seq: last_seq,
            path,
            bytes,
            atoms,
            micros,
        })
    }

    /// Exclusive access to the instance, for single-owner callers (the
    /// legacy [`crate::Engine`] shim).
    pub(crate) fn instance_mut(&mut self) -> &Instance {
        self.instance.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    // Lock plumbing.  Poisoning is not propagated: a panicking query thread
    // leaves the structures it held in a consistent state (pure reads, or
    // completed cache updates), so later callers simply continue.

    fn read_instance(&self) -> std::sync::RwLockReadGuard<'_, Instance> {
        self.instance.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_instance(&self) -> std::sync::RwLockWriteGuard<'_, Instance> {
        self.instance.write().unwrap_or_else(|e| e.into_inner())
    }

    fn read_tgds(&self) -> std::sync::RwLockReadGuard<'_, Vec<Tgd>> {
        self.tgds.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_tgds(&self) -> std::sync::RwLockWriteGuard<'_, Vec<Tgd>> {
        self.tgds.write().unwrap_or_else(|e| e.into_inner())
    }

    fn read_plans(&self) -> std::sync::RwLockReadGuard<'_, HashMap<PlanKey, Arc<Plan>>> {
        self.plans.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_plans(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<PlanKey, Arc<Plan>>> {
        self.plans.write().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_indexes(&self) -> std::sync::MutexGuard<'_, IndexCache> {
        self.indexes.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn read_views(&self) -> std::sync::RwLockReadGuard<'_, Vec<Weak<ViewCore>>> {
        self.views.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_views(&self) -> std::sync::RwLockWriteGuard<'_, Vec<Weak<ViewCore>>> {
        self.views.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A compiled query bound to a [`Database`]: cheap to clone, freely shared
/// across threads, and executed without ever touching the plan cache again.
///
/// The plan is pinned at [`Database::prepare`] time.  Data mutations are
/// always visible to later executions (plans never capture data); constraint
/// changes ([`Database::set_tgds`]) are **not** — re-prepare after changing
/// constraints, exactly like any prepared statement outliving a schema
/// change.
#[derive(Debug, Clone)]
pub struct PreparedQuery<'db> {
    database: &'db Database,
    query: Arc<ConjunctiveQuery>,
    plan: Arc<Plan>,
}

impl PreparedQuery<'_> {
    /// Executes the prepared plan against the current data.
    pub fn execute(&self) -> ResultSet {
        self.database.run_plan(&self.plan)
    }

    /// The Boolean reading of [`PreparedQuery::execute`].
    pub fn execute_boolean(&self) -> bool {
        self.execute().is_true()
    }

    /// [`PreparedQuery::execute`] with a [`QueryTrace`] alongside the
    /// results — [`Database::run_traced`] over the pinned plan.  The plan
    /// phase is empty and `plan_cache_hit` is `true` by definition: prepared
    /// queries never touch the plan cache again.
    pub fn run_traced(&self) -> (ResultSet, QueryTrace) {
        let mut probe = Probe::start();
        probe.mark(Phase::Plan);
        let start = TraceStart {
            probe,
            plan_cache_hit: true,
            query: self.query.to_string(),
        };
        let (result, trace) =
            self.database
                .run_plan_core(&self.plan, self.database.exec.parallelism, Some(start));
        (result, trace.expect("traced runs always produce a trace"))
    }

    /// The strategy the pinned plan uses.
    pub fn strategy(&self) -> Strategy {
        self.plan.strategy()
    }

    /// The planner's decision, for inspection.
    pub fn explain(&self) -> &Explain {
        self.plan.explain()
    }

    /// The compiled query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The result columns every execution will produce.
    pub fn columns(&self) -> &[String] {
        self.plan.columns().as_ref()
    }
}

// `Database` must stay shareable across threads: this is the compile-time
// guarantee the service façade is built on (a `static_assertions`-style
// check without the dependency).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<PreparedQuery<'static>>();
    assert_send_sync::<MaterializedView<'static>>();
    assert_send_sync::<ResultSet>();
    assert_send_sync::<SacError>();
    assert_send_sync::<EngineMetrics>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, Term};
    use sac_query::evaluate;
    use std::thread;

    fn graph_database() -> Database {
        Database::from_instance(sac_gen::random_graph_database(10, 30, 3))
    }

    #[test]
    fn run_agrees_with_naive_evaluation_across_strategies() {
        let db = graph_database();
        let reference = db.snapshot();
        for q in [
            sac_gen::path_query(2),   // acyclic → direct
            sac_gen::cycle_query(3),  // cyclic core → fallback
            sac_gen::clique_query(3), // cyclic core → fallback
        ] {
            assert_eq!(
                db.run(&q).into_tuples(),
                evaluate(&q, &reference),
                "disagreement on {q}"
            );
        }
    }

    #[test]
    fn text_queries_answer_in_one_call() {
        let db = Database::from_facts("E(a, b). E(b, c).").unwrap();
        let rs = db.query("q(X, Z) :- E(X, Y), E(Y, Z).").unwrap();
        assert_eq!(rs.columns(), &["X".to_owned(), "Z".to_owned()]);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows()[0]["X"], Term::constant("a"));
        assert_eq!(rs.rows()[0]["Z"], Term::constant("c"));
        assert!(db.query_boolean("q() :- E(a, X).").unwrap());
        assert!(!db.query_boolean("q() :- E(c, X).").unwrap());
    }

    #[test]
    fn parse_and_schema_failures_fold_into_sac_error() {
        let db = Database::from_facts("E(a, b).").unwrap();
        match db.query("q(X) :- E(X,").unwrap_err() {
            SacError::Parse { line, column, .. } => assert_eq!((line, column), (1, 12)),
            other => panic!("expected a parse error, got {other}"),
        }
        match db.insert(atom!("E", cst "a")).unwrap_err() {
            SacError::ArityMismatch {
                expected, found, ..
            } => assert_eq!((expected, found), (2, 1)),
            other => panic!("expected an arity mismatch, got {other}"),
        }
        match db.query("q(a) :- E(a, X).").unwrap_err() {
            SacError::InvalidInput { .. } => {}
            other => panic!("expected invalid input, got {other}"),
        }
    }

    #[test]
    fn prepared_queries_are_cloneable_and_track_data() {
        let db = Database::new();
        db.load_facts("E(a, b).").unwrap();
        let prepared = db.prepare("q(X) :- E(X, Y), E(Y, Z).").unwrap();
        let again = prepared.clone();
        assert!(!prepared.execute_boolean());
        assert!(db.insert(atom!("E", cst "b", cst "c")).unwrap());
        // Both clones see the new data without re-preparing.
        assert!(prepared.execute_boolean());
        assert_eq!(again.execute().rows()[0]["X"], Term::constant("a"));
        assert_eq!(prepared.columns(), &["X".to_owned()]);
        // The prepare and the executions hit the plan cache exactly once.
        assert_eq!(db.metrics().plans_built, 1);
    }

    #[test]
    fn plan_cache_hits_on_repeated_queries() {
        let db = graph_database();
        let q = sac_gen::path_query(3);
        db.run(&q);
        db.run(&q);
        db.run(&q);
        let m = db.metrics();
        assert_eq!(m.queries_run, 3);
        assert_eq!(m.plans_built, 1);
        assert_eq!(m.plan_cache_hits, 2);
        assert_eq!(m.runs_yannakakis_direct, 3);
        assert_eq!(db.cached_plans(), 1);
    }

    #[test]
    fn reset_metrics_and_clear_caches_are_independent() {
        let db = graph_database();
        let q = sac_gen::cycle_query(3); // fallback strategy → builds indexes
        db.run(&q);
        let before = db.metrics();
        assert!(before.queries_run == 1 && before.plans_built == 1);
        assert!(before.indexes_built > 0);

        db.reset_metrics();
        let zeroed = db.metrics();
        assert_eq!(zeroed, EngineMetrics::default());
        assert_eq!(db.cached_plans(), 1, "reset_metrics leaves caches alone");

        db.run(&q);
        assert_eq!(db.metrics().plan_cache_hits, 1, "cache still warm");

        db.clear_caches();
        assert_eq!(db.cached_plans(), 0);
        db.run(&q);
        let after = db.metrics();
        assert_eq!(after.plans_built, 1, "replanned after the cache dropped");
        assert!(after.indexes_built > 0, "indexes rebuilt after the drop");

        // The snapshot type resets the same way.
        let mut m = db.metrics();
        m.reset();
        assert_eq!(m, EngineMetrics::default());
    }

    #[test]
    fn concurrent_runs_agree_with_naive_evaluation() {
        let db = Database::from_instance(sac_gen::random_graph_database(12, 50, 11));
        let reference = db.snapshot();
        let queries = [
            sac_gen::path_query(2),
            sac_gen::star_query(3),
            sac_gen::cycle_query(3),
            sac_gen::clique_query(3),
        ];
        thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for q in &queries {
                        assert_eq!(db.run(q).into_tuples(), evaluate(q, &reference));
                    }
                });
            }
        });
        let m = db.metrics();
        assert_eq!(m.queries_run, 16);
        assert_eq!(
            m.plans_built + m.plan_cache_hits,
            16,
            "every request either built or hit"
        );
    }

    #[test]
    fn concurrent_inserts_and_queries_stay_consistent() {
        let db = Database::new();
        db.load_facts("E(n0, n1).").unwrap();
        let q = sac_gen::path_query(2);
        let prepared = db.prepare(&q).unwrap();
        thread::scope(|scope| {
            scope.spawn(|| {
                for i in 1..40 {
                    db.insert(sac_common::Atom::from_parts(
                        "E",
                        vec![
                            Term::constant(&format!("n{i}")),
                            Term::constant(&format!("n{}", i + 1)),
                        ],
                    ))
                    .unwrap();
                }
            });
            scope.spawn(|| {
                for _ in 0..40 {
                    // Every observed answer must be a real path in some
                    // prefix of the insert stream; final state is checked
                    // below.
                    let _ = prepared.execute();
                }
            });
        });
        let reference = db.snapshot();
        assert_eq!(prepared.execute().into_tuples(), evaluate(&q, &reference));
        assert_eq!(reference.len(), 40);
    }

    #[test]
    fn witness_strategy_is_used_and_correct_on_constraint_closed_data() {
        let q = sac_gen::example1_triangle();
        let tgds = vec![sac_gen::collector_tgd()];
        // music_database is closed under the collector tgd by construction.
        let reference = sac_gen::music_database(30, 60, 5);
        let db = Database::from_instance(reference.clone()).with_tgds(tgds);
        assert_eq!(db.explain(&q).strategy, Strategy::YannakakisWitness);
        assert_eq!(db.run(&q).into_tuples(), evaluate(&q, &reference));
        assert_eq!(db.metrics().runs_yannakakis_witness, 1);
    }

    #[test]
    fn changing_constraints_clears_cached_plans() {
        let q = sac_gen::example1_triangle();
        let db = Database::from_instance(sac_gen::music_database(5, 10, 2));
        assert_eq!(db.explain(&q).strategy, Strategy::IndexedSearch);
        db.set_tgds(vec![sac_gen::collector_tgd()]);
        assert_eq!(db.explain(&q).strategy, Strategy::YannakakisWitness);
    }

    #[test]
    fn run_batch_amortizes_planning() {
        let db = graph_database();
        let workload: Vec<_> = (0..4)
            .flat_map(|_| [sac_gen::path_query(3), sac_gen::star_query(3)])
            .collect();
        let results = db.run_batch(&workload);
        assert_eq!(results.len(), 8);
        let m = db.metrics();
        assert_eq!(m.queries_run, 8);
        assert_eq!(m.plans_built, 2);
        assert_eq!(m.plan_cache_hits, 6);
        assert!(m.plan_cache_hit_rate() > 0.7);
        // Identical queries return identical answers.
        assert_eq!(results[0], results[2]);
        assert_eq!(results[1], results[3]);
    }

    #[test]
    fn metrics_display_is_informative() {
        let db = graph_database();
        db.run(&sac_gen::path_query(2));
        let text = format!("{}", db.metrics());
        assert!(text.contains("1 runs"));
        assert!(text.contains("direct"));
        assert!(text.contains("shard tasks"));
    }

    #[test]
    fn parallelism_is_clamped_and_defaults_to_serial() {
        let db = Database::new();
        assert_eq!(db.parallelism(), 1);
        assert_eq!(db.exec_options(), ExecOptions::default());
        let db = Database::new().with_parallelism(0);
        assert_eq!(db.parallelism(), 1, "0 clamps to serial");
        let db = Database::new().with_exec_options(ExecOptions {
            parallelism: 4,
            ..ExecOptions::default()
        });
        assert_eq!(db.parallelism(), 4);
    }

    #[test]
    fn parallel_runs_agree_with_serial_and_record_shard_work() {
        let data = sac_gen::random_graph_database(16, 80, 23);
        let serial = Database::from_instance(data.clone());
        // min_parallel_rows 0: force the shard machinery on the small fixture.
        let parallel = Database::from_instance(data.clone()).with_exec_options(ExecOptions {
            parallelism: 4,
            min_parallel_rows: 0,
        });
        for q in [
            sac_gen::path_query(3),
            sac_gen::star_query(3),
            sac_gen::cycle_query(3),
            sac_gen::clique_query(3),
        ] {
            assert_eq!(serial.run(&q), parallel.run(&q), "disagreement on {q}");
        }
        let m_serial = serial.metrics();
        assert_eq!(m_serial.shard_tasks, 0, "serial path shards nothing");
        assert_eq!(m_serial.threads_spawned, 0);
        assert_eq!(m_serial.shard_sets_built, 0);
        let m_parallel = parallel.metrics();
        assert!(m_parallel.shard_sets_built > 0, "E was decomposed");
        assert!(m_parallel.shard_tasks > 0, "per-shard tasks ran");
        assert!(m_parallel.threads_spawned > 0, "workers were spawned");
    }

    #[test]
    fn parallel_batches_preserve_input_order_and_serial_answers() {
        let data = sac_gen::random_graph_database(12, 50, 9);
        let workload: Vec<_> = (0..4)
            .flat_map(|_| {
                [
                    sac_gen::path_query(2),
                    sac_gen::star_query(3),
                    sac_gen::cycle_query(3),
                ]
            })
            .collect();
        let serial = Database::from_instance(data.clone());
        let parallel = Database::from_instance(data).with_parallelism(4);
        let expected = serial.run_batch(&workload);
        let got = parallel.run_batch(&workload);
        assert_eq!(expected, got, "same answers in the same order");
        let m = parallel.metrics();
        assert_eq!(m.queries_run, workload.len());
        assert!(m.threads_spawned > 0, "the batch fanned out");
    }

    #[test]
    fn parallel_inserts_extend_shards_without_rebuilds() {
        // min_parallel_rows 0: force the shard machinery on the small fixture.
        let db = Database::from_instance(sac_gen::random_graph_database(10, 40, 4))
            .with_exec_options(ExecOptions {
                parallelism: 2,
                min_parallel_rows: 0,
            });
        let q = sac_gen::path_query(2);
        db.run(&q); // builds the shard decomposition of E
        let sets_before = db.metrics().shard_sets_built;
        assert!(sets_before > 0);
        assert!(db.insert(atom!("E", cst "fresh_a", cst "fresh_b")).unwrap());
        db.run(&q);
        assert_eq!(
            db.metrics().shard_sets_built,
            sets_before,
            "the insert extended the cached shards instead of rebuilding"
        );
        // The new fact is visible through the extended shards.
        assert!(db.query_boolean("q() :- E(fresh_a, X).").unwrap());
    }

    #[test]
    fn concurrent_traffic_on_a_parallel_database_stays_consistent() {
        // Nested parallelism: outer request threads over a database whose
        // runs themselves fan out over the worker pool.
        let db =
            Database::from_instance(sac_gen::random_graph_database(12, 50, 31)).with_parallelism(2);
        let reference = db.snapshot();
        let queries = [
            sac_gen::path_query(2),
            sac_gen::star_query(3),
            sac_gen::clique_query(3),
        ];
        thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for q in &queries {
                        assert_eq!(db.run(q).into_tuples(), evaluate(q, &reference));
                    }
                });
            }
        });
        assert_eq!(db.metrics().queries_run, 9);
    }

    #[test]
    fn traced_runs_report_phases_summing_to_the_total_on_every_rung() {
        let db = Database::from_instance(sac_gen::random_graph_database(12, 50, 19));
        for (q, strategy) in [
            (sac_gen::path_query(2), "yannakakis-direct"),
            (sac_gen::cycle_query(3), "indexed-search"),
        ] {
            let (result, trace) = db.run_traced(&q);
            assert_eq!(trace.strategy, strategy, "on {q}");
            assert_eq!(trace.answers, result.len());
            assert_eq!(result.into_tuples(), db.run(&q).into_tuples());
            // Boundary-mark timing: the phases partition the traced span, so
            // the sum is the total *exactly* — far inside the 10% budget.
            assert_eq!(trace.phases.total_ns(), trace.total_ns, "on {q}");
            assert!(trace.total_ns > 0, "a real run takes nonzero time");
        }
        // The witness rung, on constraint-closed data.
        let db = Database::from_instance(sac_gen::music_database(20, 40, 3))
            .with_tgds(vec![sac_gen::collector_tgd()]);
        let (_, trace) = db.run_traced(&sac_gen::example1_triangle());
        assert_eq!(trace.strategy, "yannakakis-witness");
        assert_eq!(trace.phases.total_ns(), trace.total_ns);
    }

    #[test]
    fn traces_report_cache_outcomes_and_node_rows() {
        let db = graph_database();
        let q = sac_gen::path_query(2);
        let (_, cold) = db.run_traced(&q);
        assert!(!cold.plan_cache_hit, "first request plans");
        let (_, warm) = db.run_traced(&q);
        assert!(warm.plan_cache_hit, "second request hits the cache");
        assert_eq!(warm.index_cache_misses, 0, "indexes were already built");
        // One node per join-tree atom, rows_in = the scanned relation.
        assert_eq!(warm.node_rows.len(), 2);
        let e_rows = db
            .snapshot()
            .relation(sac_common::intern("E"))
            .unwrap()
            .len();
        for node in &warm.node_rows {
            assert_eq!(node.rows_in, e_rows);
            assert!(node.rows_out <= node.rows_in, "match sets only filter");
        }
        // Identical requests produce an identical trace *structure* even
        // though wall times differ.
        assert_eq!(
            warm.structure_digest(),
            db.run_traced(&q).1.structure_digest()
        );
    }

    #[test]
    fn prepared_run_traced_pins_the_plan() {
        let db = graph_database();
        let prepared = db.prepare(sac_gen::path_query(2)).unwrap();
        let (result, trace) = prepared.run_traced();
        assert!(trace.plan_cache_hit, "prepared queries never re-plan");
        assert_eq!(trace.answers, result.len());
        assert_eq!(trace.phases.total_ns(), trace.total_ns);
        assert!(trace.phases.get(Phase::MatchSets) > 0);
        assert_eq!(result, prepared.execute());
    }

    #[test]
    fn traced_runs_feed_the_latency_histograms() {
        let db = graph_database();
        let q = sac_gen::path_query(2);
        db.run(&q);
        let _ = db.run_traced(&q);
        let m = db.metrics();
        assert_eq!(
            m.run_latency.count, 2,
            "traced and untraced runs both record"
        );
        assert_eq!(m.prepare_latency.count, 1, "one plan was compiled");
        assert!(m.run_latency.p50() <= m.run_latency.p99());
        db.reset_metrics();
        assert!(
            db.metrics().run_latency.is_empty(),
            "reset clears histograms"
        );
    }

    #[test]
    fn traced_view_refreshes_report_modes() {
        let db = Database::from_facts("E(a, b). E(u, v). E(w, x).").unwrap();
        let view = db
            .materialize_with(
                "q(X, Z) :- E(X, Y), E(Y, Z).",
                crate::ViewOptions {
                    auto_refresh: false,
                    ..crate::ViewOptions::default()
                },
            )
            .unwrap();
        let (fresh, trace) = view.refresh_traced();
        assert_eq!(fresh.mode, crate::RefreshMode::Fresh);
        assert_eq!(trace.refresh_mode.as_deref(), Some("fresh"));
        assert_eq!(trace.delta_rows, Some(0));

        db.load_facts("E(b, c).").unwrap();
        let (incr, trace) = view.refresh_traced();
        assert_eq!(incr.mode, crate::RefreshMode::Incremental);
        assert_eq!(trace.refresh_mode.as_deref(), Some("incremental"));
        assert_eq!(trace.delta_rows, Some(1));
        assert_eq!(trace.answers, view.len());
        assert_eq!(trace.phases.total_ns(), trace.total_ns);
        assert!(
            db.metrics().view_refresh_latency.count >= 2,
            "initial + incremental refresh recorded"
        );
    }

    /// A fresh per-test durability directory under the system temp dir.
    fn durability_dir(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("sac_db_{tag}_{}_{n}", std::process::id()))
    }

    #[test]
    fn durable_databases_survive_reopen() {
        let dir = durability_dir("reopen");
        let expected = {
            let db = Database::open(&dir).unwrap();
            assert!(db.is_durable());
            db.load_facts("E(a, b). E(b, c). E(c, d).").unwrap();
            db.insert(atom!("E", cst "d", cst "e")).unwrap();
            let m = db.metrics();
            assert!(m.wal_appends >= 2, "both mutations hit the WAL: {m:?}");
            assert!(m.wal_bytes > 0);
            db.query("q(X, Z) :- E(X, Y), E(Y, Z).")
                .unwrap()
                .into_tuples()
        };
        let db = Database::open(&dir).unwrap();
        let report = db.recovery_report().unwrap().clone();
        assert!(
            report.replayed_batches >= 2,
            "the un-checkpointed appends replay: {report:?}"
        );
        assert_eq!(
            db.query("q(X, Z) :- E(X, Y), E(Y, Z).")
                .unwrap()
                .into_tuples(),
            expected
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoints_compact_the_wal() {
        let dir = durability_dir("checkpoint");
        {
            let db = Database::open(&dir).unwrap();
            db.load_facts("E(a, b). E(b, c).").unwrap();
            let report = db.checkpoint().unwrap();
            assert_eq!(report.atoms, 2);
            assert!(db.metrics().snapshots_written >= 1);
        }
        let db = Database::open(&dir).unwrap();
        let report = db.recovery_report().unwrap();
        assert_eq!(report.replayed_batches, 0, "the WAL was compacted away");
        assert_eq!(report.snapshot_atoms, 2);
        assert_eq!(db.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn automatic_snapshots_fire_on_the_append_threshold() {
        let dir = durability_dir("auto_snap");
        let db = Database::open_with(
            &dir,
            crate::DurabilityOptions {
                sync_mode: crate::SyncMode::Never,
                snapshot_every: 2,
            },
        )
        .unwrap();
        let before = db.metrics().snapshots_written;
        db.load_facts("E(a, b).").unwrap();
        db.load_facts("E(b, c).").unwrap();
        assert!(
            db.metrics().snapshots_written > before,
            "two appends cross the snapshot_every = 2 threshold"
        );
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_views_and_tgds_are_restored() {
        let dir = durability_dir("views");
        let expected = {
            let db = Database::open(&dir).unwrap();
            db.set_tgds(vec![sac_gen::collector_tgd()]);
            let view = db.materialize("q(X, Z) :- E(X, Y), E(Y, Z).").unwrap();
            db.load_facts("E(a, b). E(b, c). E(c, d).").unwrap();
            view.snapshot().into_tuples()
        };
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.tgds(), vec![sac_gen::collector_tgd()]);
        assert_eq!(db.recovery_report().unwrap().views, 1);
        let views = db.durable_views();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].snapshot().into_tuples(), expected);
        // The recovered view is live: it tracks new appends.
        db.load_facts("E(d, e).").unwrap();
        views[0].refresh();
        assert!(views[0].snapshot().into_tuples().len() > expected.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_warms_the_plan_cache() {
        let dir = durability_dir("plans");
        {
            let db = Database::open(&dir).unwrap();
            db.load_facts("E(a, b). E(b, c).").unwrap();
            db.query("q(X, Z) :- E(X, Y), E(Y, Z).").unwrap();
            assert_eq!(db.cached_plans(), 1);
            // Plan fingerprints live in snapshots, not the fact WAL.
            db.checkpoint().unwrap();
        }
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.recovery_report().unwrap().plans, 1);
        assert_eq!(db.cached_plans(), 1);
        let before = db.metrics().plans_built;
        db.query("q(X, Z) :- E(X, Y), E(Y, Z).").unwrap();
        assert_eq!(
            db.metrics().plans_built,
            before,
            "the warmed plan serves the repeat query without compiling"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tails_recover_the_acknowledged_prefix() {
        let dir = durability_dir("torn");
        {
            let db = Database::open_with(
                &dir,
                crate::DurabilityOptions {
                    sync_mode: crate::SyncMode::Always,
                    snapshot_every: 0,
                },
            )
            .unwrap();
            db.load_facts("E(a, b).").unwrap();
            db.load_facts("E(b, c).").unwrap();
        }
        // Tear the final record, as a crash mid-append would.
        let wal = dir.join("wal.sacwal");
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();

        let db = Database::open(&dir).unwrap();
        let report = db.recovery_report().unwrap();
        assert!(report.truncated_bytes > 0, "the torn record was dropped");
        assert!(db.contains(&atom!("E", cst "a", cst "b")));
        assert!(
            !db.contains(&atom!("E", cst "b", cst "c")),
            "the torn (never-acknowledged) batch is gone"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_on_a_non_durable_database_is_an_error() {
        let db = Database::new();
        assert!(!db.is_durable());
        assert!(db.recovery_report().is_none());
        assert!(db.durable_views().is_empty());
        assert!(matches!(db.checkpoint(), Err(SacError::Persistence { .. })));
    }
}
