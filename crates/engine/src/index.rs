//! Lazily built, epoch-validated join-key indexes over an [`Instance`].
//!
//! `sac-storage` maintains single-column positional indexes incrementally on
//! every insert.  Multi-column (join-key) indexes are too numerous to build
//! eagerly — which column sets matter depends on the queries — so the engine
//! builds them **on demand** through [`sac_storage::Relation::project_index`]
//! and caches them here, keyed by `(predicate, column set)`.
//!
//! Staleness is tracked with the instance's mutation [`Instance::epoch`]:
//! the cache remembers the epoch it was built against, and
//! [`IndexCache::note_insert`] lets the owner (the [`crate::Database`], which
//! routes every mutation) advance the epoch while dropping only the indexes
//! of the one predicate that actually changed.  If the cache ever observes an
//! epoch it was not told about, it clears itself entirely — correctness never
//! depends on the owner's diligence.
//!
//! Indexes are stored behind [`Arc`] so the concurrent [`crate::Database`]
//! can hand an executing query a cheap `PlanIndexes` snapshot of exactly
//! the indexes its plan needs: the executor then runs without touching the
//! cache (no lock held), while later invalidations simply drop the cache's
//! `Arc`s and leave in-flight snapshots intact.

use sac_common::{Symbol, Term};
use sac_storage::Instance;
use std::collections::HashMap;
use std::sync::Arc;

/// A hash index over the projection of one relation onto a set of columns:
/// key tuple → row ids sharing it.
#[derive(Debug, Clone)]
pub struct JoinIndex {
    positions: Vec<usize>,
    map: HashMap<Vec<Term>, Vec<usize>>,
}

impl JoinIndex {
    /// The indexed column positions, in key order.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Row ids whose projection onto the indexed columns equals `key`.
    pub fn rows(&self, key: &[Term]) -> &[usize] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// The indexes one plan execution works from: an immutable snapshot taken
/// from the [`IndexCache`] right before the run, keyed like the cache.
pub(crate) type PlanIndexes = HashMap<(Symbol, Vec<usize>), Arc<JoinIndex>>;

/// An epoch-validated cache of [`JoinIndex`]es for one instance.
#[derive(Debug, Default)]
pub struct IndexCache {
    epoch: u64,
    indexes: HashMap<(Symbol, Vec<usize>), Arc<JoinIndex>>,
    built: usize,
}

impl IndexCache {
    /// Creates an empty cache synchronized with `db`'s current epoch.
    pub fn new(db: &Instance) -> IndexCache {
        IndexCache {
            epoch: db.epoch(),
            indexes: HashMap::new(),
            built: 0,
        }
    }

    /// Number of indexes currently cached.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// Whether the cache holds no indexes.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// Total number of indexes built over the cache's lifetime (cache misses).
    pub fn built(&self) -> usize {
        self.built
    }

    /// Resets the lifetime build counter (the cached indexes stay).
    pub fn reset_built(&mut self) {
        self.built = 0;
    }

    /// Records that `db` gained one new atom for `predicate` (an
    /// [`Instance::insert`] that returned `true`): only that predicate's
    /// indexes are dropped, everything else stays warm.
    pub fn note_insert(&mut self, db: &Instance, predicate: Symbol) {
        self.indexes.retain(|(p, _), _| *p != predicate);
        self.epoch = db.epoch();
    }

    /// Drops every cached index and resynchronizes with `db`'s epoch.
    pub fn invalidate_all(&mut self, db: &Instance) {
        self.indexes.clear();
        self.epoch = db.epoch();
    }

    /// Ensures the index for `(predicate, positions)` exists and is current,
    /// building it from `db` if needed.  Returns `false` when `db` has no
    /// relation for `predicate` (nothing to index).
    pub fn ensure(&mut self, db: &Instance, predicate: Symbol, positions: &[usize]) -> bool {
        if db.epoch() != self.epoch {
            // Unannounced mutation: discard everything rather than risk
            // serving stale rows.
            self.invalidate_all(db);
        }
        let Some(rel) = db.relation(predicate) else {
            return false;
        };
        if positions.iter().any(|p| *p >= rel.arity()) {
            return false;
        }
        let key = (predicate, positions.to_vec());
        if !self.indexes.contains_key(&key) {
            let index = JoinIndex {
                positions: positions.to_vec(),
                map: rel.project_index(positions),
            };
            self.built += 1;
            self.indexes.insert(key, Arc::new(index));
        }
        true
    }

    /// The cached index for `(predicate, positions)`, if [`IndexCache::ensure`]
    /// built one.
    pub fn get(&self, predicate: Symbol, positions: &[usize]) -> Option<&JoinIndex> {
        self.indexes
            .get(&(predicate, positions.to_vec()))
            .map(|arc| &**arc)
    }

    /// Ensures every index in `needed` and returns an immutable
    /// [`PlanIndexes`] snapshot over them.  Entries that cannot be built
    /// (missing relation, out-of-range positions) are simply absent — the
    /// executor falls back to scans for those.
    pub(crate) fn snapshot(
        &mut self,
        db: &Instance,
        needed: &[(Symbol, Vec<usize>)],
    ) -> PlanIndexes {
        let mut out = PlanIndexes::with_capacity(needed.len());
        for (predicate, positions) in needed {
            if self.ensure(db, *predicate, positions) {
                let key = (*predicate, positions.clone());
                if let Some(arc) = self.indexes.get(&key) {
                    out.insert(key, Arc::clone(arc));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};

    fn db() -> Instance {
        Instance::from_atoms(vec![
            atom!("R", cst "a", cst "b"),
            atom!("R", cst "a", cst "c"),
            atom!("R", cst "d", cst "b"),
            atom!("S", cst "a"),
        ])
        .unwrap()
    }

    #[test]
    fn ensure_builds_once_and_serves_lookups() {
        let db = db();
        let mut cache = IndexCache::new(&db);
        assert!(cache.ensure(&db, intern("R"), &[0]));
        assert!(cache.ensure(&db, intern("R"), &[0]));
        assert_eq!(cache.built(), 1);
        let idx = cache.get(intern("R"), &[0]).unwrap();
        assert_eq!(idx.rows(&[Term::constant("a")]).len(), 2);
        assert_eq!(idx.rows(&[Term::constant("zzz")]).len(), 0);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn missing_predicate_or_bad_positions_are_rejected() {
        let db = db();
        let mut cache = IndexCache::new(&db);
        assert!(!cache.ensure(&db, intern("Missing"), &[0]));
        assert!(!cache.ensure(&db, intern("S"), &[1]));
        assert!(cache.is_empty());
    }

    #[test]
    fn precise_invalidation_drops_only_the_touched_predicate() {
        let mut db = db();
        let mut cache = IndexCache::new(&db);
        cache.ensure(&db, intern("R"), &[0]);
        cache.ensure(&db, intern("S"), &[0]);
        assert_eq!(cache.len(), 2);

        assert!(db.insert(atom!("R", cst "e", cst "f")).unwrap());
        cache.note_insert(&db, intern("R"));
        assert_eq!(cache.len(), 1, "only R's index is dropped");
        assert!(cache.get(intern("S"), &[0]).is_some());

        // Rebuilding R's index picks up the new row.
        cache.ensure(&db, intern("R"), &[0]);
        let idx = cache.get(intern("R"), &[0]).unwrap();
        assert_eq!(idx.rows(&[Term::constant("e")]).len(), 1);
    }

    #[test]
    fn unannounced_mutations_clear_the_whole_cache() {
        let mut db = db();
        let mut cache = IndexCache::new(&db);
        cache.ensure(&db, intern("R"), &[0]);
        cache.ensure(&db, intern("S"), &[0]);
        // Mutate without telling the cache; the next ensure detects the epoch
        // mismatch and starts from scratch.
        assert!(db.insert(atom!("T", cst "x")).unwrap());
        assert!(cache.ensure(&db, intern("T"), &[0]));
        assert_eq!(cache.len(), 1);
        let idx = cache.get(intern("T"), &[0]).unwrap();
        assert_eq!(idx.rows(&[Term::constant("x")]).len(), 1);
    }

    #[test]
    fn multi_column_keys_join_on_full_tuples() {
        let db = db();
        let mut cache = IndexCache::new(&db);
        cache.ensure(&db, intern("R"), &[0, 1]);
        let idx = cache.get(intern("R"), &[0, 1]).unwrap();
        assert_eq!(idx.distinct_keys(), 3);
        assert_eq!(
            idx.rows(&[Term::constant("a"), Term::constant("c")]).len(),
            1
        );
    }

    #[test]
    fn snapshots_survive_invalidation() {
        let mut db = db();
        let mut cache = IndexCache::new(&db);
        let needed = vec![(intern("R"), vec![0usize, 1]), (intern("Missing"), vec![0])];
        let snapshot = cache.snapshot(&db, &needed);
        assert_eq!(snapshot.len(), 1, "unbuildable entries are absent");
        // Invalidate the cache: the snapshot's Arc keeps the index alive.
        assert!(db.insert(atom!("R", cst "z", cst "z")).unwrap());
        cache.note_insert(&db, intern("R"));
        assert!(cache.get(intern("R"), &[0, 1]).is_none());
        let idx = &snapshot[&(intern("R"), vec![0, 1])];
        assert_eq!(
            idx.rows(&[Term::constant("a"), Term::constant("b")]).len(),
            1
        );
    }

    #[test]
    fn built_counter_resets_independently_of_contents() {
        let db = db();
        let mut cache = IndexCache::new(&db);
        cache.ensure(&db, intern("R"), &[0]);
        assert_eq!(cache.built(), 1);
        cache.reset_built();
        assert_eq!(cache.built(), 0);
        assert_eq!(cache.len(), 1, "indexes stay cached");
    }
}
