//! Lazily built, epoch-validated join-key indexes and relation shards over
//! an [`Instance`].
//!
//! `sac-storage` maintains single-column positional indexes incrementally on
//! every insert.  Multi-column (join-key) indexes are too numerous to build
//! eagerly — which column sets matter depends on the queries — so the engine
//! builds them **on demand** through [`sac_storage::Relation::project_index`]
//! and caches them here, keyed by `(predicate, column set)`.  The same cache
//! also holds **hash-partitioned shard decompositions**
//! ([`sac_storage::Relation::partition_by`]) of the relations the parallel
//! executor scans, keyed by `(predicate, shard count)`.
//!
//! Staleness is tracked with the instance's mutation [`Instance::epoch`]:
//! the cache remembers the epoch it was built against, and
//! [`IndexCache::note_growth`] lets the owner (the [`crate::Database`], which
//! routes every mutation) advance the epoch while **incrementally extending**
//! every cached index and shard set with its relation's appended rows —
//! relations only ever grow, and they grow at the tail, so untouched
//! predicates are an O(1) no-op and a single fact append is a handful of
//! hash inserts instead of a full rebuild.  Nothing is dropped, the whole
//! cache stays warm, and the catch-up covers even growth the owner forgot
//! to announce earlier.  If the cache observes an unannounced epoch through
//! [`IndexCache::ensure`], it still clears itself entirely — correctness
//! never depends on the owner's diligence.
//!
//! Indexes and shard sets are stored behind [`Arc`] so the concurrent
//! [`crate::Database`] can hand an executing query cheap `PlanIndexes` /
//! `PlanShards` snapshots of exactly what its plan needs: the executor
//! then runs without touching the cache (no lock held), while later
//! incremental updates copy-on-write (`Arc::make_mut`) and leave in-flight
//! snapshots intact.

use sac_common::{FxHashMap, Symbol, Term};
use sac_storage::{dict, Instance, Relation};
use sac_telemetry::{bus, Event};
use std::collections::HashMap;
use std::sync::Arc;

/// A hash index over the projection of one relation onto a set of columns:
/// key tuple → row ids sharing it.
///
/// Keys are rows of dictionary **codes** (see [`sac_storage::dict`]), so the
/// engine's hot path probes with the codes it already carries — no term
/// materialization per lookup.  The [`JoinIndex::rows`] veneer accepts terms
/// and encodes through the dictionary for callers outside the hot path.
#[derive(Debug, Clone)]
pub struct JoinIndex {
    positions: Vec<usize>,
    map: FxHashMap<Vec<u32>, Vec<u32>>,
    /// How many rows of the backing relation the index covers (relations are
    /// append-only, so `rows_covered..rel.len()` is exactly the new tail).
    rows_covered: usize,
}

impl JoinIndex {
    fn build(rel: &Relation, positions: &[usize]) -> JoinIndex {
        JoinIndex {
            positions: positions.to_vec(),
            map: rel.project_index(positions),
            rows_covered: rel.len(),
        }
    }

    /// Appends the rows the backing relation gained since the index was
    /// built or last extended.  Row ids are pushed in ascending order, so the
    /// result is identical to a from-scratch [`Relation::project_index`].
    fn extend_from(&mut self, rel: &Relation) {
        for row in self.rows_covered..rel.len() {
            let key: Vec<u32> = self.positions.iter().map(|p| rel.column(*p)[row]).collect();
            self.map.entry(key).or_default().push(row as u32);
        }
        self.rows_covered = rel.len();
    }

    /// The indexed column positions, in key order.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Row ids whose projection onto the indexed columns equals the term
    /// tuple `key`.  A key term the dictionary has never seen matches no
    /// row.
    pub fn rows(&self, key: &[Term]) -> &[u32] {
        let mut codes = Vec::with_capacity(key.len());
        for term in key {
            match dict::lookup(*term) {
                Some(code) => codes.push(code),
                None => return &[],
            }
        }
        self.rows_codes(&codes)
    }

    /// Row ids whose projection onto the indexed columns equals the code
    /// tuple `key` — the decode-free probe the executor uses.
    pub fn rows_codes(&self, key: &[u32]) -> &[u32] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// How many rows of the backing relation the index covers.
    pub fn rows_covered(&self) -> usize {
        self.rows_covered
    }
}

/// A cached hash-partitioned decomposition of one relation: `k` disjoint
/// sub-[`Relation`]s whose union is the original (see
/// [`Relation::partition_by`]), maintained incrementally as the parent
/// relation grows.  Parallel sweeps hand one shard to each worker and merge
/// the per-shard results.
///
/// A decomposition roughly doubles the memory of its relation (the tuples
/// are copied into the shards, each with its own positional indexes) and
/// adds a few hash inserts to every announced insert — the price of shards
/// that are real `Relation`s, with per-shard stats and indexes usable by
/// future distributed execution.  The cost is bounded: decompositions are
/// built only for relations the parallel executor actually scans and whose
/// size clears the `min_parallel_rows` gate (see
/// [`crate::ExecOptions::min_parallel_rows`]), and
/// [`IndexCache::invalidate_all`] drops them wholesale.
#[derive(Debug, Clone)]
pub struct ShardSet {
    col: usize,
    shards: Vec<Relation>,
    rows_covered: usize,
}

impl ShardSet {
    fn build(rel: &Relation, col: usize, k: usize) -> ShardSet {
        ShardSet {
            col,
            shards: rel.partition_by(col, k),
            rows_covered: rel.len(),
        }
    }

    /// Routes the rows the backing relation gained since the decomposition
    /// was built or last extended into their hash shards (by code — the
    /// shards share the parent's dictionary, so no re-encoding happens).
    fn extend_from(&mut self, rel: &Relation) {
        let k = self.shards.len();
        for row in self.rows_covered..rel.len() {
            let codes = rel.codes_row(row).expect("row in range");
            self.shards[Relation::shard_of_code(codes[self.col], k)].insert_codes(&codes);
        }
        self.rows_covered = rel.len();
    }

    /// The shards, in shard-id order.
    pub fn shards(&self) -> &[Relation] {
        &self.shards
    }

    /// The hash-partition column.
    pub fn col(&self) -> usize {
        self.col
    }

    /// How many rows of the backing relation the decomposition covers.
    pub fn rows_covered(&self) -> usize {
        self.rows_covered
    }
}

/// The indexes one plan execution works from: an immutable snapshot taken
/// from the [`IndexCache`] right before the run, keyed like the cache.
pub(crate) type PlanIndexes = HashMap<(Symbol, Vec<usize>), Arc<JoinIndex>>;

/// The shard decompositions one parallel plan execution works from, keyed by
/// predicate (the shard count is fixed per run by the configured
/// parallelism).
pub(crate) type PlanShards = HashMap<Symbol, Arc<ShardSet>>;

/// An epoch-validated cache of [`JoinIndex`]es and [`ShardSet`]s for one
/// instance.
#[derive(Debug, Default)]
pub struct IndexCache {
    epoch: u64,
    indexes: HashMap<(Symbol, Vec<usize>), Arc<JoinIndex>>,
    shards: HashMap<(Symbol, usize), Arc<ShardSet>>,
    built: usize,
    shard_sets_built: usize,
}

impl IndexCache {
    /// Creates an empty cache synchronized with `db`'s current epoch.
    pub fn new(db: &Instance) -> IndexCache {
        IndexCache {
            epoch: db.epoch(),
            ..IndexCache::default()
        }
    }

    /// Number of indexes currently cached.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// Whether the cache holds no indexes.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// Number of shard decompositions currently cached.
    pub fn shard_sets(&self) -> usize {
        self.shards.len()
    }

    /// Total number of indexes built over the cache's lifetime (cache
    /// misses; incremental extensions are not builds).
    pub fn built(&self) -> usize {
        self.built
    }

    /// Total number of shard decompositions built over the cache's lifetime.
    pub fn shard_sets_built(&self) -> usize {
        self.shard_sets_built
    }

    /// Resets the lifetime build counters (the cached structures stay).
    pub fn reset_built(&mut self) {
        self.built = 0;
        self.shard_sets_built = 0;
    }

    /// Records that `db` grew (one or more [`Instance::insert`]s that
    /// returned `true`): **every** cached index and shard decomposition is
    /// extended in place with its relation's appended rows — an idempotent
    /// no-op for predicates whose `rows_covered` already matches, a few
    /// hash inserts for the ones that grew.  Nothing is invalidated,
    /// nothing needs rebuilding, and because no caller bookkeeping of
    /// *which* predicates changed is involved, an earlier unannounced
    /// mutation can never be masked: this call catches every structure up
    /// to the current data.  Structures shared with an in-flight snapshot
    /// are copied on write, so running queries keep their consistent view.
    pub fn note_growth(&mut self, db: &Instance) {
        // A vanished relation cannot happen through `Database`, which only
        // inserts — but drop its derived structures rather than serve stale
        // rows if a direct caller ever swaps the instance out from under us.
        self.indexes.retain(|(p, _), _| db.relation(*p).is_some());
        self.shards.retain(|(p, _), _| db.relation(*p).is_some());
        for ((p, _), index) in self.indexes.iter_mut() {
            let rel = db.relation(*p).expect("retained above");
            // Only touch grown structures: `Arc::make_mut` would clone a
            // snapshot-shared index even when there is nothing to append.
            if index.rows_covered() < rel.len() {
                Arc::make_mut(index).extend_from(rel);
            }
        }
        for ((p, _), set) in self.shards.iter_mut() {
            let rel = db.relation(*p).expect("retained above");
            if set.rows_covered() < rel.len() {
                Arc::make_mut(set).extend_from(rel);
            }
        }
        self.epoch = db.epoch();
    }

    /// Drops every cached index and shard decomposition and resynchronizes
    /// with `db`'s epoch.
    pub fn invalidate_all(&mut self, db: &Instance) {
        self.indexes.clear();
        self.shards.clear();
        self.epoch = db.epoch();
    }

    fn check_epoch(&mut self, db: &Instance) {
        if db.epoch() != self.epoch {
            // Unannounced mutation: discard everything rather than risk
            // serving stale rows.
            self.invalidate_all(db);
        }
    }

    /// Ensures the index for `(predicate, positions)` exists and is current,
    /// building it from `db` if needed.  Returns `false` when `db` has no
    /// relation for `predicate` (nothing to index).
    pub fn ensure(&mut self, db: &Instance, predicate: Symbol, positions: &[usize]) -> bool {
        self.check_epoch(db);
        let Some(rel) = db.relation(predicate) else {
            return false;
        };
        if positions.iter().any(|p| *p >= rel.arity()) {
            return false;
        }
        let key = (predicate, positions.to_vec());
        if !self.indexes.contains_key(&key) {
            self.built += 1;
            bus::emit(|| Event::IndexBuilt {
                predicate: predicate.to_string(),
                positions: positions.to_vec(),
            });
            self.indexes
                .insert(key, Arc::new(JoinIndex::build(rel, positions)));
        }
        true
    }

    /// Ensures the `k`-way shard decomposition of `predicate` (hash-
    /// partitioned on column 0) exists and is current, building it from `db`
    /// if needed.  Returns `false` when there is nothing to shard: no
    /// relation, a zero-arity relation, or `k < 2`.
    pub fn ensure_shards(&mut self, db: &Instance, predicate: Symbol, k: usize) -> bool {
        if k < 2 {
            return false;
        }
        self.check_epoch(db);
        let Some(rel) = db.relation(predicate) else {
            return false;
        };
        if rel.arity() == 0 {
            return false;
        }
        let key = (predicate, k);
        if !self.shards.contains_key(&key) {
            self.shard_sets_built += 1;
            bus::emit(|| Event::ShardSetBuilt {
                predicate: predicate.to_string(),
                column: 0,
                shards: k,
            });
            self.shards
                .insert(key, Arc::new(ShardSet::build(rel, 0, k)));
        }
        true
    }

    /// The cached index for `(predicate, positions)`, if [`IndexCache::ensure`]
    /// built one.
    pub fn get(&self, predicate: Symbol, positions: &[usize]) -> Option<&JoinIndex> {
        self.indexes
            .get(&(predicate, positions.to_vec()))
            .map(|arc| &**arc)
    }

    /// The cached `k`-way shard decomposition for `predicate`, if
    /// [`IndexCache::ensure_shards`] built one.
    pub fn get_shards(&self, predicate: Symbol, k: usize) -> Option<&ShardSet> {
        self.shards.get(&(predicate, k)).map(|arc| &**arc)
    }

    /// Ensures every index in `needed` and returns an immutable
    /// [`PlanIndexes`] snapshot over them.  Entries that cannot be built
    /// (missing relation, out-of-range positions) are simply absent — the
    /// executor falls back to scans for those.
    pub(crate) fn snapshot(
        &mut self,
        db: &Instance,
        needed: &[(Symbol, Vec<usize>)],
    ) -> PlanIndexes {
        let mut out = PlanIndexes::with_capacity(needed.len());
        for (predicate, positions) in needed {
            if self.ensure(db, *predicate, positions) {
                let key = (*predicate, positions.clone());
                if let Some(arc) = self.indexes.get(&key) {
                    out.insert(key, Arc::clone(arc));
                }
            }
        }
        out
    }

    /// Ensures a shard decomposition for every predicate in `needed` whose
    /// relation holds at least `min_rows` tuples and returns an immutable
    /// [`PlanShards`] snapshot over them.  Unshardable or too-small entries
    /// are simply absent — the executor falls back to serial scans for
    /// those, so small relations never pay the shard copy, its incremental
    /// maintenance, or the morsel dispatch.
    ///
    /// The shard count is **row-count-derived** per relation (the same
    /// figure [`sac_storage::RelationStats`] reports): roughly one shard
    /// per `min_rows`-sized morsel, clamped to `[parallelism,
    /// 4 * parallelism]` so every pool lane gets work and one skewed shard
    /// cannot serialize the region, without drowning small relations in
    /// dispatch overhead.  The decomposition is cached under its count and
    /// extended in place on append, so the count is fixed at first build.
    pub(crate) fn snapshot_shards(
        &mut self,
        db: &Instance,
        needed: &[Symbol],
        parallelism: usize,
        min_rows: usize,
    ) -> PlanShards {
        let parallelism = parallelism.max(1);
        let morsel_rows = min_rows.max(1);
        let mut out = PlanShards::with_capacity(needed.len());
        for &predicate in needed {
            let Some(rows) = db
                .relation(predicate)
                .map(sac_storage::Relation::len)
                .filter(|&rows| rows >= min_rows)
            else {
                continue;
            };
            let k = (rows / morsel_rows).clamp(parallelism, parallelism * 4);
            if self.ensure_shards(db, predicate, k) {
                if let Some(arc) = self.shards.get(&(predicate, k)) {
                    out.insert(predicate, Arc::clone(arc));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_common::{atom, intern};

    fn db() -> Instance {
        Instance::from_atoms(vec![
            atom!("R", cst "a", cst "b"),
            atom!("R", cst "a", cst "c"),
            atom!("R", cst "d", cst "b"),
            atom!("S", cst "a"),
        ])
        .unwrap()
    }

    #[test]
    fn ensure_builds_once_and_serves_lookups() {
        let db = db();
        let mut cache = IndexCache::new(&db);
        assert!(cache.ensure(&db, intern("R"), &[0]));
        assert!(cache.ensure(&db, intern("R"), &[0]));
        assert_eq!(cache.built(), 1);
        let idx = cache.get(intern("R"), &[0]).unwrap();
        assert_eq!(idx.rows(&[Term::constant("a")]).len(), 2);
        assert_eq!(idx.rows(&[Term::constant("zzz")]).len(), 0);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.rows_covered(), 3);
    }

    #[test]
    fn missing_predicate_or_bad_positions_are_rejected() {
        let db = db();
        let mut cache = IndexCache::new(&db);
        assert!(!cache.ensure(&db, intern("Missing"), &[0]));
        assert!(!cache.ensure(&db, intern("S"), &[1]));
        assert!(cache.is_empty());
    }

    #[test]
    fn announced_inserts_extend_indexes_in_place() {
        let mut db = db();
        let mut cache = IndexCache::new(&db);
        cache.ensure(&db, intern("R"), &[0]);
        cache.ensure(&db, intern("S"), &[0]);
        assert_eq!(cache.len(), 2);

        assert!(db.insert(atom!("R", cst "e", cst "f")).unwrap());
        cache.note_growth(&db);
        assert_eq!(cache.len(), 2, "nothing is dropped");
        assert_eq!(cache.built(), 2, "no rebuild happened");

        // The extended index serves the new row without a rebuild.
        let idx = cache.get(intern("R"), &[0]).unwrap();
        assert_eq!(idx.rows(&[Term::constant("e")]), &[3]);
        assert_eq!(idx.rows_covered(), 4);
        // The untouched predicate's index is untouched.
        assert!(cache.get(intern("S"), &[0]).is_some());
    }

    #[test]
    fn incremental_extension_matches_a_from_scratch_build() {
        let mut db = db();
        let mut cache = IndexCache::new(&db);
        cache.ensure(&db, intern("R"), &[0, 1]);
        for (x, y) in [("e", "f"), ("a", "z"), ("e", "f")] {
            db.insert(sac_common::Atom::from_parts(
                "R",
                vec![Term::constant(x), Term::constant(y)],
            ))
            .unwrap();
            cache.note_growth(&db);
        }
        let mut fresh = IndexCache::new(&db);
        fresh.ensure(&db, intern("R"), &[0, 1]);
        let incremental = cache.get(intern("R"), &[0, 1]).unwrap();
        let rebuilt = fresh.get(intern("R"), &[0, 1]).unwrap();
        assert_eq!(incremental.distinct_keys(), rebuilt.distinct_keys());
        for tuple in db.relation(intern("R")).unwrap().iter() {
            assert_eq!(incremental.rows(&tuple), rebuilt.rows(&tuple));
        }
    }

    #[test]
    fn note_growth_catches_up_earlier_unannounced_growth() {
        // Regression: growth that was never announced must not be masked by
        // a later announcement about a *different* predicate — note_growth
        // catches every cached structure up, not just the caller's hint.
        let mut db = db();
        let mut cache = IndexCache::new(&db);
        cache.ensure(&db, intern("R"), &[0]);
        cache.ensure_shards(&db, intern("R"), 2);
        // Unannounced R growth…
        assert!(db.insert(atom!("R", cst "u", cst "v")).unwrap());
        // …followed by an announcement prompted by an S insert.
        assert!(db.insert(atom!("S", cst "u")).unwrap());
        cache.note_growth(&db);
        let idx = cache.get(intern("R"), &[0]).unwrap();
        assert_eq!(idx.rows(&[Term::constant("u")]), &[3]);
        assert_eq!(idx.rows_covered(), 4);
        assert_eq!(cache.get_shards(intern("R"), 2).unwrap().rows_covered(), 4);
        // The cache is fully synchronized: ensure keeps it warm.
        assert!(cache.ensure(&db, intern("R"), &[0]));
        assert_eq!(cache.built(), 1, "no rebuild was needed");
    }

    #[test]
    fn unannounced_mutations_clear_the_whole_cache() {
        let mut db = db();
        let mut cache = IndexCache::new(&db);
        cache.ensure(&db, intern("R"), &[0]);
        cache.ensure(&db, intern("S"), &[0]);
        // Mutate without telling the cache; the next ensure detects the epoch
        // mismatch and starts from scratch.
        assert!(db.insert(atom!("T", cst "x")).unwrap());
        assert!(cache.ensure(&db, intern("T"), &[0]));
        assert_eq!(cache.len(), 1);
        let idx = cache.get(intern("T"), &[0]).unwrap();
        assert_eq!(idx.rows(&[Term::constant("x")]).len(), 1);
    }

    #[test]
    fn multi_column_keys_join_on_full_tuples() {
        let db = db();
        let mut cache = IndexCache::new(&db);
        cache.ensure(&db, intern("R"), &[0, 1]);
        let idx = cache.get(intern("R"), &[0, 1]).unwrap();
        assert_eq!(idx.distinct_keys(), 3);
        assert_eq!(
            idx.rows(&[Term::constant("a"), Term::constant("c")]).len(),
            1
        );
    }

    #[test]
    fn snapshots_keep_their_view_across_incremental_updates() {
        let mut db = db();
        let mut cache = IndexCache::new(&db);
        let needed = vec![(intern("R"), vec![0usize, 1]), (intern("Missing"), vec![0])];
        let snapshot = cache.snapshot(&db, &needed);
        assert_eq!(snapshot.len(), 1, "unbuildable entries are absent");
        // Extend the cache: the snapshot's Arc forces copy-on-write, so the
        // in-flight view stays pinned at the old rows while the cache serves
        // the new ones.
        assert!(db.insert(atom!("R", cst "z", cst "z")).unwrap());
        cache.note_growth(&db);
        let old = &snapshot[&(intern("R"), vec![0, 1])];
        assert_eq!(old.rows(&[Term::constant("z"), Term::constant("z")]), &[]);
        assert_eq!(old.rows_covered(), 3);
        let new = cache.get(intern("R"), &[0, 1]).unwrap();
        assert_eq!(new.rows(&[Term::constant("z"), Term::constant("z")]), &[3]);
    }

    #[test]
    fn shard_sets_build_extend_and_snapshot() {
        let mut db = db();
        let mut cache = IndexCache::new(&db);
        assert!(cache.ensure_shards(&db, intern("R"), 3));
        assert!(!cache.ensure_shards(&db, intern("R"), 1), "k < 2 is serial");
        assert!(!cache.ensure_shards(&db, intern("Missing"), 3));
        assert_eq!(cache.shard_sets(), 1);
        assert_eq!(cache.shard_sets_built(), 1);

        let snapshot = cache.snapshot_shards(&db, &[intern("R"), intern("Missing")], 3, 0);
        assert_eq!(snapshot.len(), 1);

        // Incremental growth routes the new tuple into its hash shard and
        // matches a from-scratch partition.
        assert!(db.insert(atom!("R", cst "q", cst "r")).unwrap());
        cache.note_growth(&db);
        let set = cache.get_shards(intern("R"), 3).unwrap();
        assert_eq!(set.rows_covered(), 4);
        let rel = db.relation(intern("R")).unwrap();
        let scratch = rel.partition_by(0, 3);
        let total: usize = set.shards().iter().map(|s| s.len()).sum();
        assert_eq!(total, rel.len());
        for (inc, scr) in set.shards().iter().zip(&scratch) {
            assert_eq!(inc.len(), scr.len());
            for tuple in inc.iter() {
                assert!(scr.contains(&tuple));
            }
        }
        // The snapshot taken before the insert still sees 3 rows.
        let old_total: usize = snapshot[&intern("R")]
            .shards()
            .iter()
            .map(|s| s.len())
            .sum();
        assert_eq!(old_total, 3);
    }

    #[test]
    fn invalidate_all_drops_shards_too() {
        let mut db = db();
        let mut cache = IndexCache::new(&db);
        cache.ensure(&db, intern("R"), &[0]);
        cache.ensure_shards(&db, intern("R"), 2);
        db.insert(atom!("R", cst "x", cst "y")).unwrap();
        cache.invalidate_all(&db);
        assert!(cache.is_empty());
        assert_eq!(cache.shard_sets(), 0);
    }

    #[test]
    fn built_counters_reset_independently_of_contents() {
        let db = db();
        let mut cache = IndexCache::new(&db);
        cache.ensure(&db, intern("R"), &[0]);
        cache.ensure_shards(&db, intern("R"), 2);
        assert_eq!(cache.built(), 1);
        assert_eq!(cache.shard_sets_built(), 1);
        cache.reset_built();
        assert_eq!(cache.built(), 0);
        assert_eq!(cache.shard_sets_built(), 0);
        assert_eq!(cache.len(), 1, "indexes stay cached");
        assert_eq!(cache.shard_sets(), 1, "shards stay cached");
    }
}
