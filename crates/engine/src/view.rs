//! Materialized views: standing queries maintained under fact appends.
//!
//! [`crate::Database::materialize`] registers a query as a
//! [`MaterializedView`]: its answer set is computed once, stored, and from
//! then on **maintained** instead of recomputed.  The storage layer's
//! per-relation delta logs ([`sac_storage::DeltaCursor`]) tell each view
//! exactly which facts appeared since its last refresh, and the engine's
//! incremental Yannakakis path pushes those deltas through the view's
//! cached join tree — delta match sets at the dirty nodes, index-driven
//! restriction outward along the tree edges, then the ordinary semijoin
//! sweeps and join-back-up over the restricted (delta-sized) tables.
//! Conjunctive queries are monotone, so appends only ever **add** answers
//! and the maintained set is exactly the from-scratch answer set.
//!
//! The incremental path applies to plans on the
//! [`Strategy::YannakakisDirect`] rung (the view's join tree is the
//! query's own).  Witness-rung and
//! indexed-rung plans refresh by full recompute — correct on every rung,
//! just not delta-proportional; [`ViewRefresh::mode`] reports which path
//! ran, and the view counters in [`crate::EngineMetrics`] aggregate them.
//!
//! Freshness is observable and maintenance is optional per view:
//! with [`ViewOptions::auto_refresh`] (the default) every append catches
//! registered views up under the same write guard that changed the data,
//! so any reader that can see the new facts also sees the refreshed view;
//! with `auto_refresh` off the view goes stale ([`MaterializedView::is_fresh`]
//! returns `false`) until [`MaterializedView::refresh`] is called — the
//! batch-ingestion shape, one incremental refresh per append batch.
//!
//! ```
//! use sac_engine::{Database, RefreshMode};
//!
//! let db = Database::from_facts("E(a, b). E(b, c).").unwrap();
//! let view = db.materialize("q(X, Z) :- E(X, Y), E(Y, Z).").unwrap();
//! assert_eq!(view.snapshot().len(), 1);
//!
//! // Appends keep the view current (auto_refresh is on by default)…
//! db.load_facts("E(c, d).").unwrap();
//! assert!(view.is_fresh());
//! assert_eq!(view.snapshot().len(), 2);
//!
//! // …and the maintenance was incremental, not a recompute.
//! assert_eq!(db.metrics().view_refreshes_incremental, 1);
//! assert_eq!(view.refresh().mode, RefreshMode::Fresh);
//! ```

use crate::database::Database;
use crate::exec;
use crate::plan::{Explain, Plan, Strategy};
use crate::result::ResultSet;
use sac_common::{Symbol, Term};
use sac_query::ConjunctiveQuery;
use sac_storage::DeltaCursor;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// Per-view maintenance knobs, fixed at [`crate::Database::materialize_with`]
/// time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewOptions {
    /// Refresh the view as part of every append (`insert` / `extend_from` /
    /// `load_facts`), under the same instance write guard — the view is
    /// never observably stale.  Off, appends leave the view stale until
    /// [`MaterializedView::refresh`] runs; snapshots serve the last
    /// materialized state.  Default: on.
    pub auto_refresh: bool,
    /// Incremental maintenance stops paying off when the delta stops being
    /// small: past this fraction of the view's relevant relations' total
    /// rows, a refresh recomputes from scratch instead of pushing the delta
    /// (the recompute also resets the delta-proportional bound for the next
    /// refresh).  Default: 0.5.
    pub max_incremental_fraction: f64,
}

impl Default for ViewOptions {
    fn default() -> ViewOptions {
        ViewOptions {
            auto_refresh: true,
            max_incremental_fraction: 0.5,
        }
    }
}

/// How a [`MaterializedView::refresh`] brought the view up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshMode {
    /// Nothing needed doing: no relevant relation grew since the last
    /// refresh, or the view is a satisfied Boolean query (appends cannot
    /// unsatisfy a monotone query, so its delta is skipped outright — the
    /// skipped rows are still reported in [`ViewRefresh::delta_rows`]).
    Fresh,
    /// The delta was pushed through the cached join tree (the
    /// delta-proportional path).
    Incremental,
    /// The answer set was recomputed from scratch (initial materialization,
    /// witness/indexed-rung plans, or a delta past
    /// [`ViewOptions::max_incremental_fraction`]).
    Full,
}

impl fmt::Display for RefreshMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RefreshMode::Fresh => "fresh",
            RefreshMode::Incremental => "incremental",
            RefreshMode::Full => "full",
        })
    }
}

/// What one refresh did: which path ran, how many delta rows it consumed
/// (rows appended to the view's relevant relations since the previous
/// refresh) and how many answer rows it added.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewRefresh {
    /// The path taken.
    pub mode: RefreshMode,
    /// Appended rows on the relations the view reads since the previous
    /// refresh: 0 when nothing relevant grew; nonzero with
    /// [`RefreshMode::Fresh`] only for a satisfied Boolean view, whose
    /// delta is skipped rather than evaluated.
    pub delta_rows: usize,
    /// Net new answer rows (appends are monotone: answers never leave).
    pub rows_added: usize,
}

impl ViewRefresh {
    pub(crate) const FRESH: ViewRefresh = ViewRefresh {
        mode: RefreshMode::Fresh,
        delta_rows: 0,
        rows_added: 0,
    };
}

impl fmt::Display for ViewRefresh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} delta rows -> +{} answers)",
            self.mode, self.delta_rows, self.rows_added
        )
    }
}

/// The maintained state of one view: where in the instance's growth the
/// answers are current to, and the answers themselves.  The answer set is
/// behind an [`Arc`] so [`MaterializedView::snapshot`] can take its
/// reference under the state lock and do the O(answers) materialization
/// outside it — readers never stall the append path's auto-refresh;
/// refreshes copy-on-write (`Arc::make_mut`) only while a snapshot is
/// being materialized concurrently.
#[derive(Debug)]
pub(crate) struct ViewState {
    /// `None` until the initial materialization ran.
    pub(crate) cursor: Option<DeltaCursor>,
    pub(crate) answers: Arc<BTreeSet<Vec<Term>>>,
}

/// The shared core of a registered view: the compiled plan plus the
/// mutex-guarded maintained state.  The [`crate::Database`] holds a weak
/// reference (dropping every [`MaterializedView`] handle unregisters the
/// view); handles hold it strongly.
#[derive(Debug)]
pub(crate) struct ViewCore {
    pub(crate) query: Arc<ConjunctiveQuery>,
    pub(crate) plan: Arc<Plan>,
    pub(crate) options: ViewOptions,
    /// Predicates whose growth can change the answers: the *executed*
    /// query's body (the witness's on the witness rung).  The plan is
    /// pinned, so this is an invariant — computed once here rather than on
    /// every append.
    pub(crate) relevant: BTreeSet<Symbol>,
    /// The index snapshot the incremental path needs: the plan's own probe
    /// indexes plus the join-tree edge indexes.  Also a plan invariant.
    pub(crate) incremental_indexes: Vec<(Symbol, Vec<usize>)>,
    state: Mutex<ViewState>,
}

impl ViewCore {
    pub(crate) fn new(query: ConjunctiveQuery, plan: Arc<Plan>, options: ViewOptions) -> ViewCore {
        let relevant = plan
            .exec_query()
            .body
            .iter()
            .map(|atom| atom.predicate)
            .collect();
        let incremental_indexes = exec::required_indexes(&plan)
            .into_iter()
            .chain(exec::delta_edge_indexes(&plan))
            .collect();
        ViewCore {
            query: Arc::new(query),
            plan,
            options,
            relevant,
            incremental_indexes,
            state: Mutex::new(ViewState {
                cursor: None,
                answers: Arc::new(BTreeSet::new()),
            }),
        }
    }

    pub(crate) fn lock_state(&self) -> MutexGuard<'_, ViewState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A standing query registered on a [`Database`]: its answers are
/// materialized once and then maintained under fact appends (see the
/// [module docs](self)).
///
/// The handle is cheap to clone and `Send + Sync`; every clone reads and
/// refreshes the same maintained state.  Dropping the last handle
/// unregisters the view.  Like a [`crate::PreparedQuery`], the plan is
/// pinned at registration: re-materialize after
/// [`Database::set_tgds`](crate::Database::set_tgds) changes the
/// constraints a witness plan was found under.
#[derive(Debug, Clone)]
pub struct MaterializedView<'db> {
    database: &'db Database,
    core: Arc<ViewCore>,
}

impl<'db> MaterializedView<'db> {
    pub(crate) fn new(database: &'db Database, core: Arc<ViewCore>) -> MaterializedView<'db> {
        MaterializedView { database, core }
    }

    /// The shared maintained state, for callers that must keep the view
    /// alive beyond this handle (the durability layer pins recovered views
    /// so they are not unregistered when the recovery-time handle drops).
    pub(crate) fn core_arc(&self) -> Arc<ViewCore> {
        Arc::clone(&self.core)
    }

    /// The current materialized answers, as a typed [`ResultSet`].  No
    /// recomputation happens: this is a read of the maintained state (call
    /// [`MaterializedView::refresh`] first if the view may be stale and
    /// staleness matters).
    pub fn snapshot(&self) -> ResultSet {
        // Take the Arc under the lock; materialize the rows outside it, so
        // a large snapshot never blocks concurrent maintenance.
        let answers = Arc::clone(&self.core.lock_state().answers);
        ResultSet::from_tuples(Arc::clone(self.core.plan.columns()), (*answers).clone())
    }

    /// Brings the view up to date with the database and reports what that
    /// took: a no-op when fresh, a delta push on the direct Yannakakis
    /// rung, a recompute otherwise.
    pub fn refresh(&self) -> ViewRefresh {
        self.database.view_refresh(&self.core)
    }

    /// [`MaterializedView::refresh`] with a [`sac_telemetry::QueryTrace`]
    /// over the maintenance work: the trace's `refresh_mode` and
    /// `delta_rows` report which path ran, and — for refreshes that did
    /// work — the phase timers cover the delta push or recompute.
    pub fn refresh_traced(&self) -> (ViewRefresh, sac_telemetry::QueryTrace) {
        self.database.view_refresh_traced(&self.core)
    }

    /// Whether the view reflects every fact currently in the database.
    /// Always `true` between operations for auto-refresh views; a lazy view
    /// goes stale when a relevant relation grows.
    pub fn is_fresh(&self) -> bool {
        self.database.view_is_fresh(&self.core)
    }

    /// Number of currently materialized answer rows.
    pub fn len(&self) -> usize {
        self.core.lock_state().answers.len()
    }

    /// Whether the view currently holds no answers.
    pub fn is_empty(&self) -> bool {
        self.core.lock_state().answers.is_empty()
    }

    /// The Boolean reading of the maintained answers.
    pub fn is_true(&self) -> bool {
        !self.is_empty()
    }

    /// The standing query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.core.query
    }

    /// The strategy of the pinned plan (incremental maintenance applies on
    /// [`Strategy::YannakakisDirect`]).
    pub fn strategy(&self) -> Strategy {
        self.core.plan.strategy()
    }

    /// The planner's decision for the standing query, for inspection.
    pub fn explain(&self) -> &Explain {
        self.core.plan.explain()
    }

    /// The result columns every snapshot carries.
    pub fn columns(&self) -> &[String] {
        self.core.plan.columns().as_ref()
    }

    /// The view's maintenance options.
    pub fn options(&self) -> ViewOptions {
        self.core.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{Database, EngineConfig};
    use sac_common::atom;
    use sac_query::evaluate;

    #[test]
    fn auto_views_track_inserts_incrementally() {
        let db = Database::from_facts("E(a, b). E(b, c).").unwrap();
        let view = db.materialize("q(X, Z) :- E(X, Y), E(Y, Z).").unwrap();
        assert_eq!(view.strategy(), Strategy::YannakakisDirect);
        assert_eq!(view.len(), 1);
        assert!(view.is_fresh());
        let m = db.metrics();
        assert_eq!(m.views_registered, 1);
        assert_eq!(m.view_refreshes_full, 1, "initial materialization");

        assert!(db.insert(atom!("E", cst "c", cst "d")).unwrap());
        assert!(view.is_fresh(), "auto view is refreshed by the insert");
        let rs = view.snapshot();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.columns(), &["X".to_owned(), "Z".to_owned()]);
        let m = db.metrics();
        assert_eq!(m.view_refreshes_incremental, 1);
        assert_eq!(m.view_delta_rows, 1);

        // A refresh on a fresh view is a no-op.
        assert_eq!(view.refresh(), ViewRefresh::FRESH);
    }

    #[test]
    fn lazy_views_go_stale_and_catch_up_on_refresh() {
        // Base large enough that a 2-row delta stays under the default
        // incremental-fraction gate (2 of 5 rows).
        let db = Database::from_facts("E(a, b). E(u, v). E(w, x).").unwrap();
        let view = db
            .materialize_with(
                "q(X, Z) :- E(X, Y), E(Y, Z).",
                ViewOptions {
                    auto_refresh: false,
                    ..ViewOptions::default()
                },
            )
            .unwrap();
        assert!(view.is_fresh());
        assert!(view.is_empty());

        db.load_facts("E(b, c). E(c, d).").unwrap();
        assert!(!view.is_fresh(), "lazy views stale out under appends");
        assert_eq!(view.len(), 0, "snapshot still serves the old state");

        let report = view.refresh();
        assert_eq!(report.mode, RefreshMode::Incremental);
        assert_eq!(report.delta_rows, 2);
        assert_eq!(report.rows_added, 2);
        assert!(view.is_fresh());
        assert_eq!(
            view.snapshot().into_tuples(),
            evaluate(view.query(), &db.snapshot())
        );
    }

    #[test]
    fn irrelevant_growth_leaves_views_fresh() {
        let db = Database::from_facts("E(a, b). E(b, c).").unwrap();
        let view = db
            .materialize_with(
                "q(X, Z) :- E(X, Y), E(Y, Z).",
                ViewOptions {
                    auto_refresh: false,
                    ..ViewOptions::default()
                },
            )
            .unwrap();
        db.load_facts("Unrelated(u).").unwrap();
        assert!(view.is_fresh(), "growth off the view's schema is invisible");
        assert_eq!(view.refresh().mode, RefreshMode::Fresh);
        // The cursor advanced: later relevant growth reports only itself.
        db.load_facts("E(c, d).").unwrap();
        let report = view.refresh();
        assert_eq!(
            (report.mode, report.delta_rows),
            (RefreshMode::Incremental, 1)
        );
    }

    #[test]
    fn non_direct_rungs_refresh_by_full_recompute() {
        // Witness rung: the looped triangle's core is the single loop atom.
        let db = Database::from_facts("E(a, b). E(b, a).").unwrap();
        let view = db.materialize(sac_gen::looped_triangle_query()).unwrap();
        assert_eq!(view.strategy(), Strategy::YannakakisWitness);
        assert!(!view.is_true());
        db.load_facts("E(z, z).").unwrap();
        assert!(view.is_true());
        // Indexed rung via the forced-fallback knob.
        let forced = Database::from_facts("E(a, b). E(b, c).")
            .unwrap()
            .with_config(EngineConfig {
                force_indexed: true,
                ..EngineConfig::default()
            });
        let view = forced.materialize("q(X) :- E(X, Y), E(Y, Z).").unwrap();
        assert_eq!(view.strategy(), Strategy::IndexedSearch);
        forced.load_facts("E(c, d).").unwrap();
        assert_eq!(view.len(), 2);
        let m = forced.metrics();
        assert_eq!(m.view_refreshes_full, 2, "initial + maintenance recompute");
        assert_eq!(m.view_refreshes_incremental, 0);
    }

    #[test]
    fn big_deltas_fall_back_to_recompute_by_the_fraction_gate() {
        let db = Database::from_facts("E(a, b).").unwrap();
        let view = db
            .materialize_with(
                "q(X, Z) :- E(X, Y), E(Y, Z).",
                ViewOptions {
                    auto_refresh: false,
                    max_incremental_fraction: 0.25,
                },
            )
            .unwrap();
        // Quadruple the relation: 3 delta rows of 4 total is over the gate.
        db.load_facts("E(b, c). E(c, d). E(d, e).").unwrap();
        let report = view.refresh();
        assert_eq!(report.mode, RefreshMode::Full);
        assert_eq!(report.delta_rows, 3);
        assert_eq!(
            view.snapshot().into_tuples(),
            evaluate(view.query(), &db.snapshot())
        );
    }

    #[test]
    fn boolean_views_short_circuit_once_true() {
        let db = Database::from_facts("E(a, b). E(b, c).").unwrap();
        let view = db.materialize(sac_gen::path_query(2)).unwrap();
        assert!(view.is_true());
        let before = db.metrics();
        db.load_facts("E(c, d).").unwrap();
        assert!(view.is_fresh());
        let after = db.metrics();
        assert_eq!(
            (after.view_refreshes_incremental, after.view_refreshes_full),
            (
                before.view_refreshes_incremental,
                before.view_refreshes_full
            ),
            "a true Boolean view never re-evaluates (monotone: true stays true)"
        );
    }

    #[test]
    fn dropped_handles_unregister_the_view() {
        let db = Database::from_facts("E(a, b).").unwrap();
        let view = db.materialize("q(X) :- E(X, Y).").unwrap();
        let clone = view.clone();
        drop(view);
        // A surviving clone keeps the view registered and maintained.
        db.load_facts("E(b, c).").unwrap();
        assert_eq!(clone.len(), 2);
        drop(clone);
        let before = db.metrics();
        db.load_facts("E(c, d).").unwrap();
        let after = db.metrics();
        assert_eq!(
            (after.view_refreshes_incremental, after.view_refreshes_full),
            (
                before.view_refreshes_incremental,
                before.view_refreshes_full
            ),
            "no registered view is maintained after the last handle drops"
        );
    }

    #[test]
    fn concurrent_appends_keep_views_exact() {
        let db = Database::from_facts("E(n0, n1).").unwrap();
        let view = db.materialize("q(X, Z) :- E(X, Y), E(Y, Z).").unwrap();
        let db = &db;
        let view = &view;
        std::thread::scope(|scope| {
            for t in 0..2 {
                scope.spawn(move || {
                    for i in 0..20 {
                        db.insert(sac_common::Atom::from_parts(
                            "E",
                            vec![
                                Term::constant(&format!("t{t}_{i}")),
                                Term::constant(&format!("t{t}_{}", i + 1)),
                            ],
                        ))
                        .unwrap();
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..20 {
                    let _ = view.snapshot();
                }
            });
        });
        assert!(view.is_fresh());
        assert_eq!(
            view.snapshot().into_tuples(),
            evaluate(view.query(), &db.snapshot())
        );
    }

    #[test]
    fn view_metrics_show_in_the_display() {
        let db = Database::from_facts("E(a, b).").unwrap();
        let _view = db.materialize("q(X) :- E(X, Y).").unwrap();
        let text = format!("{}", db.metrics());
        assert!(text.contains("1 views"), "got: {text}");
    }
}
